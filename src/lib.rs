//! HAMS — a full reproduction of *"Revamping Storage Class Memory With
//! Hardware Automated Memory-Over-Storage Solution"* (ISCA 2021) in Rust.
//!
//! This facade crate re-exports the whole workspace so that applications,
//! examples and experiments can depend on a single crate:
//!
//! * [`core`] — the HAMS controller (MoS address manager, NVDIMM tag cache,
//!   NVMe engine, hazard avoidance, persistency control),
//! * [`flash`], [`nvme`], [`interconnect`], [`nvdimm`], [`host`], [`energy`],
//!   [`sim`] — the substrates the controller is built on,
//! * [`workloads`] — Table III trace generators and fio-style device jobs,
//! * [`platforms`] — the eleven evaluated systems plus the experiment runner,
//! * [`telemetry`] — simulated-time span tracing, the metrics registry and
//!   the Chrome-trace / series exporters.
//!
//! # Quick start
//!
//! ```
//! use hams::core::{AttachMode, HamsConfig, HamsController, PersistMode};
//! use hams::sim::Nanos;
//!
//! // Advanced HAMS (DDR4-attached, extend mode) on a scaled-down configuration.
//! let config = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend);
//! let mut hams = HamsController::new(config);
//!
//! // A store to a cold MoS page misses, a second access to the same page hits.
//! let miss = hams.access(0x0, true, 64, Nanos::ZERO);
//! let hit = hams.access(0x40, false, 64, miss.finished_at);
//! assert!(!miss.hit && hit.hit);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `hams-bench` crate for the harnesses that regenerate every figure of the
//! paper.

#![warn(missing_docs)]

pub use hams_core as core;
pub use hams_energy as energy;
pub use hams_flash as flash;
pub use hams_host as host;
pub use hams_interconnect as interconnect;
pub use hams_nvdimm as nvdimm;
pub use hams_nvme as nvme;
pub use hams_platforms as platforms;
pub use hams_sim as sim;
pub use hams_telemetry as telemetry;
pub use hams_workloads as workloads;

/// The paper this workspace reproduces.
pub const PAPER: &str = "Revamping Storage Class Memory With Hardware Automated \
                         Memory-Over-Storage Solution (ISCA 2021, arXiv:2106.14241)";

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_compose() {
        use crate::platforms::{run_workload, PlatformKind, ScaleProfile};
        use crate::workloads::WorkloadSpec;

        let scale = ScaleProfile::test_tiny();
        let spec = WorkloadSpec::by_name("KMN").unwrap();
        let mut platform = PlatformKind::HamsTE.build(&scale);
        let metrics = run_workload(platform.as_mut(), spec, &scale);
        assert!(metrics.total_time > crate::sim::Nanos::ZERO);
        assert!(super::PAPER.contains("ISCA"));
    }
}
