//! The fault-injection tier's pinned contract.
//!
//! PR 10 adds parity RAID, device-failure injection and rebuild-under-load.
//! None of it may perturb healthy serving, and all of it must replay
//! deterministically from the plan:
//!
//! 1. **Zero faults is free.** With no `FaultPlan` installed the parity
//!    array (`hams-TP-r5`) is metrics-byte-identical to its RAID-0 twin at
//!    the same shape — parity lives in the reserved OP region and the
//!    healthy data path never touches it. Likewise a uniform heterogeneous
//!    archive is byte-identical to the homogeneous constructor, and a
//!    concat array's first slice is byte-identical to a single device.
//! 2. **Faults are part of the seed.** The same `FaultPlan` replays
//!    byte-identically across repeated runs *and* across cell-parallel
//!    worker counts — fault polling happens on the serial commit path, so
//!    thread fan-out can never move a failure or a rebuild row.
//! 3. **Degraded reads are reads.** While a device is out, reads of its
//!    stripes reconstruct from the `N − 1` survivors and every page durable
//!    before the failure is durable again once the rebuild completes. The
//!    XOR reconstruction model itself is property-tested against
//!    pre-failure contents.
//! 4. **The figure has the right shape.** `fig26` shows the sojourn p99
//!    elevated against its healthy-twin baseline while degraded and
//!    rebuilding, and back within tolerance of the twin once recovered.
//!
//! Set `HAMS_FAULTS=1` (the CI fault leg) to widen the determinism sweep to
//! more worker counts and an open-loop replay of the fig26 schedule.

use hams::core::{AttachMode, PersistMode};
use hams::flash::{
    ArchiveSet, ArrayState, BackendTopology, FaultPlan, FaultStats, Raid5Layout, RebuildConfig,
    SsdConfig, LBA_SIZE,
};
use hams::nvme::{NvmeCommand, PrpList};
use hams::platforms::{
    build_fault_platform, fault_label, run_workload, run_workload_cell_parallel,
    run_workload_open_loop, HamsPlatform, OpenLoopConfig, QueueConfig, ScaleProfile,
    FAULT_SWEEP_DEVICES, RAID_SWEEP_PAGE_BYTES, RAID_SWEEP_QUEUES,
};
use hams::sim::Nanos;
use hams::workloads::WorkloadSpec;
use hams_bench::{fig26_fault_schedule, fig26_latency_under_rebuild, fig26_phase};
use proptest::prelude::*;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 37,
    }
}

/// The RAID-0 twin of [`build_fault_platform`]: identical attach, persist
/// mode, cache, page size, queue shape and device count — only the backend
/// topology differs.
fn raid0_twin(scale: &ScaleProfile) -> HamsPlatform {
    HamsPlatform::scaled_with_backend(
        AttachMode::Tight,
        PersistMode::Persist,
        scale.cache_bytes(),
        RAID_SWEEP_PAGE_BYTES,
        QueueConfig::striped(RAID_SWEEP_QUEUES),
        BackendTopology::raid0_striped(FAULT_SWEEP_DEVICES, LBA_SIZE),
    )
}

#[test]
fn zero_fault_parity_platform_is_byte_identical_to_its_raid0_twin() {
    let scale = tiny();
    for workload in ["rndRd", "rndWr"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        let mut parity = build_fault_platform(&scale);
        let mut twin = raid0_twin(&scale);
        let with_parity = run_workload(&mut parity, spec, &scale);
        let reference = run_workload(&mut twin, spec, &scale);
        assert_eq!(
            with_parity,
            reference,
            "{}: zero-fault parity array diverged from its RAID-0 twin on {workload}",
            fault_label()
        );
        assert_eq!(
            parity.controller().archive().stats(),
            twin.controller().archive().stats(),
            "aggregate archive stats diverged on {workload}"
        );
        assert_eq!(
            parity.controller().archive().device_stats(),
            twin.controller().archive().device_stats(),
            "per-device command streams diverged on {workload}"
        );
        assert_eq!(parity.controller().array_state(), ArrayState::Healthy);
        assert!(
            parity.controller().fault_stats().is_none(),
            "no plan installed, so no fault machinery may have engaged"
        );
    }
}

fn read_cmd(slba: u64) -> NvmeCommand {
    NvmeCommand::read(1, slba, 4096, PrpList::single(0x1000))
}

fn write_cmd(slba: u64) -> NvmeCommand {
    NvmeCommand::write(1, slba, 4096, PrpList::single(0x1000))
}

#[test]
fn uniform_heterogeneous_archive_is_byte_identical_to_the_homogeneous_one() {
    let config = SsdConfig::tiny_for_tests();
    let topology = BackendTopology::raid0_striped(4, LBA_SIZE);
    let mut homo = ArchiveSet::new(config, topology, 4096);
    let mut hetero = ArchiveSet::new_heterogeneous(vec![config; 4], topology, 4096);
    let mut now = Nanos::ZERO;
    for i in 0..96u64 {
        let cmd = match i % 4 {
            0 => write_cmd(i % 32).with_fua(true),
            1 => write_cmd(i % 32),
            2 => NvmeCommand::flush(1),
            _ => read_cmd(i % 32),
        };
        let a = homo.service(&cmd, now).unwrap();
        let b = hetero.service(&cmd, now).unwrap();
        assert_eq!(
            a, b,
            "uniform heterogeneous archive diverged at command {i}"
        );
        now = a.finished_at;
    }
    assert_eq!(homo.stats(), hetero.stats());
    assert_eq!(homo.device_stats(), hetero.device_stats());
}

#[test]
fn concat_sums_capacity_and_its_first_slice_matches_a_single_device() {
    let config = SsdConfig::tiny_for_tests();
    let mut single = ArchiveSet::single(config);
    let mut concat = ArchiveSet::new(config, BackendTopology::concat(2), 4096);
    assert_eq!(concat.capacity_bytes(), 2 * single.capacity_bytes());
    let per_device_lbas = single.capacity_bytes() / LBA_SIZE;
    assert_eq!(concat.device_of_slba(per_device_lbas - 1), 0);
    assert_eq!(concat.device_of_slba(per_device_lbas), 1);
    let mut now = Nanos::ZERO;
    for i in 0..64u64 {
        let cmd = if i % 3 == 0 {
            write_cmd(i % 24).with_fua(i % 6 == 0)
        } else {
            read_cmd(i % 24)
        };
        let a = single.service(&cmd, now).unwrap();
        let b = concat.service(&cmd, now).unwrap();
        assert_eq!(a, b, "concat's first slice diverged from the single device");
        now = a.finished_at;
    }
    assert_eq!(single.stats(), concat.stats());
    assert_eq!(
        concat.device(1).stats().total_commands(),
        0,
        "first-slice traffic must never reach the second device"
    );
    // The second slice serves in its own address range and translates back.
    concat
        .service(&write_cmd(per_device_lbas + 3).with_fua(true), now)
        .unwrap();
    assert!(concat.device(1).is_durable(3));
    assert!(concat.is_durable(per_device_lbas + 3));
}

/// One faulted closed-loop run at a given cell-worker count: run metrics,
/// fault statistics, final array state and the full state-machine
/// transition log.
fn faulted_run(
    scale: &ScaleProfile,
    plan: &FaultPlan,
    end: Nanos,
    workers: usize,
) -> (
    hams::platforms::RunMetrics,
    FaultStats,
    ArrayState,
    Vec<(Nanos, ArrayState)>,
) {
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    let mut platform = build_fault_platform(scale);
    platform.controller_mut().set_fault_plan(plan.clone());
    let metrics = run_workload_cell_parallel(&mut platform, spec, scale, workers);
    platform.controller_mut().advance_faults(end);
    let stats = *platform.controller().fault_stats().unwrap();
    let state = platform.controller().array_state();
    let transitions = platform
        .controller()
        .archive()
        .fault()
        .unwrap()
        .transitions()
        .to_vec();
    (metrics, stats, state, transitions)
}

#[test]
fn fault_schedule_replays_byte_identically_across_runs_and_thread_counts() {
    let scale = tiny();
    // Calibrate the plan off a healthy run so the failure lands mid-run at
    // every scale, then drive every configuration with that one plan.
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    let healthy = run_workload(&mut build_fault_platform(&scale), spec, &scale);
    let plan = FaultPlan::new()
        .with_fail_stop(
            0,
            healthy.total_time.scale(0.3),
            healthy.total_time.scale(0.4),
        )
        .with_rebuild(RebuildConfig {
            row_interval: healthy.total_time.scale(1e-4).max(Nanos::from_nanos(1)),
            ..RebuildConfig::default()
        });
    let end = healthy.total_time.scale(4.0);
    let wide = std::env::var("HAMS_FAULTS").is_ok();
    let worker_counts: &[usize] = if wide { &[1, 2, 4, 8] } else { &[1, 2, 4] };
    let reference = faulted_run(&scale, &plan, end, 1);
    assert_eq!(
        reference.1.faults_injected, 1,
        "the planned failure must actually fire"
    );
    assert_eq!(
        reference.1.repairs_completed, 1,
        "the rebuild must complete"
    );
    assert_eq!(reference.2, ArrayState::Healthy);
    assert!(
        reference.1.rebuild_rows_done > 0
            && reference.1.rebuild_rows_done == reference.1.rebuild_rows_total
    );
    // The state machine walked Healthy → Degraded → Rebuilding → Healthy.
    let walked: Vec<ArrayState> = reference.3.iter().map(|(_, s)| *s).collect();
    assert_eq!(
        walked,
        vec![
            ArrayState::Degraded,
            ArrayState::Rebuilding,
            ArrayState::Healthy
        ]
    );
    for &workers in worker_counts {
        let run = faulted_run(&scale, &plan, end, workers);
        assert_eq!(
            run, reference,
            "faulted run at {workers} cell workers diverged from the serial reference"
        );
    }
    // And a straight re-run is a byte-identical replay.
    assert_eq!(faulted_run(&scale, &plan, end, 1), reference);
}

#[test]
fn degraded_reads_reconstruct_and_rebuild_restores_durability() {
    let mut config = SsdConfig::tiny_for_tests();
    config.supercap_backed = true;
    let devices = 4u16;
    let mut set = ArchiveSet::new(
        config,
        BackendTopology::raid5_striped(devices, LBA_SIZE),
        4096,
    );
    let pages = 48u64;
    for slba in 0..pages {
        set.service(&write_cmd(slba).with_fua(true), Nanos::ZERO)
            .unwrap();
    }
    let durable_before: Vec<u64> = (0..pages).filter(|&l| set.is_durable(l)).collect();
    assert_eq!(
        durable_before.len() as u64,
        pages,
        "FUA writes must all be durable"
    );

    let down = 2u16;
    set.set_fault_plan(
        FaultPlan::new()
            .with_fail_stop(down, Nanos::from_micros(100), Nanos::from_millis(50))
            .with_rebuild(RebuildConfig {
                row_interval: Nanos::from_micros(5),
                ..RebuildConfig::default()
            }),
    );

    // Every read of the dead device's stripes while degraded costs one read
    // on each of the N − 1 survivors (data placement is RAID-0's:
    // device = slba % N at this stripe size).
    let dead_slbas: Vec<u64> = (0..pages)
        .filter(|l| l % u64::from(devices) == u64::from(down))
        .collect();
    let mut now = Nanos::from_micros(150);
    for &slba in &dead_slbas {
        let before: Vec<u64> = (0..devices)
            .filter(|&d| d != down)
            .map(|d| set.device(d).stats().read_commands)
            .collect();
        let done = set.service(&read_cmd(slba), now).unwrap();
        assert!(
            done.finished_at > now,
            "degraded read must cost simulated time"
        );
        let after: Vec<u64> = (0..devices)
            .filter(|&d| d != down)
            .map(|d| set.device(d).stats().read_commands)
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(a - b, 1, "each survivor serves one reconstruction read");
        }
        now = done.finished_at;
    }
    assert_eq!(set.array_state(), ArrayState::Degraded);
    let stats = *set.fault_stats().unwrap();
    assert_eq!(stats.degraded_reads, dead_slbas.len() as u64);
    assert_eq!(
        stats.reconstruction_reads,
        dead_slbas.len() as u64 * u64::from(devices - 1)
    );

    // A degraded write to the dead device is parity-absorbed and durable.
    set.service(&write_cmd(dead_slbas[0]).with_fua(true), now)
        .unwrap();
    assert!(set.is_durable(dead_slbas[0]));
    assert!(set.fault_stats().unwrap().parity_absorbed_writes >= 1);

    // After the spare arrives and the rebuild runs dry, nothing was lost.
    set.advance_faults(Nanos::from_millis(500));
    assert_eq!(set.array_state(), ArrayState::Healthy);
    let stats = *set.fault_stats().unwrap();
    assert_eq!(stats.repairs_completed, 1);
    assert_eq!(stats.rebuild_rows_done, stats.rebuild_rows_total);
    for &lpn in &durable_before {
        assert!(
            lpn < pages && set.is_durable(lpn),
            "page {lpn} lost across the rebuild"
        );
    }
}

#[test]
fn fig26_tail_is_elevated_under_rebuild_and_recovers() {
    let scale = ScaleProfile {
        capacity_divisor: 4096,
        accesses: 800,
        seed: 5,
    };
    let rows = fig26_latency_under_rebuild(&scale);
    for phase in ["healthy", "degraded", "rebuilding", "recovered"] {
        let row = fig26_phase(&rows, phase)
            .unwrap_or_else(|| panic!("fig26 must report a {phase} window"));
        assert_eq!(row.platform, fault_label());
        assert!(row.served > 0, "{phase} window served no requests");
        assert!(row.end_us > row.start_us, "{phase} window is empty");
    }
    let healthy = fig26_phase(&rows, "healthy").unwrap();
    let degraded = fig26_phase(&rows, "degraded").unwrap();
    let rebuilding = fig26_phase(&rows, "rebuilding").unwrap();
    let recovered = fig26_phase(&rows, "recovered").unwrap();
    // Before the failure the faulted run IS the twin.
    assert!((healthy.p99_us - healthy.baseline_p99_us).abs() < 1e-9);
    // Losing a device can only hurt the tail against the same arrivals.
    assert!(degraded.p99_us + 1e-9 >= degraded.baseline_p99_us);
    assert!(rebuilding.p99_us + 1e-9 >= rebuilding.baseline_p99_us);
    // And once rebuilt the tail returns to within tolerance of the twin.
    assert!(recovered.p99_us <= 2.0 * recovered.baseline_p99_us.max(1.0));
}

/// CI's `HAMS_FAULTS` leg replays the exact fig26 fault schedule open-loop
/// twice and demands byte-identical metrics and fault accounting — the
/// deep end of contract 2.
#[test]
fn open_loop_fault_schedule_replays_byte_identically() {
    if std::env::var("HAMS_FAULTS").is_err() {
        return;
    }
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    let healthy = run_workload(&mut build_fault_platform(&scale), spec, &scale);
    let offered = 0.7 * healthy.accesses as f64 / healthy.total_time.as_secs_f64().max(1e-12);
    let (plan, span) = fig26_fault_schedule(scale.accesses, offered);
    let config = OpenLoopConfig::poisson(offered).with_records(false);
    let run = || {
        let mut platform = build_fault_platform(&scale);
        platform.controller_mut().set_fault_plan(plan.clone());
        let m = run_workload_open_loop(&mut platform, spec, &scale, &config);
        let end = m.last_finish.max(span).scale(2.0);
        platform.controller_mut().advance_faults(end);
        let stats = *platform.controller().fault_stats().unwrap();
        (m.run, m.arrivals, m.served, m.dropped, m.last_finish, stats)
    };
    let first = run();
    assert_eq!(first.5.faults_injected, 1);
    assert_eq!(first.5.repairs_completed, 1);
    assert_eq!(first, run(), "open-loop fault replay diverged between runs");
}

proptest! {
    /// The XOR model is self-inverse: for any row of equal-length units,
    /// `reconstruct` recovers any lost unit from the survivors plus
    /// `parity_of` — the guarantee a degraded read rests on.
    #[test]
    fn xor_reconstruction_recovers_any_lost_unit(
        units in collection::vec(collection::vec(any::<u8>(), 16..17), 2..7),
        lost_seed in any::<usize>(),
    ) {
        let parity = Raid5Layout::parity_of(&units);
        let lost = lost_seed % units.len();
        let rebuilt = Raid5Layout::reconstruct(&units, &parity, lost);
        prop_assert_eq!(&rebuilt, &units[lost]);
    }

    /// Parity rotation visits every device exactly once per `N` consecutive
    /// rows, so no single device carries the parity write load.
    #[test]
    fn parity_rotation_covers_every_device(devices in 2u16..9, base_row in 0u64..1_000) {
        let layout = Raid5Layout { devices, stripe_lbas: 1 };
        let mut seen: Vec<u16> = (0..u64::from(devices))
            .map(|r| layout.parity_device(base_row + r))
            .collect();
        seen.sort_unstable();
        let all: Vec<u16> = (0..devices).collect();
        prop_assert_eq!(seen, all);
    }
}
