//! The batched serving path and the parallel grid must be *semantically
//! invisible*: for every platform, `serve_batch` (and the batched runner
//! built on it) produces metrics byte-identical to the per-access reference
//! loop, and the parallel grid matches a serial sweep cell for cell.

use hams::platforms::{
    run_grid, run_grid_serial, run_workload, run_workload_batched, run_workload_serial,
    BatchRequest, PlatformKind, ScaleProfile,
};
use hams::sim::Nanos;
use hams::workloads::{TraceGenerator, WorkloadSpec};

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

#[test]
fn batched_runner_equals_serial_runner_for_every_platform() {
    let scale = tiny();
    for workload in ["rndRd", "update"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        for kind in PlatformKind::all() {
            let mut serial = kind.build(&scale);
            let mut batched = kind.build(&scale);
            let s = run_workload_serial(serial.as_mut(), spec, &scale);
            let b = run_workload(batched.as_mut(), spec, &scale);
            assert_eq!(
                s,
                b,
                "{} on {workload}: batched metrics diverged from the per-access loop",
                kind.label()
            );
        }
    }
}

#[test]
fn serve_batch_outcomes_equal_the_access_loop_for_every_platform() {
    let scale = tiny();
    let spec = scale.scale_spec(WorkloadSpec::by_name("rndWr").unwrap());
    let batch: Vec<BatchRequest> = TraceGenerator::new(spec, scale.seed, 512)
        .map(|access| BatchRequest {
            access,
            compute: Nanos::from_nanos(access.compute_instructions % 50),
        })
        .collect();
    let start = Nanos::from_micros(2);

    for kind in PlatformKind::all() {
        let mut reference = kind.build(&scale);
        let mut expected = Vec::with_capacity(batch.len());
        let mut t = start;
        for request in &batch {
            let outcome = reference.access(&request.access, t + request.compute);
            t = outcome.finished_at;
            expected.push(outcome);
        }

        let mut batched = kind.build(&scale);
        let result = batched.serve_batch(&batch, start);
        assert_eq!(
            result.outcomes,
            expected,
            "{}: serve_batch outcomes diverged from the access loop",
            kind.label()
        );
        assert_eq!(result.finished_at(start), t);
        // Observable platform state must converge too, not just timings.
        assert_eq!(batched.hit_rate(), reference.hit_rate(), "{}", kind.label());
        assert_eq!(
            batched.memory_delay(),
            reference.memory_delay(),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn batch_size_is_metrically_invisible() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("seqWr").unwrap();
    for kind in [
        PlatformKind::HamsLE,
        PlatformKind::Mmap,
        PlatformKind::FlatFlashP,
    ] {
        let reference = {
            let mut p = kind.build(&scale);
            run_workload_batched(p.as_mut(), spec, &scale, 1)
        };
        for batch_size in [3, 32, 777, usize::MAX] {
            let mut p = kind.build(&scale);
            let m = run_workload_batched(p.as_mut(), spec, &scale, batch_size);
            assert_eq!(reference, m, "{} at batch size {batch_size}", kind.label());
        }
    }
}

#[test]
fn parallel_grid_equals_serial_grid_over_the_table_iii_cells() {
    let scale = tiny();
    let kinds = PlatformKind::all();
    let specs: Vec<WorkloadSpec> = ["rndRd", "rndWr", "rndSel"]
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let parallel = run_grid(&kinds, &specs, &scale);
    let serial = run_grid_serial(&kinds, &specs, &scale);
    assert_eq!(parallel.len(), kinds.len() * specs.len());
    assert_eq!(
        parallel, serial,
        "parallel grid diverged from the serial sweep"
    );
}
