//! The multi-tenant serving layer's pinned contract.
//!
//! Multi-tenant open-loop serving (`run_tenant_set_open_loop`) merges N
//! seeded arrival streams into one time-ordered source feeding the *same*
//! engine as `run_workload_open_loop`, so it must degenerate to it exactly:
//!
//! 1. **One tenant is the plain open-loop run, byte for byte.** Tenant 0
//!    seeds from the base seed and the merge of one stream is the stream, so
//!    a single-tenant `TenantSet` must produce `OpenLoopMetrics` identical —
//!    every field, including the sojourn histogram and the folded
//!    `RunMetrics` — to `run_workload_open_loop` on all 11 platforms.
//! 2. **Accounting closes per tenant and in total.** Each tenant's
//!    `arrivals == served + dropped`, and the per-tenant counters sum
//!    exactly to the merged totals — no request is lost or double-counted by
//!    the merge (property-tested over random tenant counts, rates, queue
//!    shapes and seeds).
//! 3. **The merged stream is time-ordered.** `TenantSource` yields arrivals
//!    in non-decreasing order and exactly `accesses_or(default)` requests
//!    per tenant (property-tested).

use hams::platforms::{
    run_tenant_set_open_loop, run_workload_open_loop, AdmissionPolicy, OpenLoopConfig,
    PlatformKind, ScaleProfile, TenantMetrics,
};
use hams::workloads::{ArrivalProcess, TenantSet, TenantSource, TenantSpec, WorkloadSpec};
use proptest::prelude::*;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

fn sum_by(tenants: &[TenantMetrics], f: fn(&TenantMetrics) -> u64) -> u64 {
    tenants.iter().map(f).sum()
}

#[test]
fn single_tenant_set_is_byte_identical_to_open_loop_on_all_platforms() {
    let scale = tiny();
    for (workload, arrivals) in [
        (
            "rndRd",
            ArrivalProcess::Poisson {
                rate_per_sec: 2_000_000.0,
            },
        ),
        ("update", ArrivalProcess::Saturate),
    ] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        let config = OpenLoopConfig::poisson(1.0)
            .with_arrivals(arrivals)
            .with_queue_depth(32);
        let set = TenantSet::single("solo", spec, arrivals);
        for kind in PlatformKind::all() {
            let mut single = kind.build(&scale);
            let mut multi = kind.build(&scale);
            let reference = run_workload_open_loop(single.as_mut(), spec, &scale, &config);
            let mt = run_tenant_set_open_loop(multi.as_mut(), &set, &scale, &config);
            assert_eq!(
                mt.merged,
                reference,
                "{} on {workload}: single-tenant set diverged from run_workload_open_loop",
                kind.label()
            );
            assert_eq!(mt.tenants.len(), 1);
            let t = &mt.tenants[0];
            assert_eq!(t.arrivals, reference.arrivals, "{}", kind.label());
            assert_eq!(t.served, reference.served, "{}", kind.label());
            assert_eq!(t.dropped, reference.dropped, "{}", kind.label());
            assert_eq!(t.sojourn, reference.sojourn, "{}", kind.label());
            assert_eq!(t.first_arrival, reference.first_arrival, "{}", kind.label());
            assert_eq!(t.last_finish, reference.last_finish, "{}", kind.label());
            assert!((mt.fairness() - 1.0).abs() < 1e-12, "{}", kind.label());
        }
    }
}

#[test]
fn per_tenant_counters_sum_to_merged_totals_on_all_platforms() {
    let scale = tiny();
    // A shallow dropping queue under three competing tenants: plenty of
    // drops, so the conservation check covers every counter.
    let set = TenantSet::new(vec![
        TenantSpec::new(
            "reader",
            WorkloadSpec::by_name("rndRd").unwrap(),
            ArrivalProcess::Poisson {
                rate_per_sec: 3_000_000.0,
            },
        ),
        TenantSpec::new(
            "writer",
            WorkloadSpec::by_name("update").unwrap(),
            ArrivalProcess::Poisson {
                rate_per_sec: 6_000_000.0,
            },
        )
        .with_weight(2.0),
        TenantSpec::new(
            "bulk",
            WorkloadSpec::by_name("seqWr").unwrap(),
            ArrivalProcess::Saturate,
        )
        .with_accesses(400),
    ]);
    let config = OpenLoopConfig::poisson(1.0)
        .with_queue_depth(8)
        .with_policy(AdmissionPolicy::Drop);
    for kind in PlatformKind::all() {
        let mut p = kind.build(&scale);
        let m = run_tenant_set_open_loop(p.as_mut(), &set, &scale, &config);
        assert_eq!(
            sum_by(&m.tenants, |t| t.arrivals),
            m.merged.arrivals,
            "{}: per-tenant arrivals lost requests in the merge",
            kind.label()
        );
        assert_eq!(
            sum_by(&m.tenants, |t| t.served),
            m.merged.served,
            "{}",
            kind.label()
        );
        assert_eq!(
            sum_by(&m.tenants, |t| t.dropped),
            m.merged.dropped,
            "{}",
            kind.label()
        );
        assert!(
            m.merged.dropped > 0,
            "{}: saturated depth-8 dropping queue must reject",
            kind.label()
        );
        for t in &m.tenants {
            assert_eq!(
                t.arrivals,
                t.served + t.dropped,
                "{}: tenant {} accounting does not close",
                kind.label(),
                t.name
            );
            assert_eq!(t.sojourn.count(), t.served, "{}", kind.label());
        }
        assert_eq!(m.tenants[2].arrivals, 400, "accesses override respected");
        assert_eq!(
            m.tenants[0].arrivals + m.tenants[1].arrivals,
            2 * scale.accesses as u64
        );
        assert_eq!(m.merged.run.workload, "rndRd+update+seqWr");
        let fairness = m.fairness();
        assert!(fairness > 0.0 && fairness <= 1.0 + 1e-12);
    }
}

proptest! {
    /// The merged stream is time-ordered and complete for any tenant mix:
    /// arrivals are non-decreasing and each tenant contributes exactly its
    /// request count.
    #[test]
    fn merged_stream_is_time_ordered_and_complete(
        rates in collection::vec(1_000.0f64..50_000_000.0, 1..4),
        saturate_last in any::<bool>(),
        seed in 0u64..1_000,
        default_accesses in 50usize..300,
    ) {
        let names = ["a", "b", "c", "d"];
        let mut tenants: Vec<TenantSpec> = rates
            .iter()
            .enumerate()
            .map(|(i, &rate_per_sec)| {
                TenantSpec::new(
                    names[i],
                    WorkloadSpec::by_name("rndRd").unwrap(),
                    ArrivalProcess::Poisson { rate_per_sec },
                )
            })
            .collect();
        if saturate_last {
            let last = tenants.len() - 1;
            tenants[last] = tenants[last].clone().with_accesses(default_accesses / 2);
        }
        let set = TenantSet::new(tenants);
        let scaled: Vec<WorkloadSpec> = set.tenants.iter().map(|t| t.spec).collect();
        let source = TenantSource::new(&set, &scaled, seed, default_accesses);
        let mut counts = vec![0usize; set.len()];
        let mut last_arrival = None;
        for (tenant, _access, arrival) in source {
            prop_assert!(tenant < set.len());
            if let Some(prev) = last_arrival {
                prop_assert!(arrival >= prev, "merged stream went back in time");
            }
            last_arrival = Some(arrival);
            counts[tenant] += 1;
        }
        for (i, t) in set.tenants.iter().enumerate() {
            prop_assert_eq!(counts[i], t.accesses_or(default_accesses));
        }
    }

    /// Conservation under random queue shapes: every tenant's accounting
    /// closes and the per-tenant counters sum exactly to the merged totals.
    #[test]
    fn tenant_accounting_closes_under_random_configs(
        rate_a in 10_000.0f64..20_000_000.0,
        rate_b in 10_000.0f64..20_000_000.0,
        weight_b in 0.5f64..4.0,
        depth in 1usize..64,
        block in any::<bool>(),
        batch in 1usize..16,
        hams in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 250,
            seed,
        };
        let set = TenantSet::new(vec![
            TenantSpec::new(
                "a",
                WorkloadSpec::by_name("rndRd").unwrap(),
                ArrivalProcess::Poisson { rate_per_sec: rate_a },
            ),
            TenantSpec::new(
                "b",
                WorkloadSpec::by_name("update").unwrap(),
                ArrivalProcess::Poisson { rate_per_sec: rate_b },
            )
            .with_weight(weight_b),
        ]);
        let kind = if hams { PlatformKind::HamsTE } else { PlatformKind::Oracle };
        let policy = if block { AdmissionPolicy::Block } else { AdmissionPolicy::Drop };
        let config = OpenLoopConfig {
            queue_depth: depth,
            policy,
            batch_size: batch,
            ..OpenLoopConfig::poisson(1.0)
        };
        let mut p = kind.build(&scale);
        let m = run_tenant_set_open_loop(p.as_mut(), &set, &scale, &config);
        prop_assert_eq!(m.merged.arrivals, 2 * scale.accesses as u64);
        prop_assert_eq!(m.merged.arrivals, m.merged.served + m.merged.dropped);
        prop_assert_eq!(sum_by(&m.tenants, |t| t.arrivals), m.merged.arrivals);
        prop_assert_eq!(sum_by(&m.tenants, |t| t.served), m.merged.served);
        prop_assert_eq!(sum_by(&m.tenants, |t| t.dropped), m.merged.dropped);
        if block {
            prop_assert_eq!(m.merged.dropped, 0);
        }
        for t in &m.tenants {
            prop_assert_eq!(t.arrivals, t.served + t.dropped);
            prop_assert_eq!(t.sojourn.count(), t.served);
        }
        // Records carry valid tenant ids and per-tenant record counts match
        // the served counters.
        for (i, t) in m.tenants.iter().enumerate() {
            let recorded = m.merged.records.iter().filter(|r| r.tenant == i).count() as u64;
            prop_assert_eq!(recorded, t.served);
        }
        let fairness = m.fairness();
        prop_assert!(fairness > 0.0 && fairness <= 1.0 + 1e-12);
    }

    /// The degenerate pin holds for any arrival process and queue shape, not
    /// just the explicit all-platform sweep above.
    #[test]
    fn single_tenant_pin_holds_under_random_configs(
        rate_per_sec in 10_000.0f64..50_000_000.0,
        depth in 1usize..64,
        block in any::<bool>(),
        batch in 1usize..16,
        keep in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 250,
            seed,
        };
        let arrivals = ArrivalProcess::Poisson { rate_per_sec };
        let policy = if block { AdmissionPolicy::Block } else { AdmissionPolicy::Drop };
        let config = OpenLoopConfig {
            arrivals,
            queue_depth: depth,
            policy,
            batch_size: batch,
            keep_records: keep,
            ..OpenLoopConfig::poisson(1.0)
        };
        let spec = WorkloadSpec::by_name("update").unwrap();
        let set = TenantSet::single("solo", spec, arrivals);
        let mut single = PlatformKind::HamsTE.build(&scale);
        let mut multi = PlatformKind::HamsTE.build(&scale);
        let reference = run_workload_open_loop(single.as_mut(), spec, &scale, &config);
        let mt = run_tenant_set_open_loop(multi.as_mut(), &set, &scale, &config);
        prop_assert_eq!(&mt.merged, &reference);
        prop_assert_eq!(mt.merged.records.is_empty(), !keep || mt.merged.served == 0);
    }
}
