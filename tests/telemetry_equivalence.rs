//! The telemetry tier: tracing is observation, never perturbation.
//!
//! The span tracer and metrics registry ride along the serving spine
//! recording timestamps the engines already computed, so a traced run must
//! produce **byte-identical** simulated metrics to the untraced run on every
//! platform — closed loop and open loop, single- and multi-tenant. A tracer
//! that shifted a single dispatch instant would silently invalidate every
//! figure regenerated with it attached.
//!
//! On top of the equivalence pin, the tier checks the traces are worth
//! collecting: every served request yields a request-layer span, hardware
//! platforms surface their controller/tag-array/NVMe/MSI/archive crossings,
//! and the open-loop engine tags admission spans per tenant.

use hams::platforms::{
    run_tenant_set_open_loop, run_tenant_set_open_loop_traced, run_workload,
    run_workload_open_loop, run_workload_open_loop_traced, run_workload_traced, OpenLoopConfig,
    PlatformKind, ScaleProfile,
};
use hams::telemetry::{Layer, RunTelemetry};
use hams::workloads::{ArrivalProcess, TenantSet, TenantSpec, WorkloadSpec};

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

fn count(telemetry: &RunTelemetry, layer: Layer) -> u64 {
    telemetry.layer_counts()[layer.index()]
}

#[test]
fn traced_closed_loop_is_byte_identical_on_all_platforms() {
    let scale = tiny();
    for workload in ["rndRd", "update"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        for kind in PlatformKind::all() {
            let mut plain = kind.build(&scale);
            let reference = run_workload(plain.as_mut(), spec, &scale);

            let mut traced = kind.build(&scale);
            let mut telemetry = RunTelemetry::new();
            let metrics = run_workload_traced(traced.as_mut(), spec, &scale, &mut telemetry);
            assert_eq!(
                metrics,
                reference,
                "{} on {workload}: tracing changed the closed-loop metrics",
                kind.label()
            );
            assert_eq!(
                count(&telemetry, Layer::Request),
                scale.accesses as u64,
                "{} on {workload}: every access must yield a request span",
                kind.label()
            );
        }
    }
}

#[test]
fn traced_open_loop_is_byte_identical_on_all_platforms() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    // A finite Poisson rate (queueing, possible drops) and the degenerate
    // serial schedule (blocking admission) both stay pinned.
    let configs = [
        OpenLoopConfig::poisson(2.0e5).with_queue_depth(64),
        OpenLoopConfig::degenerate_serial(),
    ];
    for config in &configs {
        for kind in PlatformKind::all() {
            let mut plain = kind.build(&scale);
            let reference = run_workload_open_loop(plain.as_mut(), spec, &scale, config);

            let mut traced = kind.build(&scale);
            let mut telemetry = RunTelemetry::new();
            let metrics = run_workload_open_loop_traced(
                traced.as_mut(),
                spec,
                &scale,
                config,
                &mut telemetry,
            );
            assert_eq!(
                metrics,
                reference,
                "{}: tracing changed the open-loop metrics",
                kind.label()
            );
            assert_eq!(
                count(&telemetry, Layer::Request),
                metrics.served,
                "{}: every served request must yield a sojourn span",
                kind.label()
            );
            assert!(
                count(&telemetry, Layer::Admission) >= metrics.served,
                "{}: every served request crosses the admission layer",
                kind.label()
            );
            assert!(
                telemetry.registry.get("requests_served").is_some(),
                "{}: the registry must sample the served counter",
                kind.label()
            );
        }
    }
}

#[test]
fn traced_runs_cover_the_hardware_layers_on_hams_platforms() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    for kind in [
        PlatformKind::HamsLP,
        PlatformKind::HamsLE,
        PlatformKind::HamsTP,
        PlatformKind::HamsTE,
    ] {
        let mut platform = kind.build(&scale);
        let mut telemetry = RunTelemetry::new();
        run_workload_traced(platform.as_mut(), spec, &scale, &mut telemetry);
        for layer in [Layer::Controller, Layer::TagArray] {
            assert!(
                count(&telemetry, layer) > 0,
                "{}: no {} spans from a hardware-automated platform",
                kind.label(),
                layer.name()
            );
        }
        // The tiny cache cannot hold rndRd's working set, so misses must
        // reach the archive over NVMe.
        for layer in [Layer::Nvme, Layer::Archive] {
            assert!(
                count(&telemetry, layer) > 0,
                "{}: rndRd misses must cross the {} layer",
                kind.label(),
                layer.name()
            );
        }
    }
}

#[test]
fn traced_tenant_set_is_byte_identical_and_tags_tenants() {
    let scale = tiny();
    let victim = WorkloadSpec::by_name("rndRd").unwrap();
    let antagonist = WorkloadSpec::by_name("update").unwrap();
    let set = TenantSet::new(vec![
        TenantSpec::new(
            "victim",
            victim,
            ArrivalProcess::Poisson {
                rate_per_sec: 1.5e5,
            },
        ),
        TenantSpec::new(
            "antagonist",
            antagonist,
            ArrivalProcess::Poisson {
                rate_per_sec: 3.0e5,
            },
        ),
    ]);
    let config = OpenLoopConfig::poisson(1.0).with_queue_depth(32);
    for kind in [PlatformKind::Mmap, PlatformKind::HamsTE] {
        let mut plain = kind.build(&scale);
        let reference = run_tenant_set_open_loop(plain.as_mut(), &set, &scale, &config);

        let mut traced = kind.build(&scale);
        let mut telemetry = RunTelemetry::new();
        let metrics =
            run_tenant_set_open_loop_traced(traced.as_mut(), &set, &scale, &config, &mut telemetry);
        assert_eq!(
            metrics,
            reference,
            "{}: tracing changed the multi-tenant metrics",
            kind.label()
        );
        let tenants: std::collections::BTreeSet<u16> = telemetry
            .recorder
            .spans()
            .filter(|s| s.layer == Layer::Request)
            .filter_map(|s| s.tenant)
            .collect();
        assert_eq!(
            tenants.len(),
            2,
            "{}: request spans must carry both tenant tags, got {tenants:?}",
            kind.label()
        );
        for tenant in 0..2 {
            assert!(
                telemetry
                    .registry
                    .get(&format!("tenant{tenant}_dropped"))
                    .is_some(),
                "{}: per-tenant drop counters must be sampled",
                kind.label()
            );
        }
    }
}
