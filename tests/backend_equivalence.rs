//! The archive-backend contract.
//!
//! The [`ArchiveSet`](hams::flash::ArchiveSet) topology layer sits between
//! the HAMS controller and its ULL-Flash devices. Its pinned contract has
//! two halves:
//!
//! 1. **Single is the pre-topology engine, byte for byte.**
//!    `run_workload_backend` under [`BackendTopology::single`] — and under a
//!    one-device RAID-0 — is byte-identical to the unconfigured per-access
//!    reference `run_workload_serial`, for all 11 platforms (the CI matrix
//!    re-runs this suite under `HAMS_THREADS` ∈ {1, 8} × `HAMS_SHARDS` ∈
//!    {1, 4} × `HAMS_DEVICES` ∈ {1, 4}).
//! 2. **Striping partitions work, it does not change it.** A multi-device
//!    RAID-0 run serves the same command stream as its single-device twin —
//!    per-device byte totals sum exactly to the single-device totals, cache
//!    behaviour (hits, misses, fills, evictions) is identical — while the
//!    timing legitimately improves: that is what the fan-out buys, and the
//!    `hams-TE-d{n}` sweep pins `d{n}` strictly beating `d1` on random
//!    reads. Batched multi-device serving stays byte-identical to its own
//!    serial reference (`run_workload_serial_backend`) at every thread
//!    count and batch size.

use hams::platforms::{
    build_cxl_platform, build_raid_sweep_platform, cxl_label, raid_sweep_label,
    register_hams_raid_sweep, run_grid_with, run_workload_backend, run_workload_serial,
    run_workload_serial_backend, BackendTopology, PlatformKind, PlatformRegistry, ScaleProfile,
};
use hams::workloads::WorkloadSpec;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 37,
    }
}

#[test]
fn single_backend_is_byte_identical_to_the_pre_topology_reference_on_all_platforms() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    for kind in PlatformKind::all() {
        // The serial twin is pinned to the single backend too, so the test
        // holds on every CI leg — under `HAMS_DEVICES=4` the *unconfigured*
        // HAMS default is a RAID set, and `configure_backend` is exactly
        // the lever that opts back down to the pre-topology engine.
        let mut serial = kind.build(&scale);
        let reference =
            run_workload_serial_backend(serial.as_mut(), spec, &scale, BackendTopology::single());
        for topology in [BackendTopology::single(), BackendTopology::raid0(1)] {
            let mut configured = kind.build(&scale);
            let m = run_workload_backend(configured.as_mut(), spec, &scale, topology);
            assert_eq!(
                m,
                reference,
                "{}: {topology:?} diverged from the single-backend serial reference",
                kind.label()
            );
        }
        // Without the env override the unconfigured platform *is* the
        // pre-topology engine: the batched default path must match the
        // pinned single-backend reference byte for byte.
        if BackendTopology::from_env().is_none() {
            let mut unconfigured = kind.build(&scale);
            let plain = run_workload_serial(unconfigured.as_mut(), spec, &scale);
            assert_eq!(
                plain,
                reference,
                "{}: the unconfigured default diverged from BackendTopology::single()",
                kind.label()
            );
        }
    }
}

#[test]
fn only_platforms_with_an_in_controller_archive_honour_the_backend() {
    let scale = tiny();
    for kind in PlatformKind::all() {
        let mut platform = kind.build(&scale);
        let honoured = platform.configure_backend(BackendTopology::raid0(4));
        let is_hams = kind.label().starts_with("hams");
        assert_eq!(
            honoured,
            is_hams,
            "{}: only the HAMS variants own an archive set",
            kind.label()
        );
    }
}

#[test]
fn raid_serving_is_byte_identical_between_batched_and_serial_paths() {
    // Multi-device timing differs from single-device — that is the point —
    // so RAID runs pin against their own serial reference, exactly like the
    // multi-queue contract.
    let scale = tiny();
    let topology = BackendTopology::raid0(4);
    for workload in ["rndRd", "update"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        for kind in [PlatformKind::HamsTE, PlatformKind::HamsLP] {
            let mut serial = kind.build(&scale);
            let mut batched = kind.build(&scale);
            let s = run_workload_serial_backend(serial.as_mut(), spec, &scale, topology);
            let b = run_workload_backend(batched.as_mut(), spec, &scale, topology);
            assert_eq!(
                s,
                b,
                "{} on {workload}: batched RAID serving diverged from serial",
                kind.label()
            );
        }
    }
}

#[test]
fn raid_per_device_traffic_sums_to_the_single_device_totals() {
    let scale = ScaleProfile {
        capacity_divisor: 2048,
        accesses: 2_500,
        seed: 9,
    };
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let mut d1 = build_raid_sweep_platform(&scale, 1);
    let mut d4 = build_raid_sweep_platform(&scale, 4);
    let m1 = hams::platforms::run_workload(&mut d1, spec, &scale);
    let m4 = hams::platforms::run_workload(&mut d4, spec, &scale);

    // Identical work, partitioned across four archives…
    assert_eq!(m1.accesses, m4.accesses);
    let single = d1.controller().archive().stats();
    let raid = d4.controller().archive().stats();
    assert_eq!(raid.bytes_read, single.bytes_read);
    assert_eq!(raid.bytes_written, single.bytes_written);
    // Fill stripe commands are stripe-aligned (4 KB each), so they route
    // whole and their count is invariant; whole-page eviction writes split
    // at stripe boundaries, counting once per segment — their *bytes* are
    // what must (and do) sum exactly.
    assert_eq!(raid.read_commands, single.read_commands);
    assert!(raid.write_commands >= single.write_commands);
    assert_eq!(
        d1.controller().stats().fill_bytes,
        d4.controller().stats().fill_bytes
    );
    assert_eq!(d1.controller().stats().hits, d4.controller().stats().hits);
    assert_eq!(
        d1.controller().stats().misses,
        d4.controller().stats().misses
    );
    let spread = d4
        .controller()
        .archive()
        .device_stats()
        .iter()
        .filter(|s| s.bytes_read + s.bytes_written > 0)
        .count();
    assert!(spread > 1, "traffic must actually fan out, spread={spread}");

    // …finished strictly faster — the acceptance bar for the d{n} sweep.
    assert!(
        m4.total_time < m1.total_time,
        "RAID-0 d4 ({}) must strictly beat d1 ({}) on random reads",
        m4.total_time,
        m1.total_time
    );
    assert!(m4.pages_per_sec > m1.pages_per_sec);
}

#[test]
fn raid_sweep_grid_rows_match_their_serial_twins() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let mut registry = PlatformRegistry::standard();
    register_hams_raid_sweep(&mut registry, &[1, 2, 4]);
    let mut labels: Vec<String> = [1u16, 2, 4].iter().map(|&n| raid_sweep_label(n)).collect();
    labels.push(cxl_label());
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();

    // Serial reference: each sweep cell through the per-access loop. The
    // entries carry their BackendTopology in the constructor, so this loop
    // *is* run_workload_serial_backend for them.
    let serial: Vec<_> = label_refs
        .iter()
        .map(|label| {
            let mut platform = registry.build(label, &scale).unwrap();
            run_workload_serial(platform.as_mut(), spec, &scale)
        })
        .collect();

    let grid = run_grid_with(&registry, &label_refs, &[spec], &scale);
    assert_eq!(grid, serial, "device sweep grid diverged from serial");
}

#[test]
fn cxl_attached_backend_trails_the_ddr4_attach_and_still_routes_identically() {
    let scale = ScaleProfile {
        capacity_divisor: 2048,
        accesses: 2_000,
        seed: 5,
    };
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let mut tight = build_raid_sweep_platform(&scale, 4);
    let mut cxl = build_cxl_platform(&scale);
    assert!(cxl.controller().backend_topology().uses_cxl());
    let m_tight = hams::platforms::run_workload(&mut tight, spec, &scale);
    let m_cxl = hams::platforms::run_workload(&mut cxl, spec, &scale);
    // Same stripe routing → same per-device traffic…
    assert_eq!(
        tight.controller().archive().stats(),
        cxl.controller().archive().stats()
    );
    // …but the CXL link is slower than the DDR4 register attach.
    assert!(
        m_cxl.total_time > m_tight.total_time,
        "CXL attach ({}) must pay more than the DDR4 attach ({})",
        m_cxl.total_time,
        m_tight.total_time
    );
}
