//! Integration and property tests for the persistency control of §IV-B/§V-C:
//! acknowledged writes survive power failures in every HAMS configuration —
//! including every shard shape of the MoS tag directory and every
//! multi-device archive backend — and recovery re-issues exactly the
//! journal-tagged commands, replaying each into the bank that owns its
//! page's set and the archive device that owns its stripe.

use hams::core::{
    AttachMode, BackendTopology, HamsConfig, HamsController, PersistMode, ShardConfig,
};
use hams::sim::Nanos;
use proptest::prelude::*;

fn controller(attach: AttachMode, persist: PersistMode) -> HamsController {
    HamsController::new(HamsConfig::tiny_for_tests(attach, persist))
}

fn sharded_controller(
    attach: AttachMode,
    persist: PersistMode,
    shards: ShardConfig,
) -> HamsController {
    HamsController::new(HamsConfig::tiny_for_tests(attach, persist).with_shards(shards))
}

fn all_modes() -> Vec<(AttachMode, PersistMode)> {
    vec![
        (AttachMode::Loose, PersistMode::Persist),
        (AttachMode::Loose, PersistMode::Extend),
        (AttachMode::Tight, PersistMode::Persist),
        (AttachMode::Tight, PersistMode::Extend),
    ]
}

#[test]
fn every_mode_survives_a_power_failure_mid_eviction_storm() {
    for (attach, persist) in all_modes() {
        let mut hams = controller(attach, persist);
        let page_size = hams.config().mos_page_size;
        let pages = hams.cache_sets() as u64 + 64;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for i in 0..pages {
            let addr = i * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        let _event = hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "{attach:?}/{persist:?}: page {page} lost"
            );
        }
    }
}

#[test]
fn every_mode_survives_a_power_failure_with_a_sharded_tag_array() {
    // The same eviction storm as above, but with the directory partitioned
    // into banks — and pinned byte-identical to the single-bank run: the
    // power-failure event, the recovery report and the controller stats may
    // not shift under the shard shape.
    for (attach, persist) in all_modes() {
        for shards in [ShardConfig::interleaved(4), ShardConfig::blocked(3)] {
            let mut single = controller(attach, persist);
            let mut sharded = sharded_controller(attach, persist, shards);
            let page_size = sharded.config().mos_page_size;
            let pages = sharded.cache_sets() as u64 + 64;
            let mut now_a = Nanos::ZERO;
            let mut now_b = Nanos::ZERO;
            let mut written = Vec::new();
            for i in 0..pages {
                let addr = i * page_size;
                now_a = single.access(addr, true, 64, now_a).finished_at;
                now_b = sharded.access(addr, true, 64, now_b).finished_at;
                written.push(sharded.page_of(addr));
            }
            assert_eq!(
                now_a, now_b,
                "{attach:?}/{persist:?}/{shards:?} timing drifted"
            );
            let event_a = single.power_fail(now_a);
            let event_b = sharded.power_fail(now_b);
            assert_eq!(
                event_a, event_b,
                "{attach:?}/{persist:?}/{shards:?} event drifted"
            );
            let report_a = single.recover(now_a);
            let report_b = sharded.recover(now_b);
            assert_eq!(
                report_a, report_b,
                "{attach:?}/{persist:?}/{shards:?} recovery drifted"
            );
            for page in written {
                assert!(
                    sharded.is_page_recoverable(page, report_b.completed_at),
                    "{attach:?}/{persist:?}/{shards:?}: page {page} lost"
                );
            }
            assert_eq!(single.stats(), sharded.stats());
        }
    }
}

#[test]
fn recovery_replays_journal_tags_into_the_correct_shard() {
    let shards = ShardConfig::interleaved(4);
    let mut hams = sharded_controller(AttachMode::Loose, PersistMode::Extend, shards);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    // Alias several sets so dirty evictions (journal-tagged writes) are in
    // flight across different banks when the power fails.
    for i in 0..(sets + 48) {
        now = hams.access(i * page_size, true, 64, now).finished_at;
    }
    // Every journal tag must carry the bank of its page's set, as the
    // directory routes it — the recovery scan needs no global ordering
    // point to find the owner.
    let pending = hams.engine().journaled_incomplete(now);
    assert!(
        !pending.is_empty(),
        "eviction storm should leave journal-tagged commands in flight"
    );
    for tracked in &pending {
        assert_eq!(
            tracked.shard,
            hams.shard_of_page(tracked.mos_page),
            "journal tag for page {} recorded the wrong bank",
            tracked.mos_page
        );
        assert!(tracked.shard < hams.num_shards());
    }
    let _ = hams.power_fail(now);
    let report = hams.recover(now);
    for page in &report.reissued_pages {
        assert!(
            hams.is_page_recoverable(*page, report.completed_at),
            "page {page} not recoverable after sharded replay"
        );
    }
}

#[test]
fn persist_mode_raid_failure_and_recovery_are_byte_identical_to_the_single_device_twin() {
    // Persist mode keeps one command outstanding, so the device resources
    // are idle whenever the next command arrives — a RAID-0 fan-out cannot
    // overlap anything and must be byte-identical to the single-archive
    // twin, failure, recovery, stats and all. (Tight attach: no per-device
    // DRAM whose aggregate capacity could shift read caching.)
    for shards in [ShardConfig::single(), ShardConfig::interleaved(4)] {
        let base =
            HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Persist).with_shards(shards);
        let mut single = HamsController::new(base);
        let mut raid =
            HamsController::new(base.with_backend(BackendTopology::raid0_striped(4, 4096)));
        assert_eq!(raid.num_devices(), 4);
        let page_size = raid.config().mos_page_size;
        let sets = raid.cache_sets() as u64;
        let mut now_a = Nanos::ZERO;
        let mut now_b = Nanos::ZERO;
        let mut written = Vec::new();
        // Cross-device conflicts: aliases of neighbouring sets map to
        // different devices (page-granularity stripes round-robin pages),
        // so in-flight evictions at the failure point span the whole set.
        for i in 0..(sets + 48) {
            let addr = (i % sets + (i / sets) * sets) * page_size;
            let a = single.access(addr, true, 64, now_a);
            let b = raid.access(addr, true, 64, now_b);
            assert_eq!(a, b, "persist-mode RAID timing drifted at access {i}");
            now_a = a.finished_at;
            now_b = b.finished_at;
            written.push(raid.page_of(addr));
        }
        let event_a = single.power_fail(now_a);
        let event_b = raid.power_fail(now_b);
        assert_eq!(event_a, event_b, "power-failure event drifted under RAID");
        let report_a = single.recover(now_a);
        let report_b = raid.recover(now_b);
        assert_eq!(report_a, report_b, "recovery report drifted under RAID");
        assert_eq!(single.stats(), raid.stats());
        for page in written {
            assert!(
                raid.is_page_recoverable(page, report_b.completed_at),
                "page {page} lost across power failure under RAID"
            );
        }
    }
}

#[test]
fn power_failure_mid_striped_raid_fill_recovers_every_acknowledged_write() {
    // Extend mode with multi-LBA pages, queue-striped fills and
    // page-granularity RAID stripes (device ownership aligned with the tag
    // banks): background evictions of different victim pages are in flight
    // to *several* archives at once when the power fails.
    let config = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend)
        .with_mos_page_size(32 * 1024)
        .with_queues(hams::nvme::QueueConfig::striped(4))
        .with_shards(ShardConfig::interleaved(4))
        .with_backend(BackendTopology::raid0(4));
    let mut hams = HamsController::new(config);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    let mut written = Vec::new();
    // Alias sets so dirty evictions and striped fills are in flight, then
    // fail immediately after an access acknowledges — its page's stripe
    // commands may still be outstanding.
    for i in 0..(sets + 32) {
        let addr = (i % sets + (i / sets) * sets) * page_size;
        now = hams.access(addr, true, 64, now).finished_at;
        written.push(hams.page_of(addr));
    }
    let pending = hams.engine().journaled_incomplete(now);
    assert!(
        !pending.is_empty(),
        "the storm should leave journal-tagged commands in flight"
    );
    // Every journal tag records the device the archive routes its stripe
    // to, and the in-flight set spans more than one device — the
    // cross-device conflict this test exists for.
    let mut devices_seen = std::collections::BTreeSet::new();
    for tracked in &pending {
        assert!(tracked.device < hams.num_devices());
        devices_seen.insert(tracked.device);
    }
    assert!(
        devices_seen.len() > 1,
        "in-flight commands should span devices, saw only {devices_seen:?}"
    );
    let _event = hams.power_fail(now);
    let report = hams.recover(now);
    for page in written {
        assert!(
            hams.is_page_recoverable(page, report.completed_at),
            "page {page} lost across a mid-fill power failure"
        );
    }
    for page in &report.reissued_pages {
        assert!(hams.is_page_recoverable(*page, report.completed_at));
    }
}

#[test]
fn power_failure_mid_parity_update_loses_no_acknowledged_write() {
    // A device fails mid-run on the parity array and the power then fails
    // while the array is still degraded — i.e. while journal-tagged writes
    // are being parity-absorbed by the failed stripes' buddies. Recovery
    // must replay the journal into the surviving devices and every
    // acknowledged write must still be recoverable, even the ones whose
    // home device is out.
    let config = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Persist)
        .with_backend(BackendTopology::raid5_striped(4, 4096));
    let mut hams = HamsController::new(config);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    let mut written = Vec::new();
    // Phase 1: healthy writes across every device.
    for i in 0..(sets + 16) {
        let addr = (i % sets + (i / sets) * sets) * page_size;
        now = hams.access(addr, true, 64, now).finished_at;
        written.push(hams.page_of(addr));
    }
    // Fail device 0 right now; the spare stays far away so the whole rest
    // of the stream runs degraded.
    hams.set_fault_plan(hams::core::FaultPlan::new().with_fail_stop(
        0,
        now,
        now + Nanos::from_secs(100),
    ));
    // Phase 2: degraded writes — the ones to device 0's stripes are
    // parity-absorbed mid-update when the power fails.
    for i in 0..(sets + 16) {
        let addr = (i % sets + (i / sets) * sets) * page_size;
        now = hams.access(addr, true, 64, now).finished_at;
        written.push(hams.page_of(addr));
    }
    assert_eq!(hams.array_state(), hams::core::ArrayState::Degraded);
    let stats = *hams.fault_stats().unwrap();
    assert!(
        stats.parity_absorbed_writes > 0,
        "the degraded phase must have parity-absorbed at least one write"
    );
    let _event = hams.power_fail(now);
    let report = hams.recover(now);
    for page in written {
        assert!(
            hams.is_page_recoverable(page, report.completed_at),
            "page {page} lost across a mid-parity-update power failure"
        );
    }
}

#[test]
fn power_failure_during_rebuild_loses_no_acknowledged_write() {
    // The spare has arrived and the rebuild is copying reconstructed rows
    // onto it — foreground writes keep journal-tagging — when the power
    // fails mid-rebuild. Nothing acknowledged may be lost, and once power
    // returns the rebuild runs dry and the array is healthy again with
    // every page durable.
    let config = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Persist)
        .with_backend(BackendTopology::raid5_striped(4, 4096));
    let mut hams = HamsController::new(config);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    let mut written = Vec::new();
    for i in 0..(sets + 16) {
        let addr = (i % sets + (i / sets) * sets) * page_size;
        now = hams.access(addr, true, 64, now).finished_at;
        written.push(hams.page_of(addr));
    }
    // Fail immediately, spare arrives almost at once, but pace the rebuild
    // slowly enough that phase 2 runs while rows are still being copied.
    hams.set_fault_plan(
        hams::core::FaultPlan::new()
            .with_fail_stop(1, now, now + Nanos::from_micros(1))
            .with_rebuild(hams::core::RebuildConfig {
                row_interval: Nanos::from_millis(100),
                ..hams::core::RebuildConfig::default()
            }),
    );
    for i in 0..(sets + 16) {
        let addr = (i % sets + (i / sets) * sets) * page_size;
        now = hams.access(addr, true, 64, now).finished_at;
        written.push(hams.page_of(addr));
    }
    assert_eq!(
        hams.array_state(),
        hams::core::ArrayState::Rebuilding,
        "phase 2 must have run while the rebuild was still in flight"
    );
    let stats = *hams.fault_stats().unwrap();
    assert!(
        stats.rebuild_rows_done < stats.rebuild_rows_total,
        "the power must fail before the rebuild runs dry"
    );
    let _event = hams.power_fail(now);
    let report = hams.recover(now);
    for page in &written {
        assert!(
            hams.is_page_recoverable(*page, report.completed_at),
            "page {page} lost across a mid-rebuild power failure"
        );
    }
    // Power is back: let the rebuild finish and re-check durability on the
    // healthy array — the journal replayed into both survivors and the
    // reconstructed device.
    hams.advance_faults(now + Nanos::from_secs(100));
    assert_eq!(hams.array_state(), hams::core::ArrayState::Healthy);
    let stats = *hams.fault_stats().unwrap();
    assert_eq!(stats.repairs_completed, 1);
    assert_eq!(stats.rebuild_rows_done, stats.rebuild_rows_total);
    for page in &written {
        assert!(
            hams.is_page_recoverable(*page, report.completed_at),
            "page {page} lost after the post-recovery rebuild completed"
        );
    }
}

#[test]
fn recovery_is_idempotent_when_nothing_is_in_flight() {
    let mut hams = controller(AttachMode::Tight, PersistMode::Extend);
    let mut now = Nanos::ZERO;
    for i in 0..32u64 {
        now = hams.access(i * 64, true, 64, now).finished_at;
    }
    // Let everything drain by advancing far into the future before failing.
    let quiet = now + Nanos::from_secs(1);
    let r1 = hams.access(0, false, 64, quiet);
    let event = hams.power_fail(r1.finished_at);
    assert_eq!(event.incomplete_commands, 0);
    let report = hams.recover(r1.finished_at);
    assert!(report.reissued_pages.is_empty());
}

#[test]
fn persist_mode_makes_evicted_pages_durable_on_flash_immediately() {
    let mut hams = controller(AttachMode::Loose, PersistMode::Persist);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    // Dirty page 0, then evict it by touching its conflict partner.
    now = hams.access(0, true, 64, now).finished_at;
    now = hams.access(sets * page_size, true, 64, now).finished_at;
    // Give the FUA write time to complete, then check durability directly.
    let settled = now + Nanos::from_secs(1);
    let _ = hams.access(64, false, 64, settled);
    assert!(
        hams.page_durable_on_flash(0),
        "persist mode must push the evicted page to flash"
    );
}

proptest! {
    // 48 cases (the shim default): 12 was too few to hit the interesting
    // wait-queue interleavings — with the old wide generators (addresses in
    // 0..4096 over a ~2048-set span), two accesses rarely collided on a set,
    // so in-flight-conflict and eviction-during-fill paths went unexplored.
    // The generators below are narrowed to a small page span instead, which
    // forces set conflicts in nearly every case while keeping each case
    // short enough that the suite stays in the sub-second range.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random write-heavy access streams and a power failure at an
    /// arbitrary point, no acknowledged write is ever lost (extend mode,
    /// the weaker of the two persistence settings) — under any shard shape
    /// of the tag directory, with the whole failure/recovery sequence pinned
    /// byte-identical to a single-bank twin fed the same stream.
    ///
    /// `(set, alias)` pairs address page `set + alias * cache_sets`: every
    /// alias of a set maps to the *same* NVDIMM line with a different tag,
    /// so the stream constantly conflicts on in-flight lines and evicts
    /// dirty victims whose write-backs race the power failure. The sets
    /// 0..24 deliberately span several banks (interleaved partitioning puts
    /// consecutive sets in different banks), so conflicting in-flight
    /// evictions and fills are forced *across* shard boundaries, not just
    /// within one bank.
    #[test]
    fn random_streams_never_lose_acknowledged_writes(
        slots in proptest::collection::vec((0u64..24, 0u64..3), 16..96),
        fail_after in 5usize..80,
        shard_count in 1u16..9,
        policy_pick in 0u8..2,
    ) {
        let shards = if policy_pick == 0 {
            ShardConfig::interleaved(shard_count)
        } else {
            ShardConfig::blocked(shard_count)
        };
        let mut single = controller(AttachMode::Loose, PersistMode::Extend);
        let mut hams = sharded_controller(AttachMode::Loose, PersistMode::Extend, shards);
        let page_size = hams.config().mos_page_size;
        let sets = hams.cache_sets() as u64;
        let mut now = Nanos::ZERO;
        let mut now_single = Nanos::ZERO;
        let mut written = Vec::new();
        for (i, (set, alias)) in slots.iter().enumerate() {
            if i == fail_after {
                break;
            }
            let addr = (set + alias * sets) * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            now_single = single.access(addr, true, 64, now_single).finished_at;
            written.push(hams.page_of(addr));
        }
        prop_assert_eq!(now, now_single, "shard shape shifted the stream timing");
        let event = hams.power_fail(now);
        let event_single = single.power_fail(now_single);
        prop_assert_eq!(&event, &event_single);
        let report = hams.recover(now);
        let report_single = single.recover(now_single);
        prop_assert_eq!(&report, &report_single);
        for page in written {
            prop_assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "page {page} lost after power failure under {shards:?}"
            );
        }
    }

    /// The multi-device twin of the stream property above: for random
    /// write-heavy streams over a RAID-0 archive set, a power failure at an
    /// arbitrary point never loses an acknowledged write, and every
    /// journal tag's recorded device matches the live archive routing.
    /// (Byte-identity to the single-device twin is *not* asserted here —
    /// extend-mode fan-out legitimately shifts timing; the persist-mode
    /// integration test above pins the byte-identical case.)
    #[test]
    fn raid_streams_never_lose_acknowledged_writes(
        slots in proptest::collection::vec((0u64..24, 0u64..3), 16..96),
        fail_after in 5usize..80,
        device_count in 1u16..5,
    ) {
        let mut hams = HamsController::new(
            HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend)
                .with_backend(BackendTopology::raid0_striped(device_count, 4096)),
        );
        let page_size = hams.config().mos_page_size;
        let sets = hams.cache_sets() as u64;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for (i, (set, alias)) in slots.iter().enumerate() {
            if i == fail_after {
                break;
            }
            let addr = (set + alias * sets) * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        for tracked in hams.engine().journaled_incomplete(now) {
            prop_assert_eq!(
                tracked.device,
                hams.device_of_page(tracked.mos_page),
                "journal tag recorded the wrong archive device"
            );
        }
        let _event = hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            prop_assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "page {page} lost after power failure on {device_count} devices"
            );
        }
    }

    /// The wait-queue / busy-bit machinery never deadlocks and never loses an
    /// access: the number of completed accesses always equals the number
    /// issued, regardless of the interleaving of reads and writes. The same
    /// aliased addressing as above drives the stream through the
    /// busy-line-conflict and eviction-during-pending-fill interleavings,
    /// and a back-dated re-access of the previous line exercises the wait
    /// queue against in-flight completions.
    #[test]
    fn accesses_are_never_lost_under_arbitrary_interleavings(
        ops in proptest::collection::vec((0u64..16, 0u64..4, any::<bool>()), 1..128),
        shard_count in 1u16..9,
    ) {
        let mut hams = sharded_controller(
            AttachMode::Tight,
            PersistMode::Extend,
            ShardConfig::interleaved(shard_count),
        );
        let page_size = hams.config().mos_page_size;
        let sets = hams.cache_sets() as u64;
        let mut now = Nanos::ZERO;
        let mut previous: Option<u64> = None;
        for (set, alias, is_write) in &ops {
            let addr = (set + alias * sets) * page_size;
            let result = hams.access(addr, *is_write, 64, now);
            prop_assert!(result.finished_at >= now, "time went backwards");
            // Touch the previously accessed line again *before* its fill or
            // eviction completes: the wait queue must park this access, not
            // drop it.
            if let Some(prev) = previous {
                let early = result.finished_at.saturating_sub(Nanos::from_nanos(1));
                let replay = hams.access(prev, false, 64, early);
                prop_assert!(replay.finished_at >= early);
            }
            previous = Some(addr);
            now = result.finished_at.max(now);
        }
        let issued = ops.len() as u64 * 2 - 1;
        prop_assert_eq!(hams.stats().accesses, issued);
        prop_assert_eq!(hams.stats().hits + hams.stats().misses, issued);
        prop_assert!(hams.stats().wait_stalls <= hams.stats().accesses);
    }
}
