//! Integration and property tests for the persistency control of §IV-B/§V-C:
//! acknowledged writes survive power failures in every HAMS configuration,
//! and recovery re-issues exactly the journal-tagged commands.

use hams::core::{AttachMode, HamsConfig, HamsController, PersistMode};
use hams::sim::Nanos;
use proptest::prelude::*;

fn controller(attach: AttachMode, persist: PersistMode) -> HamsController {
    HamsController::new(HamsConfig::tiny_for_tests(attach, persist))
}

fn all_modes() -> Vec<(AttachMode, PersistMode)> {
    vec![
        (AttachMode::Loose, PersistMode::Persist),
        (AttachMode::Loose, PersistMode::Extend),
        (AttachMode::Tight, PersistMode::Persist),
        (AttachMode::Tight, PersistMode::Extend),
    ]
}

#[test]
fn every_mode_survives_a_power_failure_mid_eviction_storm() {
    for (attach, persist) in all_modes() {
        let mut hams = controller(attach, persist);
        let page_size = hams.config().mos_page_size;
        let pages = hams.cache_sets() as u64 + 64;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for i in 0..pages {
            let addr = i * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        let _event = hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "{attach:?}/{persist:?}: page {page} lost"
            );
        }
    }
}

#[test]
fn recovery_is_idempotent_when_nothing_is_in_flight() {
    let mut hams = controller(AttachMode::Tight, PersistMode::Extend);
    let mut now = Nanos::ZERO;
    for i in 0..32u64 {
        now = hams.access(i * 64, true, 64, now).finished_at;
    }
    // Let everything drain by advancing far into the future before failing.
    let quiet = now + Nanos::from_secs(1);
    let r1 = hams.access(0, false, 64, quiet);
    let event = hams.power_fail(r1.finished_at);
    assert_eq!(event.incomplete_commands, 0);
    let report = hams.recover(r1.finished_at);
    assert!(report.reissued_pages.is_empty());
}

#[test]
fn persist_mode_makes_evicted_pages_durable_on_flash_immediately() {
    let mut hams = controller(AttachMode::Loose, PersistMode::Persist);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    // Dirty page 0, then evict it by touching its conflict partner.
    now = hams.access(0, true, 64, now).finished_at;
    now = hams.access(sets * page_size, true, 64, now).finished_at;
    // Give the FUA write time to complete, then check durability directly.
    let settled = now + Nanos::from_secs(1);
    let _ = hams.access(64, false, 64, settled);
    assert!(
        hams.page_durable_on_flash(0),
        "persist mode must push the evicted page to flash"
    );
}

proptest! {
    // 48 cases (the shim default): 12 was too few to hit the interesting
    // wait-queue interleavings — with the old wide generators (addresses in
    // 0..4096 over a ~2048-set span), two accesses rarely collided on a set,
    // so in-flight-conflict and eviction-during-fill paths went unexplored.
    // The generators below are narrowed to a small page span instead, which
    // forces set conflicts in nearly every case while keeping each case
    // short enough that the suite stays in the sub-second range.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random write-heavy access streams and a power failure at an
    /// arbitrary point, no acknowledged write is ever lost (extend mode,
    /// the weaker of the two persistence settings).
    ///
    /// `(set, alias)` pairs address page `set + alias * cache_sets`: every
    /// alias of a set maps to the *same* NVDIMM line with a different tag,
    /// so the stream constantly conflicts on in-flight lines and evicts
    /// dirty victims whose write-backs race the power failure.
    #[test]
    fn random_streams_never_lose_acknowledged_writes(
        slots in proptest::collection::vec((0u64..24, 0u64..3), 16..96),
        fail_after in 5usize..80,
    ) {
        let mut hams = controller(AttachMode::Loose, PersistMode::Extend);
        let page_size = hams.config().mos_page_size;
        let sets = hams.cache_sets() as u64;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for (i, (set, alias)) in slots.iter().enumerate() {
            if i == fail_after {
                break;
            }
            let addr = (set + alias * sets) * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            prop_assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "page {page} lost after power failure"
            );
        }
    }

    /// The wait-queue / busy-bit machinery never deadlocks and never loses an
    /// access: the number of completed accesses always equals the number
    /// issued, regardless of the interleaving of reads and writes. The same
    /// aliased addressing as above drives the stream through the
    /// busy-line-conflict and eviction-during-pending-fill interleavings,
    /// and a back-dated re-access of the previous line exercises the wait
    /// queue against in-flight completions.
    #[test]
    fn accesses_are_never_lost_under_arbitrary_interleavings(
        ops in proptest::collection::vec((0u64..16, 0u64..4, any::<bool>()), 1..128),
    ) {
        let mut hams = controller(AttachMode::Tight, PersistMode::Extend);
        let page_size = hams.config().mos_page_size;
        let sets = hams.cache_sets() as u64;
        let mut now = Nanos::ZERO;
        let mut previous: Option<u64> = None;
        for (set, alias, is_write) in &ops {
            let addr = (set + alias * sets) * page_size;
            let result = hams.access(addr, *is_write, 64, now);
            prop_assert!(result.finished_at >= now, "time went backwards");
            // Touch the previously accessed line again *before* its fill or
            // eviction completes: the wait queue must park this access, not
            // drop it.
            if let Some(prev) = previous {
                let early = result.finished_at.saturating_sub(Nanos::from_nanos(1));
                let replay = hams.access(prev, false, 64, early);
                prop_assert!(replay.finished_at >= early);
            }
            previous = Some(addr);
            now = result.finished_at.max(now);
        }
        let issued = ops.len() as u64 * 2 - 1;
        prop_assert_eq!(hams.stats().accesses, issued);
        prop_assert_eq!(hams.stats().hits + hams.stats().misses, issued);
        prop_assert!(hams.stats().wait_stalls <= hams.stats().accesses);
    }
}
