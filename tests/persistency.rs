//! Integration and property tests for the persistency control of §IV-B/§V-C:
//! acknowledged writes survive power failures in every HAMS configuration,
//! and recovery re-issues exactly the journal-tagged commands.

use hams::core::{AttachMode, HamsConfig, HamsController, PersistMode};
use hams::sim::Nanos;
use proptest::prelude::*;

fn controller(attach: AttachMode, persist: PersistMode) -> HamsController {
    HamsController::new(HamsConfig::tiny_for_tests(attach, persist))
}

fn all_modes() -> Vec<(AttachMode, PersistMode)> {
    vec![
        (AttachMode::Loose, PersistMode::Persist),
        (AttachMode::Loose, PersistMode::Extend),
        (AttachMode::Tight, PersistMode::Persist),
        (AttachMode::Tight, PersistMode::Extend),
    ]
}

#[test]
fn every_mode_survives_a_power_failure_mid_eviction_storm() {
    for (attach, persist) in all_modes() {
        let mut hams = controller(attach, persist);
        let page_size = hams.config().mos_page_size;
        let pages = hams.cache_sets() as u64 + 64;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for i in 0..pages {
            let addr = i * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        let _event = hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "{attach:?}/{persist:?}: page {page} lost"
            );
        }
    }
}

#[test]
fn recovery_is_idempotent_when_nothing_is_in_flight() {
    let mut hams = controller(AttachMode::Tight, PersistMode::Extend);
    let mut now = Nanos::ZERO;
    for i in 0..32u64 {
        now = hams.access(i * 64, true, 64, now).finished_at;
    }
    // Let everything drain by advancing far into the future before failing.
    let quiet = now + Nanos::from_secs(1);
    let r1 = hams.access(0, false, 64, quiet);
    let event = hams.power_fail(r1.finished_at);
    assert_eq!(event.incomplete_commands, 0);
    let report = hams.recover(r1.finished_at);
    assert!(report.reissued_pages.is_empty());
}

#[test]
fn persist_mode_makes_evicted_pages_durable_on_flash_immediately() {
    let mut hams = controller(AttachMode::Loose, PersistMode::Persist);
    let page_size = hams.config().mos_page_size;
    let sets = hams.cache_sets() as u64;
    let mut now = Nanos::ZERO;
    // Dirty page 0, then evict it by touching its conflict partner.
    now = hams.access(0, true, 64, now).finished_at;
    now = hams.access(sets * page_size, true, 64, now).finished_at;
    // Give the FUA write time to complete, then check durability directly.
    let settled = now + Nanos::from_secs(1);
    let _ = hams.access(64, false, 64, settled);
    assert!(
        hams.page_durable_on_flash(0),
        "persist mode must push the evicted page to flash"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random write-heavy access streams and a power failure at an
    /// arbitrary point, no acknowledged write is ever lost (extend mode,
    /// the weaker of the two persistence settings).
    #[test]
    fn random_streams_never_lose_acknowledged_writes(
        addresses in proptest::collection::vec(0u64..4096, 20..120),
        fail_after in 5usize..100,
    ) {
        let mut hams = controller(AttachMode::Loose, PersistMode::Extend);
        let page_size = hams.config().mos_page_size;
        let span_pages = (hams.cache_sets() as u64) * 2;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for (i, a) in addresses.iter().enumerate() {
            if i == fail_after {
                break;
            }
            let addr = (a % span_pages) * page_size;
            now = hams.access(addr, true, 64, now).finished_at;
            written.push(hams.page_of(addr));
        }
        hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            prop_assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "page {page} lost after power failure"
            );
        }
    }

    /// The wait-queue / busy-bit machinery never deadlocks and never loses an
    /// access: the number of completed accesses always equals the number
    /// issued, regardless of the interleaving of reads and writes.
    #[test]
    fn accesses_are_never_lost_under_arbitrary_interleavings(
        ops in proptest::collection::vec((0u64..2048, any::<bool>()), 1..200),
    ) {
        let mut hams = controller(AttachMode::Tight, PersistMode::Extend);
        let page_size = hams.config().mos_page_size;
        let mut now = Nanos::ZERO;
        for (slot, is_write) in &ops {
            let addr = slot * page_size / 4;
            let result = hams.access(addr, *is_write, 64, now);
            prop_assert!(result.finished_at >= now, "time went backwards");
            now = result.finished_at;
        }
        prop_assert_eq!(hams.stats().accesses, ops.len() as u64);
        prop_assert_eq!(hams.stats().hits + hams.stats().misses, ops.len() as u64);
    }
}
