//! Integration test: the paper's headline claims hold in shape on the
//! scaled-down reproduction.
//!
//! The abstract claims HAMS and advanced HAMS deliver 97 % / 119 % higher
//! system performance than the software (MMF) NVDIMM design while consuming
//! 41 % / 45 % less energy, with a ~94 % NVDIMM cache hit rate. Absolute
//! factors depend on the substrate, so the assertions below check the
//! *direction* and *ordering* of every claim plus loose magnitude bands.

use hams::platforms::{run_workload, PlatformKind, RunMetrics, ScaleProfile};
use hams::workloads::WorkloadSpec;

fn scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 1024,
        accesses: 8_000,
        seed: 2024,
    }
}

fn run(kind: PlatformKind, workload: &str, scale: &ScaleProfile) -> RunMetrics {
    let spec = WorkloadSpec::by_name(workload).expect("workload exists");
    let mut platform = kind.build(scale);
    run_workload(platform.as_mut(), spec, scale)
}

#[test]
fn hams_outperforms_the_mmf_baseline_on_every_workload_class() {
    let scale = scale();
    for workload in ["rndWr", "seqRd", "update", "BFS"] {
        let mmap = run(PlatformKind::Mmap, workload, &scale);
        let le = run(PlatformKind::HamsLE, workload, &scale);
        let te = run(PlatformKind::HamsTE, workload, &scale);
        assert!(
            le.pages_per_sec > mmap.pages_per_sec,
            "{workload}: hams-LE ({:.0}) must beat mmap ({:.0})",
            le.pages_per_sec,
            mmap.pages_per_sec
        );
        assert!(
            te.pages_per_sec > mmap.pages_per_sec,
            "{workload}: hams-TE ({:.0}) must beat mmap ({:.0})",
            te.pages_per_sec,
            mmap.pages_per_sec
        );
    }
}

#[test]
fn advanced_hams_beats_baseline_hams_overall() {
    let scale = scale();
    // Geometric mean of speedups across a representative workload mix, as the
    // paper's "97% vs 119%" aggregate does.
    let mut le_product = 1.0f64;
    let mut te_product = 1.0f64;
    let workloads = ["rndWr", "seqWr", "rndRd", "update"];
    for workload in workloads {
        let mmap = run(PlatformKind::Mmap, workload, &scale);
        let le = run(PlatformKind::HamsLE, workload, &scale);
        let te = run(PlatformKind::HamsTE, workload, &scale);
        le_product *= le.pages_per_sec / mmap.pages_per_sec;
        te_product *= te.pages_per_sec / mmap.pages_per_sec;
    }
    let n = workloads.len() as f64;
    let le_speedup = le_product.powf(1.0 / n);
    let te_speedup = te_product.powf(1.0 / n);
    assert!(
        te_speedup > le_speedup,
        "advanced HAMS ({te_speedup:.2}x) must beat baseline HAMS ({le_speedup:.2}x)"
    );
    // The paper's factors are 1.97x and 2.19x; accept a generous band around
    // them for the scaled simulator.
    assert!(
        le_speedup > 1.3,
        "baseline HAMS speed-up over mmap was only {le_speedup:.2}x"
    );
    assert!(
        te_speedup > 1.5,
        "advanced HAMS speed-up over mmap was only {te_speedup:.2}x"
    );
}

#[test]
fn hams_consumes_less_energy_than_mmap() {
    let scale = scale();
    for workload in ["rndWr", "update"] {
        let mmap = run(PlatformKind::Mmap, workload, &scale);
        let le = run(PlatformKind::HamsLE, workload, &scale);
        let te = run(PlatformKind::HamsTE, workload, &scale);
        let le_ratio = le.energy.normalized_to(&mmap.energy);
        let te_ratio = te.energy.normalized_to(&mmap.energy);
        assert!(
            le_ratio < 1.0,
            "{workload}: hams-LE energy ratio {le_ratio:.2} should be below 1"
        );
        assert!(
            te_ratio < 1.0,
            "{workload}: hams-TE energy ratio {te_ratio:.2} should be below 1"
        );
        assert!(
            te_ratio <= le_ratio + 0.05,
            "{workload}: advanced HAMS ({te_ratio:.2}) should not use more energy than baseline ({le_ratio:.2})"
        );
    }
}

#[test]
fn nvdimm_cache_hit_rate_is_high_for_skewed_workloads() {
    let scale = scale();
    // The SQLite workloads have hot-spot locality; the paper reports a 94%
    // average hit rate with an 8 GB NVDIMM over 11-16 GB datasets.
    let te = run(PlatformKind::HamsTE, "rndSel", &scale);
    let hit = te.hit_rate.unwrap_or(0.0);
    assert!(hit > 0.75, "NVDIMM hit rate was only {hit:.2}");
}

#[test]
fn persist_mode_trades_throughput_for_write_through_persistence() {
    let scale = scale();
    for (persist, extend) in [
        (PlatformKind::HamsLP, PlatformKind::HamsLE),
        (PlatformKind::HamsTP, PlatformKind::HamsTE),
    ] {
        let p = run(persist, "rndWr", &scale);
        let e = run(extend, "rndWr", &scale);
        assert!(
            e.pages_per_sec >= p.pages_per_sec,
            "{}: extend ({:.0}) must be at least as fast as persist ({:.0})",
            e.platform,
            e.pages_per_sec,
            p.pages_per_sec
        );
    }
}

#[test]
fn oracle_remains_the_upper_bound() {
    let scale = scale();
    let oracle = run(PlatformKind::Oracle, "seqRd", &scale);
    for kind in PlatformKind::all() {
        let m = run(kind, "seqRd", &scale);
        assert!(
            oracle.pages_per_sec >= m.pages_per_sec * 0.99,
            "{} ({:.0}) beat the oracle ({:.0})",
            m.platform,
            m.pages_per_sec,
            oracle.pages_per_sec
        );
    }
}
