//! The intra-cell parallel serving contract.
//!
//! `run_workload_cell_parallel` partitions each batch by owning tag-array
//! shard, plans the sub-batches concurrently on scoped worker threads, and
//! replays the commit phase serially in the original access order. The
//! worker count is *pure scheduling*: it decides which thread touches which
//! bank's plan, never what any access observes. The pinned contract:
//!
//! 1. for all 11 platforms, every cell-thread count produces metrics
//!    byte-identical to the per-access serial reference (the CI matrix
//!    re-runs this suite under `HAMS_CELL_THREADS` ∈ {1, 4}),
//! 2. the cell-parallel path composes with the other serving axes — the
//!    batched path and the sharded path — without changing a byte,
//! 3. `0` workers defers to the `HAMS_CELL_THREADS` environment default and
//!    still matches.

use hams::platforms::{
    run_workload, run_workload_cell_parallel, run_workload_serial, run_workload_sharded,
    PlatformKind, ScaleProfile, ShardConfig,
};
use hams::workloads::WorkloadSpec;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

#[test]
fn cell_parallel_serving_is_byte_identical_to_serial_on_all_platforms() {
    let scale = tiny();
    for workload in ["rndRd", "update"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        for kind in PlatformKind::all() {
            let mut serial = kind.build(&scale);
            let reference = run_workload_serial(serial.as_mut(), spec, &scale);
            for workers in [1usize, 2, 8] {
                let mut parallel = kind.build(&scale);
                let m = run_workload_cell_parallel(parallel.as_mut(), spec, &scale, workers);
                assert_eq!(
                    m,
                    reference,
                    "{} on {workload}: {workers} cell threads diverged from serial",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn cell_parallel_matches_the_batched_path() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    for kind in PlatformKind::all() {
        let mut batched = kind.build(&scale);
        let b = run_workload(batched.as_mut(), spec, &scale);
        let mut parallel = kind.build(&scale);
        let m = run_workload_cell_parallel(parallel.as_mut(), spec, &scale, 4);
        assert_eq!(
            m,
            b,
            "{}: the cell-parallel path diverged from the batched path",
            kind.label()
        );
    }
}

#[test]
fn zero_workers_defer_to_the_environment_default() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("seqRd").unwrap();
    for kind in [
        PlatformKind::HamsTE,
        PlatformKind::HamsLP,
        PlatformKind::Mmap,
    ] {
        let mut serial = kind.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec, &scale);
        // 0 resolves to HAMS_CELL_THREADS (1 when unset); either way the
        // metrics must not move.
        let mut parallel = kind.build(&scale);
        let m = run_workload_cell_parallel(parallel.as_mut(), spec, &scale, 0);
        assert_eq!(
            m,
            reference,
            "{}: the HAMS_CELL_THREADS default diverged from serial",
            kind.label()
        );
    }
}

#[test]
fn cell_threads_compose_with_tag_array_sharding() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    for kind in [PlatformKind::HamsTE, PlatformKind::HamsLE] {
        // The sharded batched path is the reference: cell threads layered on
        // top of a multi-bank tag array must be invisible too.
        let mut sharded = kind.build(&scale);
        let reference =
            run_workload_sharded(sharded.as_mut(), spec, &scale, ShardConfig::interleaved(4));
        for workers in [2usize, 8] {
            let mut parallel = kind.build(&scale);
            parallel.configure_shards(ShardConfig::interleaved(4));
            let m = run_workload_cell_parallel(parallel.as_mut(), spec, &scale, workers);
            assert_eq!(
                m,
                reference,
                "{}: {workers} cell threads over 4 shards diverged",
                kind.label()
            );
        }
    }
}
