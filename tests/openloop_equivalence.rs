//! The open-loop engine's pinned contract.
//!
//! The open-loop driver (`run_workload_open_loop`) feeds the same
//! `serve_batch_into` hot path as closed-loop replay, so it must degenerate
//! to it exactly:
//!
//! 1. **Rate → ∞ with a depth-1 blocking queue and batch size 1 is the
//!    serial schedule, byte for byte.** Under `ArrivalProcess::Saturate`
//!    every dispatch instant equals the previous finish — exactly what
//!    `run_workload_serial` does — so [`RunMetrics`] must be identical on
//!    all 11 platforms.
//! 2. **Saturated blocking admission is invisible to the run metrics.** With
//!    all arrivals at t = 0 and nothing dropped, the queue depth and batch
//!    size only change *when* requests sit in the queue, never the FIFO
//!    service order or the dispatch instants, so [`RunMetrics`] stays pinned
//!    to the serial reference for every depth × batch shape.
//! 3. **Accounting closes.** `arrivals = served + dropped` always; a
//!    blocking queue never drops; per-record timestamps are ordered and the
//!    sojourn decomposes into wait + service (property-tested over random
//!    rates, depths, policies and batch sizes).
//! 4. **The knee finder is prefix-monotone.** The fig24 knee is the end of
//!    the leading sustained prefix, so truncating a sweep can never move the
//!    knee to a higher offered load (property-tested on synthetic curves).

use hams::platforms::{
    run_workload_open_loop, run_workload_serial, AdmissionPolicy, OpenLoopConfig, PlatformKind,
    ScaleProfile,
};
use hams::workloads::{ArrivalProcess, WorkloadSpec};
use hams_bench::{fig24_knee, fig24_knees, OpenLoopRow};
use proptest::prelude::*;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

#[test]
fn degenerate_open_loop_is_byte_identical_to_serial_on_all_platforms() {
    let scale = tiny();
    for workload in ["rndRd", "update"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        for kind in PlatformKind::all() {
            let mut serial = kind.build(&scale);
            let mut open = kind.build(&scale);
            let reference = run_workload_serial(serial.as_mut(), spec, &scale);
            let ol = run_workload_open_loop(
                open.as_mut(),
                spec,
                &scale,
                &OpenLoopConfig::degenerate_serial(),
            );
            assert_eq!(
                ol.run,
                reference,
                "{} on {workload}: degenerate open-loop diverged from run_workload_serial",
                kind.label()
            );
            assert_eq!(ol.served, scale.accesses as u64);
            assert_eq!(ol.dropped, 0);
            assert_eq!(ol.arrivals, ol.served);
        }
    }
}

#[test]
fn saturated_blocking_metrics_are_invariant_under_queue_and_batch_shape() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    for kind in [
        PlatformKind::HamsTE,
        PlatformKind::Mmap,
        PlatformKind::Oracle,
    ] {
        let mut serial = kind.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec, &scale);
        for depth in [1usize, 3, 64] {
            for batch in [1usize, 2, 256] {
                let config = OpenLoopConfig::degenerate_serial()
                    .with_queue_depth(depth)
                    .with_policy(AdmissionPolicy::Block);
                let config = OpenLoopConfig {
                    batch_size: batch,
                    ..config
                };
                let mut open = kind.build(&scale);
                let m = run_workload_open_loop(open.as_mut(), spec, &scale, &config);
                assert_eq!(
                    m.run,
                    reference,
                    "{}: saturated blocking run at depth {depth} batch {batch} \
                     diverged from the serial reference",
                    kind.label()
                );
                assert_eq!(m.dropped, 0, "a blocking queue must never drop");
                assert_eq!(m.served, scale.accesses as u64);
            }
        }
    }
}

#[test]
fn drop_policy_accounting_closes_on_every_platform() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("update").unwrap();
    let config = OpenLoopConfig::degenerate_serial()
        .with_queue_depth(8)
        .with_policy(AdmissionPolicy::Drop);
    for kind in PlatformKind::all() {
        let mut p = kind.build(&scale);
        let m = run_workload_open_loop(p.as_mut(), spec, &scale, &config);
        assert_eq!(
            m.arrivals,
            scale.accesses as u64,
            "{}: every trace entry must arrive",
            kind.label()
        );
        assert_eq!(
            m.arrivals,
            m.served + m.dropped,
            "{}: arrivals must split exactly into served + dropped",
            kind.label()
        );
        assert!(
            m.dropped > 0,
            "{}: a saturated depth-8 dropping queue must reject something",
            kind.label()
        );
        assert_eq!(m.served, m.records.len() as u64);
        assert_eq!(m.sojourn.count(), m.served);
    }
}

proptest! {
    /// For any arrival rate, queue shape and batch size, every served
    /// request's timestamps are ordered arrival ≤ enqueued ≤ started ≤
    /// finished, so the sojourn bounds both of its components — and the
    /// arrival accounting closes.
    #[test]
    fn sojourn_dominates_wait_and_service_under_random_configs(
        rate_per_sec in 1_000.0f64..100_000_000.0,
        depth in 1usize..64,
        block in any::<bool>(),
        batch in 1usize..16,
        hams in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 300,
            seed,
        };
        let kind = if hams { PlatformKind::HamsTE } else { PlatformKind::Oracle };
        let policy = if block { AdmissionPolicy::Block } else { AdmissionPolicy::Drop };
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            queue_depth: depth,
            policy,
            batch_size: batch,
            ..OpenLoopConfig::poisson(rate_per_sec)
        };
        let mut p = kind.build(&scale);
        let m = run_workload_open_loop(p.as_mut(), spec_update(), &scale, &config);
        prop_assert_eq!(m.arrivals, scale.accesses as u64);
        prop_assert_eq!(m.arrivals, m.served + m.dropped);
        if block {
            prop_assert_eq!(m.dropped, 0);
        }
        for r in &m.records {
            prop_assert!(r.arrival <= r.enqueued);
            prop_assert!(r.enqueued <= r.started);
            prop_assert!(r.started <= r.finished);
            prop_assert!(r.sojourn() >= r.service());
            prop_assert!(r.sojourn() >= r.queue_wait());
            prop_assert_eq!(r.sojourn(), r.queue_wait() + r.service());
        }
    }

    /// Truncating a rising sweep never moves the knee to a higher offered
    /// load: for every prefix, `fig24_knee(prefix) <= fig24_knee(full)`,
    /// and the knee is exactly the end of the leading sustained prefix.
    #[test]
    fn knee_finder_is_prefix_monotone(flags in collection::vec(any::<bool>(), 0..24)) {
        let rows: Vec<OpenLoopRow> = flags
            .iter()
            .enumerate()
            .map(|(i, &sustainable)| synthetic_row("a", i, sustainable))
            .collect();
        let expected = flags
            .iter()
            .take_while(|&&s| s)
            .count()
            .checked_sub(1);
        prop_assert_eq!(fig24_knee(&rows), expected);
        let full = fig24_knee(&rows);
        for cut in 0..=rows.len() {
            let prefix = fig24_knee(&rows[..cut]);
            prop_assert!(
                prefix.unwrap_or(0) <= full.unwrap_or(0) || full.is_none(),
                "prefix of {cut} rows moved the knee from {full:?} to {prefix:?}"
            );
            if full.is_none() {
                prop_assert_eq!(prefix, None);
            }
        }
        // The grouped summary agrees with the per-platform finder.
        let knees = fig24_knees(&rows);
        if rows.is_empty() {
            prop_assert!(knees.is_empty());
        } else {
            prop_assert_eq!(knees.len(), 1);
            let got = knees[0].1.as_ref().map(|r| r.offered_frac);
            let want = expected.map(|i| rows[i].offered_frac);
            prop_assert_eq!(got, want);
        }
    }
}

fn spec_update() -> WorkloadSpec {
    WorkloadSpec::by_name("update").unwrap()
}

fn synthetic_row(platform: &str, index: usize, sustainable: bool) -> OpenLoopRow {
    let offered_frac = 0.25 * (index + 1) as f64;
    OpenLoopRow {
        platform: platform.to_owned(),
        workload: "rndRd".to_owned(),
        offered_frac,
        offered_per_sec: offered_frac * 1e6,
        achieved_per_sec: if sustainable { offered_frac * 1e6 } else { 8e5 },
        dropped: u64::from(!sustainable) * 50,
        arrivals: 1_000,
        mean_us: 1.2,
        p50_us: 1.0,
        p99_us: 2.0,
        p999_us: 3.0,
        sustainable,
    }
}
