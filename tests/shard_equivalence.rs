//! The shard-invariance contract.
//!
//! Sharding the MoS tag array is *pure routing*: each bank owns a disjoint
//! subset of the direct-mapped sets, and a set's entry, victim choice and
//! busy window are the same no matter which bank holds it. The pinned
//! contract is therefore stricter than the multi-queue one — where striped
//! fills legitimately change latencies, the shard shape must change
//! *nothing*:
//!
//! 1. `run_workload` under `ShardConfig { count: n }` is byte-identical to
//!    `ShardConfig::single()` **and** to the unsharded per-access reference
//!    `run_workload_serial`, for all 11 platforms and n ∈ {1, 2, 8} (the CI
//!    matrix re-runs this suite under `HAMS_THREADS` ∈ {1, 8} ×
//!    `HAMS_SHARDS` ∈ {1, 4}),
//! 2. the hash policy is equally neutral: `Block` partitioning matches
//!    `Interleave` byte for byte,
//! 3. the `hams-TE-s{n}` registry sweep entries produce identical rows on
//!    the parallel grid, matching their own serial reference.

use hams::platforms::{
    register_hams_shard_sweep, run_grid_with, run_workload, run_workload_cell_parallel,
    run_workload_serial, run_workload_serial_sharded, run_workload_sharded, shard_sweep_label,
    PlatformKind, PlatformRegistry, ScaleProfile, ShardConfig,
};
use hams::workloads::WorkloadSpec;
use proptest::prelude::*;

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 31,
    }
}

#[test]
fn sharded_serving_is_byte_identical_to_the_unsharded_reference_on_all_platforms() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    for kind in PlatformKind::all() {
        let mut serial = kind.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec, &scale);
        for n in [1u16, 2, 8] {
            let mut sharded = kind.build(&scale);
            let m =
                run_workload_sharded(sharded.as_mut(), spec, &scale, ShardConfig::interleaved(n));
            assert_eq!(
                m,
                reference,
                "{}: {n} shards diverged from the unsharded serial reference",
                kind.label()
            );
        }
    }
}

#[test]
fn single_shard_config_matches_every_other_count_and_the_batched_path() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("update").unwrap();
    for kind in PlatformKind::all() {
        let mut plain = kind.build(&scale);
        let batched = run_workload(plain.as_mut(), spec, &scale);
        let mut single = kind.build(&scale);
        let s = run_workload_sharded(single.as_mut(), spec, &scale, ShardConfig::single());
        assert_eq!(
            s,
            batched,
            "{}: ShardConfig::single() must be a no-op",
            kind.label()
        );
        for n in [2u16, 8] {
            let mut sharded = kind.build(&scale);
            let m =
                run_workload_sharded(sharded.as_mut(), spec, &scale, ShardConfig::interleaved(n));
            assert_eq!(
                m,
                s,
                "{}: {n} shards diverged from ShardConfig::single()",
                kind.label()
            );
        }
    }
}

#[test]
fn hash_policy_is_metrics_neutral() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    for kind in [PlatformKind::HamsTE, PlatformKind::HamsLP] {
        let mut interleaved = kind.build(&scale);
        let mut blocked = kind.build(&scale);
        let a = run_workload_serial_sharded(
            interleaved.as_mut(),
            spec,
            &scale,
            ShardConfig::interleaved(4),
        );
        let b =
            run_workload_serial_sharded(blocked.as_mut(), spec, &scale, ShardConfig::blocked(4));
        assert_eq!(
            a,
            b,
            "{}: Block partitioning diverged from Interleave",
            kind.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized serving-shape generator: a random HAMS variant, shard
    /// count *and* cell-thread count must all be byte-invisible at once.
    /// Extends the deterministic suites above along the `HAMS_CELL_THREADS`
    /// axis that `tests/cell_parallel_equivalence.rs` pins at fixed counts.
    #[test]
    fn random_shard_and_cell_thread_shapes_are_byte_invisible(
        shards in 1u16..9,
        workers in 1usize..10,
        variant in 0usize..4,
    ) {
        let scale = tiny();
        let spec = WorkloadSpec::by_name("rndRd").unwrap();
        let kind = [
            PlatformKind::HamsTE,
            PlatformKind::HamsTP,
            PlatformKind::HamsLE,
            PlatformKind::HamsLP,
        ][variant];
        let mut serial = kind.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec, &scale);
        let mut parallel = kind.build(&scale);
        parallel.configure_shards(ShardConfig::interleaved(shards));
        let m = run_workload_cell_parallel(parallel.as_mut(), spec, &scale, workers);
        prop_assert_eq!(
            m,
            reference,
            "{}: {shards} shards x {workers} cell threads diverged from serial",
            kind.label()
        );
    }
}

/// The cross-axis smoke: grid workers (`HAMS_THREADS`, ambient via the CI
/// matrix), tag-array shards, and cell threads all commute — every
/// combination lands on the bytes of the unsharded serial reference. The
/// registry entries bake the (shards × cell threads) shape into their
/// constructors so the parallel grid exercises all of them in one sweep.
#[test]
fn threads_shards_and_cell_threads_commute() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("update").unwrap();
    let mut reference = PlatformKind::HamsTE.build(&scale);
    let expected = run_workload_serial(reference.as_mut(), spec, &scale);

    let mut registry = PlatformRegistry::new();
    let mut labels = Vec::new();
    for shards in [1u16, 4] {
        for cell_threads in [1usize, 4] {
            let label = format!("hams-TE-s{shards}-c{cell_threads}");
            registry.register(label.clone(), move |scale: &ScaleProfile| {
                let mut platform = PlatformKind::HamsTE.build(scale);
                platform.configure_shards(ShardConfig::interleaved(shards));
                platform.configure_cell_threads(cell_threads);
                platform
            });
            labels.push(label);
        }
    }
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let grid = run_grid_with(&registry, &label_refs, &[spec], &scale);
    for (row, label) in grid.iter().zip(&labels) {
        assert_eq!(
            row, &expected,
            "{label}: the serving shape leaked into the metrics"
        );
    }
}

#[test]
fn shard_sweep_grid_is_byte_identical_across_counts_and_to_serial() {
    let scale = tiny();
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let mut registry = PlatformRegistry::standard();
    register_hams_shard_sweep(&mut registry, &[1, 2, 8]);
    let labels: Vec<String> = [1u16, 2, 8].iter().map(|&n| shard_sweep_label(n)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();

    // Serial reference: each sweep cell through the per-access loop. The
    // sweep entries carry their ShardConfig in the constructor, so this loop
    // *is* run_workload_serial_sharded for them.
    let serial: Vec<_> = label_refs
        .iter()
        .map(|label| {
            let mut platform = registry.build(label, &scale).unwrap();
            run_workload_serial(platform.as_mut(), spec, &scale)
        })
        .collect();

    // The parallel grid must match at every worker count (the CI matrix runs
    // this suite under HAMS_THREADS ∈ {1, 8}), and — the shard contract —
    // every row must be identical: the shape may not shift a single byte.
    let grid = run_grid_with(&registry, &label_refs, &[spec], &scale);
    assert_eq!(grid, serial, "shard sweep grid diverged from serial");
    for row in &grid[1..] {
        assert_eq!(
            row, &grid[0],
            "a shard count produced different metrics than s1"
        );
    }
}
