//! Span conservation: the tracer's intervals add up, tile, and nest.
//!
//! Two layers of defence for the telemetry tier:
//!
//! 1. **By construction** — [`component_spans`] lays a request's
//!    [`LatencyVector`] out as back-to-back child spans, so for *any*
//!    breakdown the child durations must sum exactly to the vector's total,
//!    tile contiguously in time order, and nest inside the parent interval
//!    (property-tested over random component subsets and durations).
//! 2. **Against real runs** — the open-loop engine's request and admission
//!    spans must agree instant-for-instant with the per-request
//!    [`OpenLoopRecord`]s the engine already pins, so a request's span
//!    durations decompose its recorded sojourn exactly.

use hams::platforms::{run_workload_open_loop_traced, OpenLoopConfig, PlatformKind, ScaleProfile};
use hams::telemetry::{component_spans, Layer, RunTelemetry, Span};
use hams::workloads::WorkloadSpec;
use hams_sim::{ComponentId, LatencyVector, Nanos};
use proptest::collection;
use proptest::prelude::*;

/// The pre-interned component ids, so random breakdowns use the same names
/// the serving spine does.
const COMPONENTS: [ComponentId; 14] = [
    ComponentId::APP,
    ComponentId::DMA,
    ComponentId::DRAM,
    ComponentId::FLASH_ARRAY,
    ComponentId::FLASH_CHANNEL,
    ComponentId::FLASH_QUEUE,
    ComponentId::FTL,
    ComponentId::HAMS,
    ComponentId::HIL,
    ComponentId::IO_STACK,
    ComponentId::MMAP,
    ComponentId::NVDIMM,
    ComponentId::OS,
    ComponentId::SSD,
];

proptest! {
    /// For any breakdown (any component subset, any durations, duplicates
    /// included) and any start instant, the emitted child spans sum to the
    /// vector's total, tile back-to-back in time order, and nest inside the
    /// parent interval `[start, start + total]`.
    #[test]
    fn component_spans_conserve_tile_and_nest(
        parts in collection::vec((0usize..COMPONENTS.len(), 0u64..10_000_000), 0..12),
        start_ns in 0u64..1_000_000_000,
    ) {
        let mut breakdown = LatencyVector::new();
        for &(component, ns) in &parts {
            breakdown.add(COMPONENTS[component], Nanos::from_nanos(ns));
        }
        let start = Nanos::from_nanos(start_ns);
        let mut spans = Vec::new();
        let end = component_spans(Layer::Controller, start, &breakdown, &mut spans);

        // Conservation: child durations sum exactly to the vector's total.
        prop_assert_eq!(end, start + breakdown.total());
        let sum: Nanos = spans.iter().map(Span::duration).sum();
        prop_assert_eq!(sum, breakdown.total());

        // Tiling and ordering: each span starts where the previous ended.
        let mut cursor = start;
        for span in &spans {
            prop_assert_eq!(span.start, cursor);
            prop_assert!(span.end >= span.start);
            cursor = span.end;
        }
        prop_assert_eq!(cursor, end);

        // Nesting: the parent interval encloses every child.
        let parent = Span::new(Layer::Request, "total", start, end);
        for span in &spans {
            prop_assert!(parent.encloses(span));
        }
    }

    /// A traced open-loop run's spans agree with the engine's own
    /// per-request records: the i-th request span covers exactly
    /// `[arrival, finished]` (its duration IS the recorded sojourn), the
    /// i-th queue-wait span covers `[enqueued, started]`, and each request
    /// span encloses its admission child.
    #[test]
    fn traced_open_loop_spans_match_the_engine_records(
        rate_per_sec in 10_000.0f64..10_000_000.0,
        hams in any::<bool>(),
        seed in 0u64..200,
    ) {
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 300,
            seed,
        };
        let kind = if hams { PlatformKind::HamsTE } else { PlatformKind::Mmap };
        let spec = WorkloadSpec::by_name("update").unwrap();
        let config = OpenLoopConfig::poisson(rate_per_sec);
        let mut platform = kind.build(&scale);
        let mut telemetry = RunTelemetry::new();
        let m = run_workload_open_loop_traced(
            platform.as_mut(),
            spec,
            &scale,
            &config,
            &mut telemetry,
        );

        let request_spans: Vec<Span> = telemetry
            .recorder
            .spans()
            .filter(|s| s.layer == Layer::Request)
            .copied()
            .collect();
        let waits: Vec<Span> = telemetry
            .recorder
            .spans()
            .filter(|s| s.layer == Layer::Admission && s.name == "queue_wait")
            .copied()
            .collect();
        prop_assert_eq!(request_spans.len() as u64, m.served);
        prop_assert_eq!(waits.len() as u64, m.served);
        prop_assert_eq!(m.records.len() as u64, m.served);

        for ((span, wait), record) in request_spans.iter().zip(&waits).zip(&m.records) {
            prop_assert_eq!(span.start, record.arrival);
            prop_assert_eq!(span.end, record.finished);
            prop_assert_eq!(span.duration(), record.sojourn());
            prop_assert_eq!(wait.start, record.enqueued);
            prop_assert_eq!(wait.end, record.started);
            prop_assert!(span.encloses(wait), "admission wait escapes its request span");
        }
    }
}
