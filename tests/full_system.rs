//! Cross-crate integration tests: the full simulation pipeline (workload →
//! platform → runner → metrics) produces internally consistent results for
//! every platform and workload class.

use hams::platforms::{run_workload, PlatformKind, ScaleProfile};
use hams::sim::Nanos;
use hams::workloads::{TraceGenerator, WorkloadSpec};

fn scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 2048,
        accesses: 2_500,
        seed: 77,
    }
}

#[test]
fn metrics_are_internally_consistent_for_every_platform() {
    let scale = scale();
    let spec = WorkloadSpec::by_name("update").unwrap();
    for kind in PlatformKind::all() {
        let mut platform = kind.build(&scale);
        let m = run_workload(platform.as_mut(), spec, &scale);
        assert_eq!(m.platform, kind.label());
        assert_eq!(m.workload, "update");
        assert_eq!(m.accesses, scale.accesses as u64);
        assert!(
            m.instructions >= m.accesses,
            "{}: fewer instructions than accesses",
            kind.label()
        );
        assert!(m.total_time > Nanos::ZERO);
        // The execution breakdown must cover the whole run.
        let breakdown_total = m.exec_breakdown.total();
        assert!(
            breakdown_total >= m.total_time.scale(0.95)
                && breakdown_total <= m.total_time.scale(1.05),
            "{}: breakdown {breakdown_total} vs total {}",
            kind.label(),
            m.total_time
        );
        assert!(
            m.ipc > 0.0 && m.ipc < 4.0,
            "{}: implausible IPC {}",
            kind.label(),
            m.ipc
        );
        assert!(m.energy.total_joules() > 0.0);
        if let Some(hit) = m.hit_rate {
            assert!((0.0..=1.0).contains(&hit));
        }
    }
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let scale = scale();
    let spec = WorkloadSpec::by_name("rndIns").unwrap();
    let run = || {
        let mut platform = PlatformKind::HamsLE.build(&scale);
        run_workload(platform.as_mut(), spec, &scale)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.accesses, b.accesses);
    assert!((a.pages_per_sec - b.pages_per_sec).abs() < 1e-9);
    assert_eq!(a.exec_breakdown, b.exec_breakdown);
}

#[test]
fn sequential_workloads_hit_better_than_uniform_random_on_hams() {
    let scale = scale();
    let seq = WorkloadSpec::by_name("KMN").unwrap();
    let rnd = WorkloadSpec::by_name("BFS").unwrap();
    let mut p1 = PlatformKind::HamsTE.build(&scale);
    let mut p2 = PlatformKind::HamsTE.build(&scale);
    let m_seq = run_workload(p1.as_mut(), seq, &scale);
    let m_rnd = run_workload(p2.as_mut(), rnd, &scale);
    assert!(
        m_seq.hit_rate.unwrap_or(0.0) >= m_rnd.hit_rate.unwrap_or(0.0),
        "sequential scans should not hit worse than random graph traversal"
    );
}

#[test]
fn direct_platform_use_matches_the_runner_path() {
    // Drive a platform manually with a generated trace and confirm the same
    // accounting the runner performs is reachable through the public API.
    let scale = scale();
    let spec = scale.scale_spec(WorkloadSpec::by_name("seqIns").unwrap());
    let mut platform = PlatformKind::HamsTE.build(&scale);
    let mut now = Nanos::ZERO;
    let mut served = 0u64;
    for access in TraceGenerator::new(spec, scale.seed, 500) {
        let outcome = platform.access(&access, now);
        assert!(outcome.finished_at >= now);
        now = outcome.finished_at;
        served += 1;
    }
    assert_eq!(served, 500);
    assert!(platform.hit_rate().unwrap_or(0.0) > 0.0);
    assert!(platform.device_energy(now).total_joules() > 0.0);
}

#[test]
fn larger_footprints_degrade_hams_but_less_than_mmap() {
    let scale = scale();
    let spec = WorkloadSpec::by_name("rndSel").unwrap();
    let grown = spec.with_dataset_bytes(spec.dataset_bytes * 4);

    let mut hams_small = PlatformKind::HamsTE.build(&scale);
    let mut hams_large = PlatformKind::HamsTE.build(&scale);
    let mut mmap_large = PlatformKind::Mmap.build(&scale);

    let small = run_workload(hams_small.as_mut(), spec, &scale);
    let large = run_workload(hams_large.as_mut(), grown, &scale);
    let mmap = run_workload(mmap_large.as_mut(), grown, &scale);

    assert!(
        large.ops_per_sec <= small.ops_per_sec,
        "a 4x footprint should not speed HAMS up"
    );
    assert!(
        large.ops_per_sec > mmap.ops_per_sec,
        "even at 4x footprint HAMS ({:.0}) must outperform mmap ({:.0})",
        large.ops_per_sec,
        mmap.ops_per_sec
    );
}
