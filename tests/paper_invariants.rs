//! Orderings the paper's evaluation establishes and every refactor must
//! preserve: extend-mode HAMS beats the software-managed `mmap` baseline on
//! random-read latency, persist mode pays its ordered-persistency
//! serialization relative to extend mode, and the all-DRAM `oracle`
//! lower-bounds everyone's latency (equivalently, upper-bounds throughput).

use hams::platforms::{run_grid, PlatformKind, RunMetrics, ScaleProfile};
use hams::workloads::WorkloadSpec;

fn scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 1024,
        accesses: 5_000,
        seed: 17,
    }
}

/// Mean stall latency per access in nanoseconds.
fn mean_latency_ns(m: &RunMetrics) -> f64 {
    m.total_time.as_nanos() as f64 / m.accesses as f64
}

#[test]
fn extend_mode_hams_beats_mmap_on_random_read_latency() {
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let kinds = [
        PlatformKind::Mmap,
        PlatformKind::HamsLE,
        PlatformKind::HamsTE,
    ];
    let results = run_grid(&kinds, &[spec], &scale());
    let mmap = mean_latency_ns(&results[0]);
    for hams in &results[1..] {
        let latency = mean_latency_ns(hams);
        assert!(
            latency < mmap,
            "{} random-read latency ({latency:.0} ns) should beat mmap ({mmap:.0} ns)",
            hams.platform
        );
    }
}

#[test]
fn persist_mode_pays_for_ordered_persistency_with_latency() {
    // Persist mode keeps a single command in flight (every fill waits for the
    // persist gate), so it trades random-access latency for crash
    // consistency; extend mode runs the same hardware path unserialized.
    // This ordering is a property of the model the paper describes, and it
    // must survive refactors of the serving path.
    let spec = WorkloadSpec::by_name("rndRd").unwrap();
    let kinds = [
        PlatformKind::HamsLP,
        PlatformKind::HamsLE,
        PlatformKind::HamsTP,
        PlatformKind::HamsTE,
    ];
    let results = run_grid(&kinds, &[spec], &scale());
    let (lp, le, tp, te) = (
        mean_latency_ns(&results[0]),
        mean_latency_ns(&results[1]),
        mean_latency_ns(&results[2]),
        mean_latency_ns(&results[3]),
    );
    assert!(
        lp > le,
        "hams-LP ({lp:.0} ns) should trail hams-LE ({le:.0} ns)"
    );
    assert!(
        tp > te,
        "hams-TP ({tp:.0} ns) should trail hams-TE ({te:.0} ns)"
    );
}

#[test]
fn oracle_is_the_latency_lower_bound_across_all_platforms() {
    for workload in ["rndRd", "rndWr", "KMN"] {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        let results = run_grid(&PlatformKind::all(), &[spec], &scale());
        let oracle = results
            .iter()
            .find(|m| m.platform == "oracle")
            .expect("oracle ran");
        let bound = mean_latency_ns(oracle);
        for m in &results {
            // Tiny tolerance for the shared 30 ns DRAM tail all platforms pay.
            assert!(
                mean_latency_ns(m) >= bound * 0.99,
                "{} ({:.0} ns) undercut the oracle ({bound:.0} ns) on {workload}",
                m.platform,
                mean_latency_ns(m)
            );
        }
    }
}

#[test]
fn tight_integration_is_no_slower_than_loose_on_random_writes() {
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    let results = run_grid(
        &[PlatformKind::HamsLE, PlatformKind::HamsTE],
        &[spec],
        &scale(),
    );
    assert!(
        mean_latency_ns(&results[1]) <= mean_latency_ns(&results[0]) * 1.02,
        "hams-TE ({:.0} ns) should not trail hams-LE ({:.0} ns)",
        mean_latency_ns(&results[1]),
        mean_latency_ns(&results[0])
    );
}
