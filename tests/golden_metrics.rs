//! Golden-metrics snapshot: the 11 registered platforms on a small seeded
//! grid, pinned against a checked-in JSON file, plus the `hams-TE-s{n}`
//! shard-sweep entries pinned against a second snapshot whose rows must be
//! *identical to each other* — the shard-invariance contract in golden form.
//!
//! Every metric the runner produces is deterministic — seeded trace
//! generators, integer nanosecond timing, fixed float evaluation order — so
//! the snapshot is byte-exact regardless of thread count *and* regardless of
//! the `HAMS_SHARDS` override (the CI matrix runs this suite under shard
//! counts {1, 4}; the tag-directory shard shape is pure routing and may not
//! move a byte). A future refactor that silently shifts simulated results
//! (timing model, stats accounting, trace generation) fails this test
//! instead of slipping through.
//!
//! The `HAMS_DEVICES` override is different: a multi-device archive backend
//! *legitimately* changes simulated timing (that is what the RAID-0 fan-out
//! buys), so the goldens keep one snapshot per device count —
//! `metrics.json` for the single-archive default, `metrics_d{n}.json` for
//! `HAMS_DEVICES=n` — and the CI matrix pins both axes.
//!
//! To bless an intentional change (once per device count the CI matrix
//! exercises):
//!
//! ```text
//! HAMS_BLESS=1 cargo test --test golden_metrics
//! HAMS_DEVICES=4 HAMS_BLESS=1 cargo test --test golden_metrics
//! ```
//!
//! then commit the regenerated `tests/golden/*.json` together with the
//! change that explains it.

use std::fmt::Write as _;

use hams::flash::BackendTopology;
use hams::platforms::{
    register_hams_shard_sweep, run_grid, run_grid_with, shard_sweep_label, PlatformKind,
    PlatformRegistry, RunMetrics, ScaleProfile,
};
use hams::workloads::WorkloadSpec;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
const WORKLOADS: [&str; 2] = ["rndRd", "update"];
const SHARD_COUNTS: [u16; 3] = [1, 2, 8];

/// The snapshot path for `stem`, suffixed by the device count the
/// `HAMS_DEVICES` override selects: the backend shape shifts simulated
/// timing by design, so each device count pins its own golden bytes.
fn golden_path(stem: &str) -> String {
    let devices = BackendTopology::from_env()
        .map(|t| t.device_count())
        .unwrap_or(1);
    if devices <= 1 {
        format!("{GOLDEN_DIR}/{stem}.json")
    } else {
        format!("{GOLDEN_DIR}/{stem}_d{devices}.json")
    }
}

fn snapshot_scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_000,
        seed: 17,
    }
}

/// Renders the grid as pretty-printed JSON with a fixed field order. Floats
/// use Rust's shortest-roundtrip formatting, which is exact and stable for
/// deterministic inputs.
fn render(grid: &[RunMetrics]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in grid.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\n    \"platform\": \"{}\",\n    \"workload\": \"{}\",\n    \"accesses\": {},\n    \"instructions\": {},\n    \"total_time_ns\": {},\n",
            m.platform,
            m.workload,
            m.accesses,
            m.instructions,
            m.total_time.as_nanos()
        );
        let _ = writeln!(
            out,
            "    \"exec_ns\": {{\"app\": {}, \"os\": {}, \"ssd\": {}}},",
            m.exec_breakdown.component("app").as_nanos(),
            m.exec_breakdown.component("os").as_nanos(),
            m.exec_breakdown.component("ssd").as_nanos()
        );
        let _ = writeln!(
            out,
            "    \"memory_delay_ns\": {{\"nvdimm\": {}, \"dma\": {}, \"ssd\": {}, \"hams\": {}}},",
            m.memory_delay.component("nvdimm").as_nanos(),
            m.memory_delay.component("dma").as_nanos(),
            m.memory_delay.component("ssd").as_nanos(),
            m.memory_delay.component("hams").as_nanos()
        );
        let _ = write!(
            out,
            "    \"ipc\": {},\n    \"pages_per_sec\": {},\n    \"ops_per_sec\": {},\n",
            m.ipc, m.pages_per_sec, m.ops_per_sec
        );
        let _ = write!(
            out,
            "    \"hit_rate\": {},\n    \"energy_joules\": {}\n  }}",
            m.hit_rate
                .map_or_else(|| "null".to_owned(), |h| h.to_string()),
            m.energy.total_joules()
        );
        out.push_str(if i + 1 < grid.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[test]
fn golden_metrics_snapshot_is_stable() {
    let scale = snapshot_scale();
    let specs: Vec<WorkloadSpec> = WORKLOADS
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let grid = run_grid(&PlatformKind::all(), &specs, &scale);
    assert_eq!(grid.len(), PlatformKind::all().len() * WORKLOADS.len());
    let rendered = render(&grid);

    let golden = golden_path("metrics");
    if std::env::var("HAMS_BLESS").as_deref() == Ok("1") {
        std::fs::write(&golden, &rendered).expect("write golden metrics");
        eprintln!("blessed {golden}");
        return;
    }

    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {golden} ({e}); regenerate with HAMS_BLESS=1")
    });
    assert_eq!(
        rendered, expected,
        "simulated metrics shifted from the golden snapshot; if the change is \
         intentional, regenerate with HAMS_BLESS=1 cargo test --test golden_metrics"
    );
}

/// The shard-sweep golden: `hams-TE-s{n}` for n ∈ {1, 2, 8} on the snapshot
/// grid. Two pins at once — the rows must match the checked-in snapshot
/// (like every golden), and the rows of different shard counts must be
/// identical to *each other*, which is the shard-invariance contract made
/// visible: a diff in this file can only ever be a real model change, never
/// a shard-shape artefact.
#[test]
fn shard_sweep_golden_snapshot_is_stable_and_rows_are_identical() {
    let scale = snapshot_scale();
    let specs: Vec<WorkloadSpec> = WORKLOADS
        .iter()
        .map(|n| WorkloadSpec::by_name(n).unwrap())
        .collect();
    let mut registry = PlatformRegistry::standard();
    register_hams_shard_sweep(&mut registry, &SHARD_COUNTS);
    let labels: Vec<String> = SHARD_COUNTS.iter().map(|&n| shard_sweep_label(n)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let grid = run_grid_with(&registry, &label_refs, &specs, &scale);
    assert_eq!(grid.len(), SHARD_COUNTS.len() * WORKLOADS.len());

    // Shard invariance: within each workload, every shard count's row equals
    // the s1 row.
    for rows in grid.chunks(SHARD_COUNTS.len()) {
        for row in &rows[1..] {
            assert_eq!(
                row, &rows[0],
                "a shard count diverged from s1 — shard-invariance violation"
            );
        }
    }

    let rendered = render(&grid);
    let golden = golden_path("shard_sweep");
    if std::env::var("HAMS_BLESS").as_deref() == Ok("1") {
        std::fs::write(&golden, &rendered).expect("write shard golden metrics");
        eprintln!("blessed {golden}");
        return;
    }

    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {golden} ({e}); regenerate with HAMS_BLESS=1")
    });
    assert_eq!(
        rendered, expected,
        "shard-sweep metrics shifted from the golden snapshot; if the change \
         is intentional, regenerate with HAMS_BLESS=1 cargo test --test golden_metrics"
    );
}
