//! The multi-queue serving contract.
//!
//! Striped fills and MSI coalescing legitimately change simulated latencies,
//! so multi-queue serving is *not* pinned against the PR 1 single-queue
//! reference. Instead it gets its own golden reference: the single-threaded
//! multi-queue per-access loop `run_workload_serial_mq`. The contract:
//!
//! 1. batched multi-queue serving (`run_workload_mq`, built on
//!    `Platform::serve_batch`) is byte-identical to `run_workload_serial_mq`
//!    for every opted-in platform, at every thread count (the CI matrix
//!    runs this whole suite under `HAMS_THREADS` ∈ {1, 8}),
//! 2. `QueueConfig::single()` is byte-identical between the batched and
//!    per-access paths on *every* platform — and on platforms without a
//!    queue model it is byte-identical to the unconfigured PR 1 reference
//!    (`run_workload_serial`). (The default scaled HAMS entries now carry a
//!    striped queue shape themselves, so for them the single-queue pin is
//!    an explicit opt-*down*, not the unconfigured default.)
//! 3. multi-queue serving with more than one queue is strictly faster than
//!    `QueueConfig::single()` on the random-read workload.

use hams::platforms::{
    queue_sweep_label, register_hams_queue_sweep, run_grid_with, run_workload_mq,
    run_workload_serial, run_workload_serial_mq, PlatformKind, PlatformRegistry, QueueConfig,
    ScaleProfile,
};

fn tiny() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 4096,
        accesses: 1_200,
        seed: 23,
    }
}

/// The platforms with an NVMe queue model ([`Platform::configure_queues`]
/// returns `true`): every HAMS variant plus the direct-attach persistent
/// baselines.
const OPTED_IN: &[&str] = &[
    "hams-LP",
    "hams-LE",
    "hams-TP",
    "hams-TE",
    "flatflash-P",
    "optane-P",
];

#[test]
fn batched_mq_serving_equals_the_serial_mq_reference() {
    let scale = tiny();
    let registry = PlatformRegistry::standard();
    for workload in ["rndRd", "update"] {
        let spec = hams::workloads::WorkloadSpec::by_name(workload).unwrap();
        for label in OPTED_IN {
            let mut serial = registry.build(label, &scale).unwrap();
            let mut batched = registry.build(label, &scale).unwrap();
            let queues = QueueConfig::striped(4);
            let s = run_workload_serial_mq(serial.as_mut(), spec, &scale, queues);
            let b = run_workload_mq(batched.as_mut(), spec, &scale, queues);
            assert_eq!(
                s, b,
                "{label} on {workload}: batched multi-queue serving diverged from \
                 run_workload_serial_mq"
            );
        }
    }
}

#[test]
fn single_queue_config_matches_the_pr1_serial_reference() {
    let scale = tiny();
    let spec = hams::workloads::WorkloadSpec::by_name("rndWr").unwrap();
    for kind in PlatformKind::all() {
        // Both twins pinned to the single-queue shape: batched serving must
        // reproduce the per-access loop byte for byte.
        let mut reference = kind.build(&scale);
        let mut configured = kind.build(&scale);
        let r = run_workload_serial_mq(reference.as_mut(), spec, &scale, QueueConfig::single());
        let c = run_workload_mq(configured.as_mut(), spec, &scale, QueueConfig::single());
        assert_eq!(
            r,
            c,
            "{}: QueueConfig::single() must serve identically batched and serial",
            kind.label()
        );
        // Platforms without a queue model ignore the configuration, so for
        // them the single-queue run still equals the unconfigured PR 1
        // reference. (The HAMS entries default to a striped shape now, so
        // their unconfigured reference is no longer single-queue.)
        let mut plain = kind.build(&scale);
        let ignores_queues = !plain.configure_queues(QueueConfig::single());
        if ignores_queues {
            let mut unconfigured = kind.build(&scale);
            let p = run_workload_serial(unconfigured.as_mut(), spec, &scale);
            assert_eq!(
                r,
                p,
                "{}: a queue-less platform must match the PR 1 reference byte for byte",
                kind.label()
            );
        }
    }
}

#[test]
fn mq_grid_is_byte_identical_to_the_serial_reference() {
    let scale = tiny();
    let spec = hams::workloads::WorkloadSpec::by_name("rndRd").unwrap();
    let mut registry = PlatformRegistry::standard();
    register_hams_queue_sweep(&mut registry, &[1, 2, 4]);
    let labels: Vec<String> = [1u16, 2, 4].iter().map(|&n| queue_sweep_label(n)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();

    // Serial reference: each sweep cell through the per-access loop. The
    // sweep entries carry their QueueConfig in the constructor, so this
    // loop *is* run_workload_serial_mq for them.
    let serial: Vec<_> = label_refs
        .iter()
        .map(|label| {
            let mut platform = registry.build(label, &scale).unwrap();
            run_workload_serial(platform.as_mut(), spec, &scale)
        })
        .collect();

    // The parallel grid must match at every worker count. HAMS_THREADS is
    // process-global (mutating it here would race sibling tests), so the
    // sweep over worker counts lives in the CI matrix, which runs this
    // whole suite under HAMS_THREADS=1 and HAMS_THREADS=8.
    let grid = run_grid_with(&registry, &label_refs, &[spec], &scale);
    assert_eq!(
        grid, serial,
        "multi-queue grid diverged from the serial reference"
    );
}

#[test]
fn multi_queue_strictly_beats_single_queue_on_random_reads() {
    // A slightly larger run so the miss stream dominates; 32 KB MoS pages so
    // fills span eight LBAs and can stripe.
    let scale = ScaleProfile {
        capacity_divisor: 2048,
        accesses: 3_000,
        seed: 11,
    };
    let spec = hams::workloads::WorkloadSpec::by_name("rndRd").unwrap();
    let mut registry = PlatformRegistry::standard();
    register_hams_queue_sweep(&mut registry, &[1, 4]);

    let mut single = registry.build(&queue_sweep_label(1), &scale).unwrap();
    let mut striped = registry.build(&queue_sweep_label(4), &scale).unwrap();
    let s = run_workload_mq(single.as_mut(), spec, &scale, QueueConfig::single());
    let m = run_workload_mq(striped.as_mut(), spec, &scale, QueueConfig::striped(4));

    let mean = |metrics: &hams::platforms::RunMetrics| {
        metrics.total_time.as_micros_f64() / metrics.accesses.max(1) as f64
    };
    assert!(
        mean(&m) < mean(&s),
        "4-queue mean access latency ({:.3}us) must be strictly below single-queue ({:.3}us)",
        mean(&m),
        mean(&s)
    );
}
