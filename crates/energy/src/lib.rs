//! Energy accounting for the HAMS reproduction (Fig. 19).
//!
//! The paper reports whole-system energy split into CPU, system memory
//! (NVDIMM), SSD-internal DRAM and Z-NAND, normalised to the `mmap` baseline.
//! This crate provides the per-component power/energy parameters
//! ([`PowerParams`]) and an accumulator ([`EnergyAccount`]) the platform
//! runner feeds as it executes a workload.
//!
//! # Example
//!
//! ```
//! use hams_energy::{EnergyAccount, PowerParams};
//! use hams_sim::Nanos;
//!
//! let p = PowerParams::paper_default();
//! let mut acct = EnergyAccount::new();
//! acct.add_power("cpu", p.cpu_active_watts, Nanos::from_millis(10));
//! acct.add("znand", p.znand_read_page_nj * 3.0 / 1e9);
//! assert!(acct.total_joules() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Per-component power and per-event energy parameters.
///
/// Values are derived from the sources the paper cites (MICRON DDR4 power
/// calculator, NAND datasheets, McPAT) at the granularity the reproduction
/// needs: active/idle power for time-proportional components and per-event
/// energy for access-proportional ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// CPU package power while executing.
    pub cpu_active_watts: f64,
    /// CPU package power while stalled/idle.
    pub cpu_idle_watts: f64,
    /// NVDIMM (or DRAM) background power per module.
    pub nvdimm_background_watts: f64,
    /// Energy per byte moved to/from the NVDIMM array (nanojoules).
    pub nvdimm_access_nj_per_byte: f64,
    /// SSD-internal DRAM background power (the paper notes it needs 17 % more
    /// power than a 32-chip flash complex).
    pub ssd_dram_background_watts: f64,
    /// Energy per byte moved through the SSD-internal DRAM (nanojoules).
    pub ssd_dram_access_nj_per_byte: f64,
    /// Energy of one Z-NAND page read (nanojoules).
    pub znand_read_page_nj: f64,
    /// Energy of one Z-NAND page program (nanojoules).
    pub znand_program_page_nj: f64,
    /// Energy per byte moved over PCIe (nanojoules).
    pub pcie_nj_per_byte: f64,
    /// Energy per byte moved over a DDR4 channel (nanojoules).
    pub ddr4_nj_per_byte: f64,
}

impl PowerParams {
    /// Parameters used for every experiment in the reproduction.
    #[must_use]
    pub fn paper_default() -> Self {
        PowerParams {
            cpu_active_watts: 12.0,
            cpu_idle_watts: 4.0,
            nvdimm_background_watts: 1.5,
            nvdimm_access_nj_per_byte: 0.12,
            ssd_dram_background_watts: 1.4,
            ssd_dram_access_nj_per_byte: 0.15,
            znand_read_page_nj: 2_500.0,
            znand_program_page_nj: 18_000.0,
            pcie_nj_per_byte: 0.06,
            ddr4_nj_per_byte: 0.02,
        }
    }
}

/// Per-component energy accumulator (joules).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccount {
    components: BTreeMap<String, f64>,
}

impl EnergyAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to component `name`.
    pub fn add(&mut self, name: impl Into<String>, joules: f64) {
        if joules <= 0.0 || !joules.is_finite() {
            return;
        }
        *self.components.entry(name.into()).or_insert(0.0) += joules;
    }

    /// Adds the energy of running `name` at `watts` for `duration`.
    pub fn add_power(&mut self, name: impl Into<String>, watts: f64, duration: Nanos) {
        self.add(name, watts * duration.as_secs_f64());
    }

    /// Energy of component `name`, or zero if absent.
    #[must_use]
    pub fn component_joules(&self, name: &str) -> f64 {
        self.components.get(name).copied().unwrap_or(0.0)
    }

    /// Total energy across all components.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.components.values().sum()
    }

    /// Component `name` as a fraction of the total (0 when the total is 0).
    #[must_use]
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total_joules();
        if total <= 0.0 {
            0.0
        } else {
            self.component_joules(name) / total
        }
    }

    /// Iterates over `(component, joules)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.components.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (name, j) in other.iter() {
            self.add(name, j);
        }
    }

    /// This account's total normalised to another account's total
    /// (the y-axis of Fig. 19). Returns 0 when the reference total is 0.
    #[must_use]
    pub fn normalized_to(&self, reference: &EnergyAccount) -> f64 {
        let r = reference.total_joules();
        if r <= 0.0 {
            0.0
        } else {
            self.total_joules() / r
        }
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={:.3e}J", self.total_joules())?;
        for (name, j) in self.iter() {
            write!(f, " {name}={j:.3e}J")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_integration_over_time() {
        let mut a = EnergyAccount::new();
        a.add_power("cpu", 10.0, Nanos::from_secs(2));
        assert!((a.component_joules("cpu") - 20.0).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_energy_is_ignored() {
        let mut a = EnergyAccount::new();
        a.add("x", -5.0);
        a.add("x", f64::NAN);
        assert_eq!(a.total_joules(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut a = EnergyAccount::new();
        a.add("cpu", 3.0);
        a.add("nvdimm", 1.0);
        let sum: f64 = ["cpu", "nvdimm"].iter().map(|n| a.fraction(n)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(a.fraction("missing"), 0.0);
    }

    #[test]
    fn normalization_against_reference() {
        let mut mmap = EnergyAccount::new();
        mmap.add("cpu", 10.0);
        let mut hams = EnergyAccount::new();
        hams.add("cpu", 6.0);
        assert!((hams.normalized_to(&mmap) - 0.6).abs() < 1e-12);
        assert_eq!(hams.normalized_to(&EnergyAccount::new()), 0.0);
    }

    #[test]
    fn merge_accumulates_components() {
        let mut a = EnergyAccount::new();
        a.add("cpu", 1.0);
        let mut b = EnergyAccount::new();
        b.add("cpu", 2.0);
        b.add("znand", 4.0);
        a.merge(&b);
        assert!((a.component_joules("cpu") - 3.0).abs() < 1e-12);
        assert!((a.total_joules() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn paper_params_are_positive_and_ordered() {
        let p = PowerParams::paper_default();
        assert!(p.cpu_active_watts > p.cpu_idle_watts);
        assert!(p.znand_program_page_nj > p.znand_read_page_nj);
        assert!(p.pcie_nj_per_byte > p.ddr4_nj_per_byte);
    }

    #[test]
    fn display_lists_components() {
        let mut a = EnergyAccount::new();
        a.add("cpu", 1.0);
        assert!(a.to_string().contains("cpu"));
    }
}
