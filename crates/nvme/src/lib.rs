//! NVMe protocol substrate used by both the ULL-Flash device model and the
//! HAMS in-controller NVMe engine.
//!
//! The paper's baseline HAMS keeps the full NVMe machinery (submission /
//! completion queues, PRP pointers, doorbells, MSI) but moves its management
//! from the OS driver into the memory controller hub. This crate implements
//! that machinery faithfully enough to reproduce the behaviours the paper
//! relies on:
//!
//! * FIFO submission queues and completion queues with head/tail pointers and
//!   doorbell synchronisation ([`queue`]),
//! * 64-byte commands carrying opcode, LBA, length, PRP pointers, a
//!   force-unit-access flag and the HAMS *journal tag* stored in the command's
//!   reserved area ([`command`]),
//! * PRP lists describing where in host memory (NVDIMM, for HAMS) the data for
//!   a command lives ([`prp`]),
//! * message-signalled interrupts delivered on completion, plus the MSI
//!   coalescing model (threshold + timeout aggregation) ([`msi`]),
//! * multi-queue submission: a [`QueueSet`] of N pairs with
//!   [`CommandId`]-keyed tracking, configured by a [`QueueConfig`]
//!   ([`queue`]).
//!
//! # Example
//!
//! ```
//! use hams_nvme::{NvmeCommand, NvmeOpcode, QueuePair, PrpList};
//!
//! let mut qp = QueuePair::new(0, 64);
//! let cmd = NvmeCommand::read(1, 0x80, 4096, PrpList::single(0x1000));
//! let cid = qp.submit(cmd).unwrap();
//! // Device side: fetch, service, complete.
//! let fetched = qp.fetch_next().unwrap();
//! assert_eq!(fetched.cid, cid);
//! qp.complete(cid, hams_nvme::NvmeStatus::Success).unwrap();
//! let cqe = qp.reap().unwrap();
//! assert_eq!(cqe.cid, cid);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod command;
pub mod msi;
pub mod prp;
pub mod queue;

pub use command::{CommandId, NvmeCommand, NvmeOpcode, NvmeStatus};
pub use msi::{MsiCoalescer, MsiCoalescerStats, MsiCoalescing, MsiTable, MsiVector};
pub use prp::{PrpEntry, PrpList};
pub use queue::{
    stripe_ranges, stripe_ranges_into, CompletionEntry, CompletionQueue, QueueConfig, QueueError,
    QueuePair, QueueSet, SubmissionQueue,
};
