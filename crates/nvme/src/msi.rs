//! Message-signalled interrupts (MSI).
//!
//! ULL-Flash notifies the host of a completion by writing an MSI vector;
//! HAMS keeps the MSI table in the pinned NVDIMM region (Fig. 9) and its NVMe
//! engine consumes the interrupts directly instead of invoking an OS interrupt
//! service routine. The model records delivered vectors so tests and the
//! platform runner can assert on interrupt traffic.

use serde::{Deserialize, Serialize};

/// A single MSI vector: which queue pair signalled, and a monotonically
/// increasing delivery sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsiVector {
    /// Queue pair that raised the interrupt.
    pub queue_id: u16,
    /// Delivery sequence number assigned by the [`MsiTable`].
    pub sequence: u64,
}

/// The MSI table: pending (delivered but unconsumed) interrupt vectors.
///
/// # Example
///
/// ```
/// use hams_nvme::MsiTable;
///
/// let mut table = MsiTable::new();
/// table.raise(0);
/// table.raise(0);
/// assert_eq!(table.pending(), 2);
/// let v = table.consume().unwrap();
/// assert_eq!(v.queue_id, 0);
/// assert_eq!(table.pending(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsiTable {
    pending: Vec<MsiVector>,
    delivered: u64,
}

impl MsiTable {
    /// Creates an empty MSI table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Device side: raises an interrupt for `queue_id`.
    pub fn raise(&mut self, queue_id: u16) -> MsiVector {
        let v = MsiVector {
            queue_id,
            sequence: self.delivered,
        };
        self.delivered += 1;
        self.pending.push(v);
        v
    }

    /// Host/HAMS side: consumes the oldest pending interrupt.
    pub fn consume(&mut self) -> Option<MsiVector> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }

    /// Number of pending (unconsumed) interrupts.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total number of interrupts ever delivered.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Clears pending interrupts (a power failure drops undelivered MSIs; the
    /// recovery path relies on journal tags instead).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_consume_in_order() {
        let mut t = MsiTable::new();
        t.raise(1);
        t.raise(2);
        assert_eq!(t.consume().unwrap().queue_id, 1);
        assert_eq!(t.consume().unwrap().queue_id, 2);
        assert!(t.consume().is_none());
        assert_eq!(t.total_delivered(), 2);
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut t = MsiTable::new();
        let a = t.raise(0);
        let b = t.raise(0);
        assert!(b.sequence > a.sequence);
    }

    #[test]
    fn clear_drops_pending_but_not_count() {
        let mut t = MsiTable::new();
        t.raise(0);
        t.clear();
        assert_eq!(t.pending(), 0);
        assert_eq!(t.total_delivered(), 1);
    }
}
