//! Message-signalled interrupts (MSI).
//!
//! ULL-Flash notifies the host of a completion by writing an MSI vector;
//! HAMS keeps the MSI table in the pinned NVDIMM region (Fig. 9) and its NVMe
//! engine consumes the interrupts directly instead of invoking an OS interrupt
//! service routine. The model records delivered vectors so tests and the
//! platform runner can assert on interrupt traffic.

use std::collections::VecDeque;

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Interrupt-coalescing parameters of the MSI path, mirroring the NVMe
/// aggregation registers: an interrupt is posted once `threshold` completions
/// have accumulated, or `timeout` after the oldest unsignalled completion
/// arrived, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsiCoalescing {
    /// Number of completions that force an immediate interrupt.
    pub threshold: u32,
    /// Maximum time a completion may wait for company before the aggregation
    /// timer fires.
    pub timeout: Nanos,
}

impl MsiCoalescing {
    /// No coalescing: every completion posts its own interrupt immediately.
    /// This is the single-queue engine's behaviour and the identity element
    /// of the model (delivery time == completion time).
    #[must_use]
    pub fn immediate() -> Self {
        MsiCoalescing {
            threshold: 1,
            timeout: Nanos::ZERO,
        }
    }

    /// Coalesce up to `threshold` completions, bounded by `timeout`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    #[must_use]
    pub fn batched(threshold: u32, timeout: Nanos) -> Self {
        assert!(threshold > 0, "coalescing threshold must be at least 1");
        MsiCoalescing { threshold, timeout }
    }
}

/// Delivery counters of an [`MsiCoalescer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsiCoalescerStats {
    /// Interrupts actually posted.
    pub interrupts: u64,
    /// Completions covered by those interrupts.
    pub completions: u64,
    /// Largest burst one interrupt covered (the telemetry "MSI coalescing
    /// burst size" gauge; zero before the first delivery).
    pub max_burst: u64,
}

impl MsiCoalescerStats {
    /// Mean completions per posted interrupt (zero before the first
    /// delivery) — the average coalescing burst size.
    #[must_use]
    pub fn mean_burst(&self) -> f64 {
        if self.interrupts == 0 {
            0.0
        } else {
            self.completions as f64 / self.interrupts as f64
        }
    }
}

/// The MSI aggregation model: maps completion times to interrupt delivery
/// times under a threshold + timeout policy.
///
/// The coalescer works on *bursts*: the HAMS NVMe engine submits the stripe
/// commands of one cache fill together and waits for the whole set, so it
/// arms the aggregation registers per burst. The effective threshold is
/// clamped to the burst size — a burst smaller than the configured threshold
/// would otherwise always pay the full timeout even though the engine knows
/// no further completions are coming.
///
/// # Example
///
/// ```
/// use hams_nvme::{MsiCoalescer, MsiCoalescing};
/// use hams_sim::Nanos;
///
/// let mut c = MsiCoalescer::new(MsiCoalescing::batched(2, Nanos::from_micros(5)));
/// let completions = [Nanos::from_micros(1), Nanos::from_micros(3)];
/// let delivered = c.deliver(&completions);
/// // Both completions ride one interrupt, posted when the second arrives.
/// assert_eq!(delivered, vec![Nanos::from_micros(3); 2]);
/// assert_eq!(c.stats().interrupts, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsiCoalescer {
    config: MsiCoalescing,
    stats: MsiCoalescerStats,
}

impl Default for MsiCoalescing {
    fn default() -> Self {
        Self::immediate()
    }
}

impl MsiCoalescer {
    /// Creates a coalescer with the given policy.
    #[must_use]
    pub fn new(config: MsiCoalescing) -> Self {
        MsiCoalescer {
            config,
            stats: MsiCoalescerStats::default(),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn config(&self) -> MsiCoalescing {
        self.config
    }

    /// Delivery counters.
    #[must_use]
    pub fn stats(&self) -> MsiCoalescerStats {
        self.stats
    }

    /// Computes the interrupt delivery time of each completion in one burst,
    /// returned in ascending completion order (the input need not be sorted;
    /// the output is index-aligned with the *sorted* completion times).
    ///
    /// Guarantees, for every completion time `c` with delivery time `d`:
    /// `c <= d` and `d - c <= timeout`; each posted interrupt covers at most
    /// `threshold` completions.
    #[must_use]
    pub fn deliver(&mut self, completions: &[Nanos]) -> Vec<Nanos> {
        let mut out = Vec::new();
        self.deliver_into(completions, &mut out);
        out
    }

    /// [`Self::deliver`] into a caller-owned buffer — the hot-path form. The
    /// HAMS fill path runs one burst per striped miss, so a reused buffer
    /// keeps the delivery computation allocation-free. `out` is cleared,
    /// filled with the sorted completion times, and then each group is
    /// overwritten in place with its interrupt delivery time.
    pub fn deliver_into(&mut self, completions: &[Nanos], out: &mut Vec<Nanos>) {
        out.clear();
        out.extend_from_slice(completions);
        out.sort_unstable();
        let n = out.len();
        let threshold = (self.config.threshold as usize).min(n).max(1);
        let mut i = 0;
        while i < n {
            let deadline = out[i].saturating_add(self.config.timeout);
            // Collect up to `threshold` completions arriving by the deadline.
            let mut j = i + 1;
            while j < n && j - i < threshold && out[j] <= deadline {
                j += 1;
            }
            // A filled group posts when its last member arrives; a timed-out
            // group posts when the aggregation timer expires.
            let fire = if j - i == threshold {
                out[j - 1]
            } else {
                deadline
            };
            for slot in &mut out[i..j] {
                *slot = fire;
            }
            self.stats.interrupts += 1;
            self.stats.completions += (j - i) as u64;
            self.stats.max_burst = self.stats.max_burst.max((j - i) as u64);
            i = j;
        }
    }
}

/// A single MSI vector: which queue pair signalled, and a monotonically
/// increasing delivery sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsiVector {
    /// Queue pair that raised the interrupt.
    pub queue_id: u16,
    /// Delivery sequence number assigned by the [`MsiTable`].
    pub sequence: u64,
}

/// The MSI table: pending (delivered but unconsumed) interrupt vectors.
///
/// # Example
///
/// ```
/// use hams_nvme::MsiTable;
///
/// let mut table = MsiTable::new();
/// table.raise(0);
/// table.raise(0);
/// assert_eq!(table.pending(), 2);
/// let v = table.consume().unwrap();
/// assert_eq!(v.queue_id, 0);
/// assert_eq!(table.pending(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsiTable {
    /// FIFO of delivered-but-unconsumed vectors: consumed from the front on
    /// every retired completion, so a ring buffer rather than a `Vec` whose
    /// `remove(0)` would shift the tail on each consume.
    pending: VecDeque<MsiVector>,
    delivered: u64,
}

impl MsiTable {
    /// Creates an empty MSI table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Device side: raises an interrupt for `queue_id`.
    pub fn raise(&mut self, queue_id: u16) -> MsiVector {
        let v = MsiVector {
            queue_id,
            sequence: self.delivered,
        };
        self.delivered += 1;
        self.pending.push_back(v);
        v
    }

    /// Host/HAMS side: consumes the oldest pending interrupt.
    pub fn consume(&mut self) -> Option<MsiVector> {
        self.pending.pop_front()
    }

    /// Number of pending (unconsumed) interrupts.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total number of interrupts ever delivered.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Clears pending interrupts (a power failure drops undelivered MSIs; the
    /// recovery path relies on journal tags instead).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_consume_in_order() {
        let mut t = MsiTable::new();
        t.raise(1);
        t.raise(2);
        assert_eq!(t.consume().unwrap().queue_id, 1);
        assert_eq!(t.consume().unwrap().queue_id, 2);
        assert!(t.consume().is_none());
        assert_eq!(t.total_delivered(), 2);
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut t = MsiTable::new();
        let a = t.raise(0);
        let b = t.raise(0);
        assert!(b.sequence > a.sequence);
    }

    #[test]
    fn immediate_coalescing_is_the_identity() {
        let mut c = MsiCoalescer::new(MsiCoalescing::immediate());
        let ts = [
            Nanos::from_nanos(10),
            Nanos::from_nanos(30),
            Nanos::from_nanos(20),
        ];
        let d = c.deliver(&ts);
        assert_eq!(
            d,
            vec![
                Nanos::from_nanos(10),
                Nanos::from_nanos(20),
                Nanos::from_nanos(30)
            ]
        );
        assert_eq!(c.stats().interrupts, 3);
        assert_eq!(c.stats().completions, 3);
    }

    #[test]
    fn threshold_groups_fire_on_their_last_member() {
        let mut c = MsiCoalescer::new(MsiCoalescing::batched(4, Nanos::from_micros(100)));
        let ts: Vec<Nanos> = (1..=8).map(Nanos::from_micros).collect();
        let d = c.deliver(&ts);
        assert_eq!(&d[..4], &[Nanos::from_micros(4); 4]);
        assert_eq!(&d[4..], &[Nanos::from_micros(8); 4]);
        assert_eq!(c.stats().interrupts, 2);
        assert_eq!(c.stats().max_burst, 4);
        assert_eq!(c.stats().mean_burst(), 4.0);
    }

    #[test]
    fn burst_stats_track_the_largest_group() {
        let mut c = MsiCoalescer::new(MsiCoalescing::batched(3, Nanos::from_micros(2)));
        let _ = c.deliver(&[Nanos::from_micros(1)]);
        assert_eq!(c.stats().max_burst, 1);
        let _ = c.deliver(&[
            Nanos::from_micros(10),
            Nanos::from_micros(11),
            Nanos::from_micros(12),
        ]);
        assert_eq!(c.stats().max_burst, 3);
        assert_eq!(c.stats().mean_burst(), 2.0);
        assert_eq!(MsiCoalescerStats::default().mean_burst(), 0.0);
    }

    #[test]
    fn timer_fires_when_a_group_cannot_fill_in_time() {
        let mut c = MsiCoalescer::new(MsiCoalescing::batched(3, Nanos::from_micros(2)));
        let ts = [
            Nanos::from_micros(1),
            Nanos::from_micros(2),
            Nanos::from_micros(10),
            Nanos::from_micros(11),
            Nanos::from_micros(12),
        ];
        let d = c.deliver(&ts);
        // First group: only two completions arrive within the 2 us window, so
        // the timer fires at 1 us + 2 us.
        assert_eq!(&d[..2], &[Nanos::from_micros(3); 2]);
        // Second group fills the threshold of three.
        assert_eq!(&d[2..], &[Nanos::from_micros(12); 3]);
    }

    #[test]
    fn threshold_is_clamped_to_the_burst_size() {
        let mut c = MsiCoalescer::new(MsiCoalescing::batched(8, Nanos::from_micros(50)));
        let ts = [Nanos::from_micros(5)];
        // A single-completion burst must not wait for the timer.
        assert_eq!(c.deliver(&ts), vec![Nanos::from_micros(5)]);
    }

    #[test]
    fn empty_burst_delivers_nothing() {
        let mut c = MsiCoalescer::new(MsiCoalescing::batched(4, Nanos::from_micros(1)));
        assert!(c.deliver(&[]).is_empty());
        assert_eq!(c.stats().interrupts, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = MsiCoalescing::batched(0, Nanos::ZERO);
    }

    #[test]
    fn clear_drops_pending_but_not_count() {
        let mut t = MsiTable::new();
        t.raise(0);
        t.clear();
        assert_eq!(t.pending(), 0);
        assert_eq!(t.total_delivered(), 1);
    }
}
