//! Physical-region-page (PRP) pointers.
//!
//! Every NVMe command references its host-memory data buffer through one or
//! more PRP entries. In HAMS the "host memory" is the NVDIMM, and the address
//! manager rewrites PRP entries to point at the PRP-pool clone of a cache line
//! during eviction-hazard avoidance (§V-B), so the model keeps PRPs as
//! first-class, mutable values.

use serde::{Deserialize, Serialize};

/// A single PRP entry: a physical address in host (NVDIMM) memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrpEntry(pub u64);

impl PrpEntry {
    /// The physical address this entry points at.
    #[must_use]
    pub fn address(self) -> u64 {
        self.0
    }
}

impl From<u64> for PrpEntry {
    fn from(addr: u64) -> Self {
        PrpEntry(addr)
    }
}

/// Entries stored inline before the list spills to the heap. Four covers the
/// scaled MoS page sizes (8 KB pages → two 4 KB regions) and every striped
/// fill segment, so the serving hot path never allocates for a PRP list.
const PRP_INLINE: usize = 4;

/// The list of PRP entries attached to a command.
///
/// Transfers up to one memory page use a single PRP pointer; larger transfers
/// use a list of page-aligned pointers, exactly as the specification (and the
/// paper's Fig. 4b discussion) describes.
///
/// Lists of up to four entries are stored inline in the command itself —
/// commands are moved through the submission ring, cloned into the
/// outstanding set and journalled by the NVMe engine several times per
/// simulated miss, and with the inline representation none of that touches
/// the heap. Longer lists (multi-LBA pages on a single queue pair) spill to a
/// `Vec`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrpList {
    /// Number of valid entries, wherever they are stored.
    len: u32,
    /// The first [`PRP_INLINE`] entries when `len <= PRP_INLINE`.
    inline: [PrpEntry; PRP_INLINE],
    /// All entries when `len > PRP_INLINE`; empty otherwise.
    spill: Vec<PrpEntry>,
}

impl PrpList {
    /// An empty list (used by data-less commands such as Flush).
    #[must_use]
    pub fn empty() -> Self {
        PrpList::default()
    }

    /// A list holding a single pointer.
    #[must_use]
    pub fn single(addr: u64) -> Self {
        let mut list = PrpList::default();
        list.inline[0] = PrpEntry(addr);
        list.len = 1;
        list
    }

    /// Builds the PRP list for a transfer of `length` bytes starting at host
    /// address `base`, split into `page_size`-byte regions.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn for_transfer(base: u64, length: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "PRP page size must be non-zero");
        if length == 0 {
            return PrpList::empty();
        }
        let first_page = base / page_size;
        let last_page = (base + length - 1) / page_size;
        let count = (last_page - first_page + 1) as usize;
        let mut list = PrpList::default();
        if count <= PRP_INLINE {
            for (i, p) in (first_page..=last_page).enumerate() {
                list.inline[i] = PrpEntry(p * page_size);
            }
        } else {
            list.spill = (first_page..=last_page)
                .map(|p| PrpEntry(p * page_size))
                .collect();
        }
        list.len = count as u32;
        list
    }

    fn from_vec(entries: Vec<PrpEntry>) -> Self {
        let count = entries.len();
        let mut list = PrpList::default();
        if count <= PRP_INLINE {
            list.inline[..count].copy_from_slice(&entries);
        } else {
            list.spill = entries;
        }
        list.len = count as u32;
        list
    }

    /// The entries as a slice, wherever they are stored.
    #[must_use]
    pub fn as_slice(&self) -> &[PrpEntry] {
        let len = self.len as usize;
        if len <= PRP_INLINE {
            &self.inline[..len]
        } else {
            &self.spill
        }
    }

    fn as_mut_slice(&mut self) -> &mut [PrpEntry] {
        let len = self.len as usize;
        if len <= PRP_INLINE {
            &mut self.inline[..len]
        } else {
            &mut self.spill
        }
    }

    /// Number of PRP entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the list has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first entry, if any.
    #[must_use]
    pub fn first(&self) -> Option<PrpEntry> {
        self.as_slice().first().copied()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, PrpEntry> {
        self.as_slice().iter()
    }

    /// Rewrites every entry to point into the clone at `new_base`, preserving
    /// the per-entry offsets relative to the original first entry.
    ///
    /// This is the operation the HAMS address manager performs when it clones
    /// a cache line into the PRP pool to avoid an eviction hazard: the command
    /// already sits in the submission queue, so only its PRP pointers change.
    pub fn retarget(&mut self, new_base: u64) {
        let entries = self.as_mut_slice();
        let Some(old_base) = entries.first().map(|e| e.0) else {
            return;
        };
        for e in entries {
            let offset = e.0.wrapping_sub(old_base);
            e.0 = new_base.wrapping_add(offset);
        }
    }
}

impl PartialEq for PrpList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PrpList {}

impl std::hash::Hash for PrpList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl FromIterator<PrpEntry> for PrpList {
    fn from_iter<I: IntoIterator<Item = PrpEntry>>(iter: I) -> Self {
        PrpList::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a PrpList {
    type Item = &'a PrpEntry;
    type IntoIter = std::slice::Iter<'a, PrpEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_page_transfer_uses_one_entry() {
        let l = PrpList::for_transfer(0x1000, 4096, 4096);
        assert_eq!(l.len(), 1);
        assert_eq!(l.first().unwrap().address(), 0x1000);
    }

    #[test]
    fn multi_page_transfer_uses_a_list() {
        let l = PrpList::for_transfer(0x1000, 16 * 1024, 4096);
        assert_eq!(l.len(), 4);
        let addrs: Vec<u64> = l.iter().map(|e| e.address()).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000, 0x4000]);
    }

    #[test]
    fn unaligned_transfer_covers_straddled_pages() {
        // 4 KB starting 1 KB into a page touches two pages.
        let l = PrpList::for_transfer(0x1400, 4096, 4096);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn zero_length_transfer_is_empty() {
        let l = PrpList::for_transfer(0x1000, 0, 4096);
        assert!(l.is_empty());
        assert_eq!(l.first(), None);
    }

    #[test]
    fn retarget_preserves_offsets() {
        let mut l = PrpList::for_transfer(0x1000, 8192, 4096);
        l.retarget(0x9000);
        let addrs: Vec<u64> = l.iter().map(|e| e.address()).collect();
        assert_eq!(addrs, vec![0x9000, 0xA000]);
        // Retargeting an empty list is a no-op.
        let mut e = PrpList::empty();
        e.retarget(0x5000);
        assert!(e.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let l: PrpList = [PrpEntry(1), PrpEntry(2)].into_iter().collect();
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = PrpList::for_transfer(0, 4096, 0);
    }

    #[test]
    fn long_lists_spill_past_the_inline_entries_transparently() {
        // 64 KB = 16 regions: past the inline capacity, so the list spills.
        let long = PrpList::for_transfer(0, 64 * 1024, 4096);
        assert_eq!(long.len(), 16);
        let addrs: Vec<u64> = long.iter().map(|e| e.address()).collect();
        assert_eq!(addrs[15], 15 * 4096);
        // Equality and retargeting behave identically across representations.
        let mut spilled = PrpList::for_transfer(0, 64 * 1024, 4096);
        assert_eq!(long, spilled);
        spilled.retarget(0x10_0000);
        assert_eq!(spilled.first().unwrap().address(), 0x10_0000);
        assert_ne!(long, spilled);
    }

    #[test]
    fn from_vec_chooses_the_representation_by_length() {
        // ≤ 4 entries stay inline (no heap), > 4 spill; both expose the same
        // slice and compare equal to an identically-built list.
        let short = PrpList::from_vec(vec![PrpEntry(1), PrpEntry(2)]);
        assert_eq!(short.as_slice(), &[PrpEntry(1), PrpEntry(2)]);
        assert_eq!(short, [PrpEntry(1), PrpEntry(2)].into_iter().collect());
        let long_vec: Vec<PrpEntry> = (0..9).map(PrpEntry).collect();
        let long = PrpList::from_vec(long_vec.clone());
        assert_eq!(long.as_slice(), long_vec.as_slice());
        assert_eq!(long, long_vec.into_iter().collect());
    }

    #[test]
    fn inline_lists_ignore_stale_slots_in_comparisons() {
        let mut a = PrpList::for_transfer(0x1000, 8192, 4096);
        // Shrink by rebuilding: a list with the same visible prefix but
        // different hidden slots must still compare equal.
        a.retarget(0x1000);
        let b = PrpList::for_transfer(0x1000, 8192, 4096);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |l: &PrpList| {
            let mut h = DefaultHasher::new();
            l.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
