//! Physical-region-page (PRP) pointers.
//!
//! Every NVMe command references its host-memory data buffer through one or
//! more PRP entries. In HAMS the "host memory" is the NVDIMM, and the address
//! manager rewrites PRP entries to point at the PRP-pool clone of a cache line
//! during eviction-hazard avoidance (§V-B), so the model keeps PRPs as
//! first-class, mutable values.

use serde::{Deserialize, Serialize};

/// A single PRP entry: a physical address in host (NVDIMM) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrpEntry(pub u64);

impl PrpEntry {
    /// The physical address this entry points at.
    #[must_use]
    pub fn address(self) -> u64 {
        self.0
    }
}

impl From<u64> for PrpEntry {
    fn from(addr: u64) -> Self {
        PrpEntry(addr)
    }
}

/// The list of PRP entries attached to a command.
///
/// Transfers up to one memory page use a single PRP pointer; larger transfers
/// use a list of page-aligned pointers, exactly as the specification (and the
/// paper's Fig. 4b discussion) describes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrpList {
    entries: Vec<PrpEntry>,
}

impl PrpList {
    /// An empty list (used by data-less commands such as Flush).
    #[must_use]
    pub fn empty() -> Self {
        PrpList {
            entries: Vec::new(),
        }
    }

    /// A list holding a single pointer.
    #[must_use]
    pub fn single(addr: u64) -> Self {
        PrpList {
            entries: vec![PrpEntry(addr)],
        }
    }

    /// Builds the PRP list for a transfer of `length` bytes starting at host
    /// address `base`, split into `page_size`-byte regions.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn for_transfer(base: u64, length: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "PRP page size must be non-zero");
        if length == 0 {
            return PrpList::empty();
        }
        let first_page = base / page_size;
        let last_page = (base + length - 1) / page_size;
        let entries = (first_page..=last_page)
            .map(|p| PrpEntry(p * page_size))
            .collect();
        PrpList { entries }
    }

    /// Number of PRP entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the list has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The first entry, if any.
    #[must_use]
    pub fn first(&self) -> Option<PrpEntry> {
        self.entries.first().copied()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, PrpEntry> {
        self.entries.iter()
    }

    /// Rewrites every entry to point into the clone at `new_base`, preserving
    /// the per-entry offsets relative to the original first entry.
    ///
    /// This is the operation the HAMS address manager performs when it clones
    /// a cache line into the PRP pool to avoid an eviction hazard: the command
    /// already sits in the submission queue, so only its PRP pointers change.
    pub fn retarget(&mut self, new_base: u64) {
        let Some(old_base) = self.entries.first().map(|e| e.0) else {
            return;
        };
        for e in &mut self.entries {
            let offset = e.0.wrapping_sub(old_base);
            e.0 = new_base.wrapping_add(offset);
        }
    }
}

impl FromIterator<PrpEntry> for PrpList {
    fn from_iter<I: IntoIterator<Item = PrpEntry>>(iter: I) -> Self {
        PrpList {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PrpList {
    type Item = &'a PrpEntry;
    type IntoIter = std::slice::Iter<'a, PrpEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_page_transfer_uses_one_entry() {
        let l = PrpList::for_transfer(0x1000, 4096, 4096);
        assert_eq!(l.len(), 1);
        assert_eq!(l.first().unwrap().address(), 0x1000);
    }

    #[test]
    fn multi_page_transfer_uses_a_list() {
        let l = PrpList::for_transfer(0x1000, 16 * 1024, 4096);
        assert_eq!(l.len(), 4);
        let addrs: Vec<u64> = l.iter().map(|e| e.address()).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000, 0x4000]);
    }

    #[test]
    fn unaligned_transfer_covers_straddled_pages() {
        // 4 KB starting 1 KB into a page touches two pages.
        let l = PrpList::for_transfer(0x1400, 4096, 4096);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn zero_length_transfer_is_empty() {
        let l = PrpList::for_transfer(0x1000, 0, 4096);
        assert!(l.is_empty());
        assert_eq!(l.first(), None);
    }

    #[test]
    fn retarget_preserves_offsets() {
        let mut l = PrpList::for_transfer(0x1000, 8192, 4096);
        l.retarget(0x9000);
        let addrs: Vec<u64> = l.iter().map(|e| e.address()).collect();
        assert_eq!(addrs, vec![0x9000, 0xA000]);
        // Retargeting an empty list is a no-op.
        let mut e = PrpList::empty();
        e.retarget(0x5000);
        assert!(e.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let l: PrpList = [PrpEntry(1), PrpEntry(2)].into_iter().collect();
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = PrpList::for_transfer(0, 4096, 0);
    }
}
