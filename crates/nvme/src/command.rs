//! NVMe command and completion-status types.
//!
//! Commands are modelled at field granularity rather than as raw 64-byte
//! encodings; the fields kept are exactly those the HAMS controller
//! manipulates (§V-B of the paper): opcode, command identifier, starting LBA,
//! transfer length, PRP pointers, the force-unit-access bit used by the
//! persist mode, and the *journal tag* HAMS stores in the command's reserved
//! area to drive power-failure recovery (§V-C).

use serde::{Deserialize, Serialize};

use crate::prp::PrpList;

/// NVM command-set opcodes used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmeOpcode {
    /// Read data from the flash medium into host (NVDIMM) memory.
    Read,
    /// Write data from host (NVDIMM) memory to the flash medium.
    Write,
    /// Flush the device's volatile write buffer to the medium.
    Flush,
}

impl NvmeOpcode {
    /// Returns `true` for commands that transfer data to the medium.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, NvmeOpcode::Write)
    }

    /// Returns `true` for commands that transfer data from the medium.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, NvmeOpcode::Read)
    }
}

/// Completion status returned in a completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmeStatus {
    /// The command completed successfully.
    Success,
    /// The command referenced an LBA beyond the namespace capacity.
    LbaOutOfRange,
    /// The command was aborted (e.g. by a power failure before service).
    Aborted,
    /// An internal device error occurred.
    InternalError,
}

impl NvmeStatus {
    /// Returns `true` if the status indicates success.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, NvmeStatus::Success)
    }
}

/// Fully-qualified identifier of an outstanding command: the queue pair it
/// was submitted on plus the per-queue command identifier. `cid`s are only
/// unique within one queue pair, so everything that tracks commands across a
/// [`QueueSet`](crate::QueueSet) keys on this pair instead.
///
/// Ordering is `(queue, cid)` lexicographic, which keeps multi-queue scans
/// (e.g. the power-failure journal walk) deterministic and, for a single
/// queue, identical to the old cid-only order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CommandId {
    /// Queue pair the command was submitted on.
    pub queue: u16,
    /// Command identifier within that queue pair.
    pub cid: u16,
}

impl CommandId {
    /// Builds an identifier from its parts.
    #[must_use]
    pub fn new(queue: u16, cid: u16) -> Self {
        CommandId { queue, cid }
    }
}

/// A single 64-byte NVMe command as manipulated by the HAMS NVMe engine.
///
/// The `cid` (command identifier) is assigned by the submission queue when the
/// command is enqueued; a freshly constructed command carries `cid == 0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCommand {
    /// Command identifier, unique among outstanding commands of one queue.
    pub cid: u16,
    /// Command opcode.
    pub opcode: NvmeOpcode,
    /// Namespace identifier (the model uses a single namespace, 1).
    pub nsid: u32,
    /// Starting logical block address.
    pub slba: u64,
    /// Transfer length in bytes.
    pub length: u64,
    /// Physical-region-page pointers locating the data in host memory.
    pub prp: PrpList,
    /// Force-unit-access: bypass the device's volatile buffer. Used by the
    /// HAMS persist mode (`hams-LP`/`-TP`).
    pub fua: bool,
    /// HAMS journal tag stored in the command's reserved area: set to `true`
    /// when the command is issued, cleared on completion, scanned during
    /// power-failure recovery (§V-C).
    pub journal_tag: bool,
}

impl NvmeCommand {
    /// Builds a read command for `length` bytes starting at `slba`.
    #[must_use]
    pub fn read(nsid: u32, slba: u64, length: u64, prp: PrpList) -> Self {
        NvmeCommand {
            cid: 0,
            opcode: NvmeOpcode::Read,
            nsid,
            slba,
            length,
            prp,
            fua: false,
            journal_tag: false,
        }
    }

    /// Builds a write command for `length` bytes starting at `slba`.
    #[must_use]
    pub fn write(nsid: u32, slba: u64, length: u64, prp: PrpList) -> Self {
        NvmeCommand {
            cid: 0,
            opcode: NvmeOpcode::Write,
            nsid,
            slba,
            length,
            prp,
            fua: false,
            journal_tag: false,
        }
    }

    /// Builds a flush command.
    #[must_use]
    pub fn flush(nsid: u32) -> Self {
        NvmeCommand {
            cid: 0,
            opcode: NvmeOpcode::Flush,
            nsid,
            slba: 0,
            length: 0,
            prp: PrpList::empty(),
            fua: false,
            journal_tag: false,
        }
    }

    /// Sets the force-unit-access bit (builder style).
    #[must_use]
    pub fn with_fua(mut self, fua: bool) -> Self {
        self.fua = fua;
        self
    }

    /// Sets the HAMS journal tag (builder style).
    #[must_use]
    pub fn with_journal_tag(mut self, tag: bool) -> Self {
        self.journal_tag = tag;
        self
    }

    /// The encoded size of a command on the wire/bus: 64 bytes, the size the
    /// advanced HAMS register interface bursts over DDR4 in eight beats.
    pub const WIRE_SIZE_BYTES: u64 = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let r = NvmeCommand::read(1, 0x10, 4096, PrpList::single(0xA000));
        assert_eq!(r.opcode, NvmeOpcode::Read);
        assert!(r.opcode.is_read());
        assert!(!r.opcode.is_write());
        assert_eq!(r.slba, 0x10);
        assert_eq!(r.length, 4096);
        assert!(!r.fua);
        assert!(!r.journal_tag);

        let w = NvmeCommand::write(1, 0x20, 8192, PrpList::single(0xB000));
        assert!(w.opcode.is_write());

        let f = NvmeCommand::flush(1);
        assert_eq!(f.opcode, NvmeOpcode::Flush);
        assert_eq!(f.length, 0);
    }

    #[test]
    fn builder_flags() {
        let c = NvmeCommand::write(1, 0, 4096, PrpList::single(0))
            .with_fua(true)
            .with_journal_tag(true);
        assert!(c.fua);
        assert!(c.journal_tag);
    }

    #[test]
    fn status_success_check() {
        assert!(NvmeStatus::Success.is_success());
        assert!(!NvmeStatus::Aborted.is_success());
        assert!(!NvmeStatus::LbaOutOfRange.is_success());
    }

    #[test]
    fn wire_size_matches_spec() {
        assert_eq!(NvmeCommand::WIRE_SIZE_BYTES, 64);
    }
}
