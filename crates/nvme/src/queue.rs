//! Submission and completion queues with doorbell semantics.
//!
//! The queues are simple FIFO rings, each entry referenced by PRP pointers,
//! exactly as §II-C describes. HAMS places the rings in a pinned,
//! MMU-invisible region of NVDIMM; this module models the ring *state*
//! (entries, head/tail pointers, doorbells) while the NVDIMM crate models
//! where that state lives and what survives a power failure.

use std::collections::VecDeque;
use std::fmt;

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::command::{CommandId, NvmeCommand, NvmeStatus};
use crate::msi::MsiCoalescing;

/// Errors produced by queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueError {
    /// The submission queue is full; the host must wait for completions.
    SubmissionQueueFull,
    /// The completion queue is full; the device must wait for the host to reap.
    CompletionQueueFull,
    /// A completion was posted for a command identifier that is not outstanding.
    UnknownCommand(u16),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::SubmissionQueueFull => write!(f, "submission queue full"),
            QueueError::CompletionQueueFull => write!(f, "completion queue full"),
            QueueError::UnknownCommand(cid) => write!(f, "unknown command identifier {cid}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEntry {
    /// Identifier of the completed command.
    pub cid: u16,
    /// Completion status.
    pub status: NvmeStatus,
    /// Submission-queue head pointer at completion time, used by the host to
    /// learn how far the device has consumed the SQ.
    pub sq_head: u16,
}

/// A FIFO submission queue with head/tail pointers and a tail doorbell.
///
/// `tail` advances on submission (host side), `head` advances when the device
/// fetches a command. The *doorbell* records the last tail value the host has
/// rung; entries between the doorbell and the tail are invisible to the
/// device, which is exactly the window the HAMS power-failure recovery logic
/// inspects (§IV-B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmissionQueue {
    capacity: usize,
    entries: VecDeque<NvmeCommand>,
    next_cid: u16,
    head: u16,
    tail: u16,
    doorbell: u16,
}

impl SubmissionQueue {
    /// Creates an empty submission queue with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the NVMe minimum of 2 entries or exceeds
    /// the maximum of 65 536.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!((2..=65_536).contains(&capacity), "invalid SQ capacity");
        SubmissionQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            next_cid: 0,
            head: 0,
            tail: 0,
            doorbell: 0,
        }
    }

    /// Queue capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of commands currently waiting to be fetched by the device.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no commands are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the queue cannot accept another command.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current head pointer (device consumption point).
    #[must_use]
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Current tail pointer (host production point).
    #[must_use]
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Last tail value rung through the doorbell.
    #[must_use]
    pub fn doorbell(&self) -> u16 {
        self.doorbell
    }

    /// Enqueues a command, assigning it a command identifier, and returns that
    /// identifier. The doorbell is *not* rung; call [`ring_doorbell`].
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionQueueFull`] when the ring is full.
    ///
    /// [`ring_doorbell`]: SubmissionQueue::ring_doorbell
    pub fn push(&mut self, mut cmd: NvmeCommand) -> Result<u16, QueueError> {
        if self.is_full() {
            return Err(QueueError::SubmissionQueueFull);
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        cmd.cid = cid;
        self.entries.push_back(cmd);
        self.tail = self.tail.wrapping_add(1) % self.capacity as u16;
        Ok(cid)
    }

    /// Rings the tail doorbell, making every pushed entry visible to the device.
    pub fn ring_doorbell(&mut self) {
        self.doorbell = self.tail;
    }

    /// Device side: fetches the oldest visible command, advancing the head.
    /// Returns `None` when no doorbell-visible command is pending.
    pub fn fetch(&mut self) -> Option<NvmeCommand> {
        if self.head == self.doorbell {
            return None;
        }
        let cmd = self.entries.pop_front()?;
        self.head = self.head.wrapping_add(1) % self.capacity as u16;
        Some(cmd)
    }

    /// Commands pushed but not yet fetched, in submission order. Used by the
    /// HAMS recovery scan, which re-reads the SQ ring out of the pinned
    /// NVDIMM region after a power failure.
    #[must_use]
    pub fn pending(&self) -> Vec<NvmeCommand> {
        self.entries.iter().cloned().collect()
    }

    /// Returns `true` if head, tail and doorbell all coincide — the paper's
    /// consistency condition for "no requests were in flight at power-off".
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.head == self.tail && self.tail == self.doorbell && self.entries.is_empty()
    }
}

/// A FIFO completion queue with head/tail pointers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletionQueue {
    capacity: usize,
    entries: VecDeque<CompletionEntry>,
    head: u16,
    tail: u16,
}

impl CompletionQueue {
    /// Creates an empty completion queue with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the NVMe minimum of 2 entries or exceeds
    /// the maximum of 65 536.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!((2..=65_536).contains(&capacity), "invalid CQ capacity");
        CompletionQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            head: 0,
            tail: 0,
        }
    }

    /// Number of completions waiting to be reaped by the host.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no completions are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current head pointer (host consumption point).
    #[must_use]
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Current tail pointer (device production point).
    #[must_use]
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Device side: posts a completion entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::CompletionQueueFull`] when the ring is full.
    pub fn post(&mut self, entry: CompletionEntry) -> Result<(), QueueError> {
        if self.entries.len() >= self.capacity {
            return Err(QueueError::CompletionQueueFull);
        }
        self.entries.push_back(entry);
        self.tail = self.tail.wrapping_add(1) % self.capacity as u16;
        Ok(())
    }

    /// Host side: reaps the oldest completion, advancing the head.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        let e = self.entries.pop_front()?;
        self.head = self.head.wrapping_add(1) % self.capacity as u16;
        Some(e)
    }

    /// Returns `true` if head and tail coincide with an empty ring.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.head == self.tail && self.entries.is_empty()
    }
}

/// A paired submission/completion queue with outstanding-command tracking —
/// the unit of NVMe I/O the HAMS NVMe engine manages.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuePair {
    /// Queue identifier (0 is the admin queue in real NVMe; the model uses
    /// a single I/O queue pair with identifier 0 by convention).
    pub id: u16,
    sq: SubmissionQueue,
    cq: CompletionQueue,
    outstanding: Vec<NvmeCommand>,
}

impl QueuePair {
    /// Creates a queue pair whose SQ and CQ both hold `depth` entries.
    #[must_use]
    pub fn new(id: u16, depth: usize) -> Self {
        QueuePair {
            id,
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
            outstanding: Vec::new(),
        }
    }

    /// Read access to the submission queue.
    #[must_use]
    pub fn submission(&self) -> &SubmissionQueue {
        &self.sq
    }

    /// Read access to the completion queue.
    #[must_use]
    pub fn completion(&self) -> &CompletionQueue {
        &self.cq
    }

    /// Number of commands fetched by the device but not yet completed.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Host side: submits a command and rings the doorbell.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionQueueFull`] when the SQ is full.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<u16, QueueError> {
        let cid = self.sq.push(cmd)?;
        self.sq.ring_doorbell();
        Ok(cid)
    }

    /// Device side: fetches the next doorbell-visible command and marks it
    /// outstanding.
    pub fn fetch_next(&mut self) -> Option<NvmeCommand> {
        let cmd = self.sq.fetch()?;
        self.outstanding.push(cmd.clone());
        Some(cmd)
    }

    /// Device side: completes an outstanding command, posting a CQ entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownCommand`] if `cid` is not outstanding, or
    /// [`QueueError::CompletionQueueFull`] if the CQ has no room.
    pub fn complete(&mut self, cid: u16, status: NvmeStatus) -> Result<(), QueueError> {
        let idx = self
            .outstanding
            .iter()
            .position(|c| c.cid == cid)
            .ok_or(QueueError::UnknownCommand(cid))?;
        self.cq.post(CompletionEntry {
            cid,
            status,
            sq_head: self.sq.head(),
        })?;
        self.outstanding.remove(idx);
        Ok(())
    }

    /// Host side: reaps the next completion.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        self.cq.reap()
    }

    /// Commands that were submitted but have neither been fetched nor
    /// completed, plus those fetched but still outstanding: everything a power
    /// failure would leave unfinished. This is the set the HAMS recovery
    /// procedure re-issues.
    #[must_use]
    pub fn unfinished(&self) -> Vec<NvmeCommand> {
        let mut all = self.outstanding.clone();
        all.extend(self.sq.pending());
        all
    }

    /// Returns `true` when no command is pending, outstanding or unreaped —
    /// the "tail pointers refer to the same offset" condition of §IV-B.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.sq.is_quiescent() && self.cq.is_quiescent() && self.outstanding.is_empty()
    }
}

/// Shape of the NVMe submission path: how many I/O queue pairs the engine
/// manages, how deep each ring is, and how completions coalesce into MSIs.
///
/// [`QueueConfig::single`] reproduces the original single-queue engine
/// exactly (one pair, immediate interrupts); [`QueueConfig::striped`] is the
/// paper's hardware-automated multi-queue submission, where independent
/// flash fills are striped across queue pairs and their completion
/// interrupts are coalesced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Number of I/O submission/completion queue pairs.
    pub num_queues: u16,
    /// Entry capacity of each submission and completion ring.
    pub queue_depth: usize,
    /// MSI coalescing policy applied to completion interrupts.
    pub coalescing: MsiCoalescing,
}

impl QueueConfig {
    /// The single-queue fallback: one pair, 1024 entries, no coalescing.
    /// Behaviourally identical to the engine before multi-queue existed.
    #[must_use]
    pub fn single() -> Self {
        QueueConfig {
            num_queues: 1,
            queue_depth: 1024,
            coalescing: MsiCoalescing::immediate(),
        }
    }

    /// `num_queues` pairs with completions coalesced up to one interrupt per
    /// stripe set (threshold = queue count, 8 µs aggregation timer).
    #[must_use]
    pub fn striped(num_queues: u16) -> Self {
        let n = num_queues.max(1);
        QueueConfig {
            num_queues: n,
            queue_depth: 1024,
            coalescing: if n == 1 {
                MsiCoalescing::immediate()
            } else {
                MsiCoalescing::batched(u32::from(n), Nanos::from_micros(8))
            },
        }
    }

    /// Changes the per-ring depth (builder style).
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Changes the coalescing policy (builder style).
    #[must_use]
    pub fn with_coalescing(mut self, coalescing: MsiCoalescing) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Whether this is the single-queue fallback shape.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.num_queues <= 1
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// A set of N submission/completion queue pairs — the multi-queue NVMe
/// interface the HAMS engine stripes independent fills across.
///
/// Queue identifiers are dense (`0..num_queues`), and commands are globally
/// identified by [`CommandId`] (queue, cid) pairs.
///
/// # Example
///
/// ```
/// use hams_nvme::{NvmeCommand, NvmeStatus, PrpList, QueueSet};
///
/// let mut set = QueueSet::new(4, 64);
/// let q = set.queue_for(7); // deterministic striping by key
/// let id = set
///     .submit_on(q, NvmeCommand::read(1, 0x80, 4096, PrpList::single(0)))
///     .unwrap();
/// let fetched = set.fetch_next(q).unwrap();
/// assert_eq!(fetched.cid, id.cid);
/// set.complete(id, NvmeStatus::Success).unwrap();
/// assert_eq!(set.reap(q).unwrap().cid, id.cid);
/// assert!(set.is_quiescent());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueSet {
    queues: Vec<QueuePair>,
}

impl QueueSet {
    /// Creates `num_queues` pairs, each with `depth` entries per ring.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` is zero (a queue-less NVMe engine cannot issue
    /// commands) or `depth` is outside the NVMe ring bounds.
    #[must_use]
    pub fn new(num_queues: u16, depth: usize) -> Self {
        assert!(num_queues > 0, "a QueueSet needs at least one queue pair");
        QueueSet {
            queues: (0..num_queues)
                .map(|id| QueuePair::new(id, depth))
                .collect(),
        }
    }

    /// Builds the set described by a [`QueueConfig`].
    #[must_use]
    pub fn from_config(config: QueueConfig) -> Self {
        Self::new(config.num_queues.max(1), config.queue_depth)
    }

    /// Number of queue pairs.
    #[must_use]
    pub fn num_queues(&self) -> u16 {
        self.queues.len() as u16
    }

    /// The queue pair a striping key (MoS page number, stripe index, …) maps
    /// to: keys are distributed round-robin across the set.
    #[must_use]
    pub fn queue_for(&self, key: u64) -> u16 {
        (key % self.queues.len() as u64) as u16
    }

    /// Read access to one queue pair.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    #[must_use]
    pub fn queue(&self, queue: u16) -> &QueuePair {
        &self.queues[queue as usize]
    }

    /// Iterates over the queue pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = &QueuePair> {
        self.queues.iter()
    }

    /// Host side: submits `cmd` on `queue` (rings its doorbell) and returns
    /// the fully-qualified command identifier.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionQueueFull`] when that ring is full.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn submit_on(&mut self, queue: u16, cmd: NvmeCommand) -> Result<CommandId, QueueError> {
        let cid = self.queues[queue as usize].submit(cmd)?;
        Ok(CommandId { queue, cid })
    }

    /// Device side: fetches the next doorbell-visible command on `queue`.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn fetch_next(&mut self, queue: u16) -> Option<NvmeCommand> {
        self.queues[queue as usize].fetch_next()
    }

    /// Device side: completes an outstanding command.
    ///
    /// # Errors
    ///
    /// Propagates [`QueueError`] from the owning queue pair.
    ///
    /// # Panics
    ///
    /// Panics if the identifier's queue is out of range.
    pub fn complete(&mut self, id: CommandId, status: NvmeStatus) -> Result<(), QueueError> {
        self.queues[id.queue as usize].complete(id.cid, status)
    }

    /// Host side: reaps the next completion on `queue`.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn reap(&mut self, queue: u16) -> Option<CompletionEntry> {
        self.queues[queue as usize].reap()
    }

    /// Total commands fetched but not completed, across all queues.
    #[must_use]
    pub fn total_outstanding(&self) -> usize {
        self.queues.iter().map(QueuePair::outstanding).sum()
    }

    /// Everything a power failure would leave unfinished, tagged with the
    /// queue it sits on, in (queue, submission) order.
    #[must_use]
    pub fn unfinished(&self) -> Vec<(u16, NvmeCommand)> {
        self.queues
            .iter()
            .flat_map(|qp| qp.unfinished().into_iter().map(move |c| (qp.id, c)))
            .collect()
    }

    /// Returns `true` when every queue pair is quiescent.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queues.iter().all(QueuePair::is_quiescent)
    }
}

/// Partitions `lbas` logical blocks into at most `lanes` contiguous stripe
/// ranges `(start_lba, lba_count)`, in address order. The first
/// `lbas % lanes` stripes carry one extra block, so the split is as even as
/// possible; `lanes` is clamped to `1..=lbas`. This is the one LBA-split
/// rule every multi-queue submitter (the HAMS fill path, the FlatFlash
/// MMIO path) shares, so a change to the partitioning cannot diverge
/// between them.
///
/// # Example
///
/// ```
/// assert_eq!(
///     hams_nvme::stripe_ranges(10, 4),
///     vec![(0, 3), (3, 3), (6, 2), (8, 2)]
/// );
/// ```
#[must_use]
pub fn stripe_ranges(lbas: u64, lanes: u64) -> Vec<(u64, u64)> {
    let mut ranges = Vec::new();
    stripe_ranges_into(lbas, lanes, &mut ranges);
    ranges
}

/// [`stripe_ranges`] into a caller-owned buffer — the hot-path form used by
/// the HAMS fill path, which partitions one page per simulated miss and
/// reuses the buffer across misses. `out` is cleared first.
pub fn stripe_ranges_into(lbas: u64, lanes: u64, out: &mut Vec<(u64, u64)>) {
    out.clear();
    if lbas == 0 {
        return;
    }
    let lanes = lanes.clamp(1, lbas);
    let per = lbas / lanes;
    let extra = lbas % lanes;
    out.reserve(lanes as usize);
    let mut next = 0u64;
    for lane in 0..lanes {
        let count = per + u64::from(lane < extra);
        out.push((next, count));
        next += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prp::PrpList;

    fn cmd(lba: u64) -> NvmeCommand {
        NvmeCommand::read(1, lba, 4096, PrpList::single(0x1000))
    }

    #[test]
    fn submission_requires_doorbell() {
        let mut sq = SubmissionQueue::new(8);
        sq.push(cmd(1)).unwrap();
        assert_eq!(sq.fetch(), None, "entry must be invisible before doorbell");
        sq.ring_doorbell();
        assert!(sq.fetch().is_some());
        assert!(sq.fetch().is_none());
    }

    #[test]
    fn submission_queue_fills_and_reports() {
        let mut sq = SubmissionQueue::new(2);
        sq.push(cmd(1)).unwrap();
        sq.push(cmd(2)).unwrap();
        assert!(sq.is_full());
        assert_eq!(sq.push(cmd(3)), Err(QueueError::SubmissionQueueFull));
        assert_eq!(sq.len(), 2);
        assert_eq!(sq.pending().len(), 2);
        assert!(!sq.is_quiescent());
    }

    #[test]
    fn cids_are_unique_and_sequential() {
        let mut sq = SubmissionQueue::new(16);
        let a = sq.push(cmd(1)).unwrap();
        let b = sq.push(cmd(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(b, a.wrapping_add(1));
    }

    #[test]
    fn completion_queue_round_trip() {
        let mut cq = CompletionQueue::new(2);
        assert!(cq.is_quiescent());
        cq.post(CompletionEntry {
            cid: 7,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        assert_eq!(cq.len(), 1);
        let e = cq.reap().unwrap();
        assert_eq!(e.cid, 7);
        assert!(e.status.is_success());
        assert!(cq.reap().is_none());
    }

    #[test]
    fn completion_queue_full() {
        let mut cq = CompletionQueue::new(2);
        cq.post(CompletionEntry {
            cid: 7,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        cq.post(CompletionEntry {
            cid: 0,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        let err = cq
            .post(CompletionEntry {
                cid: 1,
                status: NvmeStatus::Success,
                sq_head: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueueError::CompletionQueueFull);
    }

    #[test]
    fn queue_pair_full_lifecycle() {
        let mut qp = QueuePair::new(0, 8);
        assert!(qp.is_quiescent());
        let cid = qp.submit(cmd(5)).unwrap();
        assert!(!qp.is_quiescent());
        let fetched = qp.fetch_next().unwrap();
        assert_eq!(fetched.cid, cid);
        assert_eq!(qp.outstanding(), 1);
        qp.complete(cid, NvmeStatus::Success).unwrap();
        assert_eq!(qp.outstanding(), 0);
        let cqe = qp.reap().unwrap();
        assert_eq!(cqe.cid, cid);
        assert!(qp.is_quiescent());
    }

    #[test]
    fn completing_unknown_cid_is_an_error() {
        let mut qp = QueuePair::new(0, 4);
        assert_eq!(
            qp.complete(99, NvmeStatus::Success),
            Err(QueueError::UnknownCommand(99))
        );
    }

    #[test]
    fn unfinished_reports_both_pending_and_outstanding() {
        let mut qp = QueuePair::new(0, 8);
        qp.submit(cmd(1)).unwrap();
        qp.submit(cmd(2)).unwrap();
        qp.submit(cmd(3)).unwrap();
        let _ = qp.fetch_next().unwrap(); // one outstanding, two pending
        let unfinished = qp.unfinished();
        assert_eq!(unfinished.len(), 3);
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            QueueError::SubmissionQueueFull.to_string(),
            "submission queue full"
        );
        assert!(QueueError::UnknownCommand(3).to_string().contains('3'));
    }

    #[test]
    #[should_panic(expected = "invalid SQ capacity")]
    fn zero_capacity_sq_panics() {
        let _ = SubmissionQueue::new(0);
    }

    #[test]
    fn queue_set_stripes_keys_round_robin() {
        let set = QueueSet::new(4, 16);
        assert_eq!(set.num_queues(), 4);
        assert_eq!(set.queue_for(0), 0);
        assert_eq!(set.queue_for(5), 1);
        assert_eq!(set.queue_for(7), 3);
        assert_eq!(set.iter().count(), 4);
    }

    #[test]
    fn queue_set_lifecycle_across_queues() {
        let mut set = QueueSet::new(2, 8);
        let a = set.submit_on(0, cmd(1)).unwrap();
        let b = set.submit_on(1, cmd(2)).unwrap();
        // cids restart per queue; the CommandId disambiguates.
        assert_eq!(a.cid, b.cid);
        assert_ne!(a, b);
        assert!(set.fetch_next(0).is_some());
        assert!(set.fetch_next(1).is_some());
        assert_eq!(set.total_outstanding(), 2);
        set.complete(a, NvmeStatus::Success).unwrap();
        set.complete(b, NvmeStatus::Success).unwrap();
        assert!(set.reap(0).is_some());
        assert!(set.reap(1).is_some());
        assert!(set.is_quiescent());
    }

    #[test]
    fn queue_set_unfinished_reports_per_queue() {
        let mut set = QueueSet::new(2, 8);
        set.submit_on(0, cmd(1)).unwrap();
        set.submit_on(1, cmd(2)).unwrap();
        let _ = set.fetch_next(1);
        let unfinished = set.unfinished();
        assert_eq!(unfinished.len(), 2);
        assert_eq!(unfinished[0].0, 0);
        assert_eq!(unfinished[1].0, 1);
        assert!(!set.is_quiescent());
    }

    #[test]
    fn queue_set_from_config_honours_shape() {
        let set = QueueSet::from_config(QueueConfig::striped(3).with_depth(32));
        assert_eq!(set.num_queues(), 3);
        assert_eq!(set.queue(2).submission().capacity(), 32);
        assert!(QueueConfig::single().is_single());
        assert!(!QueueConfig::striped(3).is_single());
    }

    #[test]
    #[should_panic(expected = "at least one queue pair")]
    fn empty_queue_set_panics() {
        let _ = QueueSet::new(0, 8);
    }

    #[test]
    fn stripe_ranges_cover_the_span_exactly_once() {
        for lbas in 1u64..40 {
            for lanes in 1u64..10 {
                let ranges = stripe_ranges(lbas, lanes);
                assert_eq!(ranges.len() as u64, lanes.min(lbas));
                assert_eq!(ranges.iter().map(|(_, c)| c).sum::<u64>(), lbas);
                let mut expected_start = 0;
                for (start, count) in ranges {
                    assert_eq!(start, expected_start, "ranges must be contiguous");
                    assert!(count > 0, "no empty stripes");
                    expected_start += count;
                }
            }
        }
        assert!(stripe_ranges(0, 4).is_empty());
    }
}
