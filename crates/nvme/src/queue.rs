//! Submission and completion queues with doorbell semantics.
//!
//! The queues are simple FIFO rings, each entry referenced by PRP pointers,
//! exactly as §II-C describes. HAMS places the rings in a pinned,
//! MMU-invisible region of NVDIMM; this module models the ring *state*
//! (entries, head/tail pointers, doorbells) while the NVDIMM crate models
//! where that state lives and what survives a power failure.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::command::{NvmeCommand, NvmeStatus};

/// Errors produced by queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueError {
    /// The submission queue is full; the host must wait for completions.
    SubmissionQueueFull,
    /// The completion queue is full; the device must wait for the host to reap.
    CompletionQueueFull,
    /// A completion was posted for a command identifier that is not outstanding.
    UnknownCommand(u16),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::SubmissionQueueFull => write!(f, "submission queue full"),
            QueueError::CompletionQueueFull => write!(f, "completion queue full"),
            QueueError::UnknownCommand(cid) => write!(f, "unknown command identifier {cid}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEntry {
    /// Identifier of the completed command.
    pub cid: u16,
    /// Completion status.
    pub status: NvmeStatus,
    /// Submission-queue head pointer at completion time, used by the host to
    /// learn how far the device has consumed the SQ.
    pub sq_head: u16,
}

/// A FIFO submission queue with head/tail pointers and a tail doorbell.
///
/// `tail` advances on submission (host side), `head` advances when the device
/// fetches a command. The *doorbell* records the last tail value the host has
/// rung; entries between the doorbell and the tail are invisible to the
/// device, which is exactly the window the HAMS power-failure recovery logic
/// inspects (§IV-B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmissionQueue {
    capacity: usize,
    entries: VecDeque<NvmeCommand>,
    next_cid: u16,
    head: u16,
    tail: u16,
    doorbell: u16,
}

impl SubmissionQueue {
    /// Creates an empty submission queue with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the NVMe minimum of 2 entries or exceeds
    /// the maximum of 65 536.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!((2..=65_536).contains(&capacity), "invalid SQ capacity");
        SubmissionQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            next_cid: 0,
            head: 0,
            tail: 0,
            doorbell: 0,
        }
    }

    /// Queue capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of commands currently waiting to be fetched by the device.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no commands are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the queue cannot accept another command.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current head pointer (device consumption point).
    #[must_use]
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Current tail pointer (host production point).
    #[must_use]
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Last tail value rung through the doorbell.
    #[must_use]
    pub fn doorbell(&self) -> u16 {
        self.doorbell
    }

    /// Enqueues a command, assigning it a command identifier, and returns that
    /// identifier. The doorbell is *not* rung; call [`ring_doorbell`].
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionQueueFull`] when the ring is full.
    ///
    /// [`ring_doorbell`]: SubmissionQueue::ring_doorbell
    pub fn push(&mut self, mut cmd: NvmeCommand) -> Result<u16, QueueError> {
        if self.is_full() {
            return Err(QueueError::SubmissionQueueFull);
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        cmd.cid = cid;
        self.entries.push_back(cmd);
        self.tail = self.tail.wrapping_add(1) % self.capacity as u16;
        Ok(cid)
    }

    /// Rings the tail doorbell, making every pushed entry visible to the device.
    pub fn ring_doorbell(&mut self) {
        self.doorbell = self.tail;
    }

    /// Device side: fetches the oldest visible command, advancing the head.
    /// Returns `None` when no doorbell-visible command is pending.
    pub fn fetch(&mut self) -> Option<NvmeCommand> {
        if self.head == self.doorbell {
            return None;
        }
        let cmd = self.entries.pop_front()?;
        self.head = self.head.wrapping_add(1) % self.capacity as u16;
        Some(cmd)
    }

    /// Commands pushed but not yet fetched, in submission order. Used by the
    /// HAMS recovery scan, which re-reads the SQ ring out of the pinned
    /// NVDIMM region after a power failure.
    #[must_use]
    pub fn pending(&self) -> Vec<NvmeCommand> {
        self.entries.iter().cloned().collect()
    }

    /// Returns `true` if head, tail and doorbell all coincide — the paper's
    /// consistency condition for "no requests were in flight at power-off".
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.head == self.tail && self.tail == self.doorbell && self.entries.is_empty()
    }
}

/// A FIFO completion queue with head/tail pointers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletionQueue {
    capacity: usize,
    entries: VecDeque<CompletionEntry>,
    head: u16,
    tail: u16,
}

impl CompletionQueue {
    /// Creates an empty completion queue with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the NVMe minimum of 2 entries or exceeds
    /// the maximum of 65 536.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!((2..=65_536).contains(&capacity), "invalid CQ capacity");
        CompletionQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            head: 0,
            tail: 0,
        }
    }

    /// Number of completions waiting to be reaped by the host.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no completions are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current head pointer (host consumption point).
    #[must_use]
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Current tail pointer (device production point).
    #[must_use]
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Device side: posts a completion entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::CompletionQueueFull`] when the ring is full.
    pub fn post(&mut self, entry: CompletionEntry) -> Result<(), QueueError> {
        if self.entries.len() >= self.capacity {
            return Err(QueueError::CompletionQueueFull);
        }
        self.entries.push_back(entry);
        self.tail = self.tail.wrapping_add(1) % self.capacity as u16;
        Ok(())
    }

    /// Host side: reaps the oldest completion, advancing the head.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        let e = self.entries.pop_front()?;
        self.head = self.head.wrapping_add(1) % self.capacity as u16;
        Some(e)
    }

    /// Returns `true` if head and tail coincide with an empty ring.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.head == self.tail && self.entries.is_empty()
    }
}

/// A paired submission/completion queue with outstanding-command tracking —
/// the unit of NVMe I/O the HAMS NVMe engine manages.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuePair {
    /// Queue identifier (0 is the admin queue in real NVMe; the model uses
    /// a single I/O queue pair with identifier 0 by convention).
    pub id: u16,
    sq: SubmissionQueue,
    cq: CompletionQueue,
    outstanding: Vec<NvmeCommand>,
}

impl QueuePair {
    /// Creates a queue pair whose SQ and CQ both hold `depth` entries.
    #[must_use]
    pub fn new(id: u16, depth: usize) -> Self {
        QueuePair {
            id,
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
            outstanding: Vec::new(),
        }
    }

    /// Read access to the submission queue.
    #[must_use]
    pub fn submission(&self) -> &SubmissionQueue {
        &self.sq
    }

    /// Read access to the completion queue.
    #[must_use]
    pub fn completion(&self) -> &CompletionQueue {
        &self.cq
    }

    /// Number of commands fetched by the device but not yet completed.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Host side: submits a command and rings the doorbell.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionQueueFull`] when the SQ is full.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<u16, QueueError> {
        let cid = self.sq.push(cmd)?;
        self.sq.ring_doorbell();
        Ok(cid)
    }

    /// Device side: fetches the next doorbell-visible command and marks it
    /// outstanding.
    pub fn fetch_next(&mut self) -> Option<NvmeCommand> {
        let cmd = self.sq.fetch()?;
        self.outstanding.push(cmd.clone());
        Some(cmd)
    }

    /// Device side: completes an outstanding command, posting a CQ entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::UnknownCommand`] if `cid` is not outstanding, or
    /// [`QueueError::CompletionQueueFull`] if the CQ has no room.
    pub fn complete(&mut self, cid: u16, status: NvmeStatus) -> Result<(), QueueError> {
        let idx = self
            .outstanding
            .iter()
            .position(|c| c.cid == cid)
            .ok_or(QueueError::UnknownCommand(cid))?;
        self.cq.post(CompletionEntry {
            cid,
            status,
            sq_head: self.sq.head(),
        })?;
        self.outstanding.remove(idx);
        Ok(())
    }

    /// Host side: reaps the next completion.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        self.cq.reap()
    }

    /// Commands that were submitted but have neither been fetched nor
    /// completed, plus those fetched but still outstanding: everything a power
    /// failure would leave unfinished. This is the set the HAMS recovery
    /// procedure re-issues.
    #[must_use]
    pub fn unfinished(&self) -> Vec<NvmeCommand> {
        let mut all = self.outstanding.clone();
        all.extend(self.sq.pending());
        all
    }

    /// Returns `true` when no command is pending, outstanding or unreaped —
    /// the "tail pointers refer to the same offset" condition of §IV-B.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.sq.is_quiescent() && self.cq.is_quiescent() && self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prp::PrpList;

    fn cmd(lba: u64) -> NvmeCommand {
        NvmeCommand::read(1, lba, 4096, PrpList::single(0x1000))
    }

    #[test]
    fn submission_requires_doorbell() {
        let mut sq = SubmissionQueue::new(8);
        sq.push(cmd(1)).unwrap();
        assert_eq!(sq.fetch(), None, "entry must be invisible before doorbell");
        sq.ring_doorbell();
        assert!(sq.fetch().is_some());
        assert!(sq.fetch().is_none());
    }

    #[test]
    fn submission_queue_fills_and_reports() {
        let mut sq = SubmissionQueue::new(2);
        sq.push(cmd(1)).unwrap();
        sq.push(cmd(2)).unwrap();
        assert!(sq.is_full());
        assert_eq!(sq.push(cmd(3)), Err(QueueError::SubmissionQueueFull));
        assert_eq!(sq.len(), 2);
        assert_eq!(sq.pending().len(), 2);
        assert!(!sq.is_quiescent());
    }

    #[test]
    fn cids_are_unique_and_sequential() {
        let mut sq = SubmissionQueue::new(16);
        let a = sq.push(cmd(1)).unwrap();
        let b = sq.push(cmd(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(b, a.wrapping_add(1));
    }

    #[test]
    fn completion_queue_round_trip() {
        let mut cq = CompletionQueue::new(2);
        assert!(cq.is_quiescent());
        cq.post(CompletionEntry {
            cid: 7,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        assert_eq!(cq.len(), 1);
        let e = cq.reap().unwrap();
        assert_eq!(e.cid, 7);
        assert!(e.status.is_success());
        assert!(cq.reap().is_none());
    }

    #[test]
    fn completion_queue_full() {
        let mut cq = CompletionQueue::new(2);
        cq.post(CompletionEntry {
            cid: 7,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        cq.post(CompletionEntry {
            cid: 0,
            status: NvmeStatus::Success,
            sq_head: 0,
        })
        .unwrap();
        let err = cq
            .post(CompletionEntry {
                cid: 1,
                status: NvmeStatus::Success,
                sq_head: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueueError::CompletionQueueFull);
    }

    #[test]
    fn queue_pair_full_lifecycle() {
        let mut qp = QueuePair::new(0, 8);
        assert!(qp.is_quiescent());
        let cid = qp.submit(cmd(5)).unwrap();
        assert!(!qp.is_quiescent());
        let fetched = qp.fetch_next().unwrap();
        assert_eq!(fetched.cid, cid);
        assert_eq!(qp.outstanding(), 1);
        qp.complete(cid, NvmeStatus::Success).unwrap();
        assert_eq!(qp.outstanding(), 0);
        let cqe = qp.reap().unwrap();
        assert_eq!(cqe.cid, cid);
        assert!(qp.is_quiescent());
    }

    #[test]
    fn completing_unknown_cid_is_an_error() {
        let mut qp = QueuePair::new(0, 4);
        assert_eq!(
            qp.complete(99, NvmeStatus::Success),
            Err(QueueError::UnknownCommand(99))
        );
    }

    #[test]
    fn unfinished_reports_both_pending_and_outstanding() {
        let mut qp = QueuePair::new(0, 8);
        qp.submit(cmd(1)).unwrap();
        qp.submit(cmd(2)).unwrap();
        qp.submit(cmd(3)).unwrap();
        let _ = qp.fetch_next().unwrap(); // one outstanding, two pending
        let unfinished = qp.unfinished();
        assert_eq!(unfinished.len(), 3);
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            QueueError::SubmissionQueueFull.to_string(),
            "submission queue full"
        );
        assert!(QueueError::UnknownCommand(3).to_string().contains('3'));
    }

    #[test]
    #[should_panic(expected = "invalid SQ capacity")]
    fn zero_capacity_sq_panics() {
        let _ = SubmissionQueue::new(0);
    }
}
