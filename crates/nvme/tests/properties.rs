//! Property-based tests for the NVMe queue and PRP machinery, including the
//! multi-queue [`QueueSet`] and the MSI coalescing model.

use hams_nvme::{
    CommandId, MsiCoalescer, MsiCoalescing, NvmeCommand, NvmeStatus, PrpList, QueuePair, QueueSet,
};
use hams_sim::Nanos;
use proptest::prelude::*;

proptest! {
    /// A PRP list built for any transfer covers every byte of the transfer:
    /// the number of entries equals the number of pages the range straddles.
    #[test]
    fn prp_lists_cover_the_transfer(base in 0u64..1_000_000, len in 0u64..1_000_000) {
        let page = 4096u64;
        let list = PrpList::for_transfer(base, len, page);
        if len == 0 {
            prop_assert!(list.is_empty());
        } else {
            let first = base / page;
            let last = (base + len - 1) / page;
            prop_assert_eq!(list.len() as u64, last - first + 1);
            prop_assert_eq!(list.first().unwrap().address(), first * page);
        }
    }

    /// Retargeting preserves pairwise offsets between PRP entries.
    #[test]
    fn retarget_preserves_offsets(base in 0u64..1_000_000, len in 1u64..100_000, new_base in 0u64..1_000_000) {
        let mut list = PrpList::for_transfer(base, len, 4096);
        let offsets: Vec<u64> = list.iter().map(|e| e.address().wrapping_sub(base / 4096 * 4096)).collect();
        list.retarget(new_base);
        let new_offsets: Vec<u64> = list
            .iter()
            .map(|e| e.address().wrapping_sub(new_base))
            .collect();
        prop_assert_eq!(offsets, new_offsets);
    }

    /// Any interleaving of submit / fetch / complete keeps the queue-pair
    /// invariants: completions only for fetched commands, and the pair is
    /// quiescent exactly when everything submitted has been reaped.
    #[test]
    fn queue_pair_invariants_hold(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let mut qp = QueuePair::new(0, 256);
        let mut submitted = 0usize;
        let mut fetched: Vec<u16> = Vec::new();
        let mut completed = 0usize;
        let mut reaped = 0usize;
        for op in ops {
            match op {
                0 => {
                    if qp
                        .submit(NvmeCommand::read(1, submitted as u64, 4096, PrpList::single(0)))
                        .is_ok()
                    {
                        submitted += 1;
                    }
                }
                1 => {
                    if let Some(cmd) = qp.fetch_next() {
                        fetched.push(cmd.cid);
                    }
                }
                _ => {
                    if let Some(cid) = fetched.pop() {
                        prop_assert!(qp.complete(cid, NvmeStatus::Success).is_ok());
                        completed += 1;
                    } else {
                        prop_assert!(qp.reap().is_none() || reaped < completed);
                    }
                    if qp.reap().is_some() {
                        reaped += 1;
                    }
                }
            }
            prop_assert!(qp.outstanding() <= submitted);
            prop_assert!(completed <= submitted);
        }
        // Drain everything and verify quiescence is reachable.
        while let Some(cmd) = qp.fetch_next() {
            fetched.push(cmd.cid);
        }
        for cid in fetched.drain(..) {
            let _ = qp.complete(cid, NvmeStatus::Success);
        }
        while qp.reap().is_some() {}
        prop_assert!(qp.is_quiescent());
    }

    /// Multi-queue invariants under arbitrary interleavings of submit /
    /// fetch / complete across a [`QueueSet`]: no submission is ever lost
    /// (everything submitted is pending, outstanding or completed),
    /// completions never exceed submissions, and every tail doorbell is
    /// monotonically non-decreasing (rings are deep enough that pointers
    /// never wrap within one case).
    #[test]
    fn queue_set_never_loses_submissions(
        ops in proptest::collection::vec((0u8..3, 0u64..4), 1..180),
    ) {
        let num_queues = 4u16;
        let mut set = QueueSet::new(num_queues, 256);
        let mut submitted = 0usize;
        let mut completed = 0usize;
        let mut fetched: Vec<CommandId> = Vec::new();
        let mut last_doorbell = vec![0u16; num_queues as usize];
        for (op, key) in ops {
            let queue = set.queue_for(key);
            match op {
                0 => {
                    if set
                        .submit_on(queue, NvmeCommand::read(1, key, 4096, PrpList::single(0)))
                        .is_ok()
                    {
                        submitted += 1;
                    }
                }
                1 => {
                    if let Some(cmd) = set.fetch_next(queue) {
                        fetched.push(CommandId::new(queue, cmd.cid));
                    }
                }
                _ => {
                    if let Some(id) = fetched.pop() {
                        prop_assert!(set.complete(id, NvmeStatus::Success).is_ok());
                        prop_assert!(set.reap(id.queue).is_some());
                        completed += 1;
                    }
                }
            }
            // Doorbell monotonicity per queue.
            for q in 0..num_queues {
                let bell = set.queue(q).submission().doorbell();
                prop_assert!(
                    bell >= last_doorbell[q as usize],
                    "doorbell on queue {q} went backwards"
                );
                last_doorbell[q as usize] = bell;
            }
            // Conservation: pending + outstanding + completed == submitted.
            let pending: usize = (0..num_queues)
                .map(|q| set.queue(q).submission().len())
                .sum();
            prop_assert_eq!(pending + set.total_outstanding() + completed, submitted);
            prop_assert!(completed <= submitted);
        }
        // Drain everything; the set must reach quiescence.
        for q in 0..num_queues {
            while let Some(cmd) = set.fetch_next(q) {
                fetched.push(CommandId::new(q, cmd.cid));
            }
        }
        for id in fetched {
            let _ = set.complete(id, NvmeStatus::Success);
            let _ = set.reap(id.queue);
        }
        prop_assert!(set.is_quiescent());
    }

    /// MSI coalescing invariants for arbitrary completion bursts and
    /// policies: every interrupt fires at or after its completion, within
    /// the coalescing window (`threshold` reached or `timeout` expired — so
    /// never more than `timeout` after the completion), delivery times are
    /// monotone, and no more interrupts are posted than completions.
    #[test]
    fn msi_fires_within_threshold_plus_timeout(
        gaps in proptest::collection::vec(0u64..5_000, 1..48),
        threshold in 1u32..10,
        timeout_ns in 0u64..20_000,
    ) {
        let timeout = Nanos::from_nanos(timeout_ns);
        let mut coalescer = MsiCoalescer::new(MsiCoalescing::batched(threshold, timeout));
        let mut completions = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in gaps {
            t += g;
            completions.push(Nanos::from_nanos(t));
        }
        let delivered = coalescer.deliver(&completions);
        prop_assert_eq!(delivered.len(), completions.len());
        for (c, d) in completions.iter().zip(&delivered) {
            prop_assert!(*d >= *c, "interrupt delivered before its completion");
            prop_assert!(
                *d - *c <= timeout,
                "completion waited {} which exceeds the {} timer",
                *d - *c,
                timeout
            );
        }
        for pair in delivered.windows(2) {
            prop_assert!(pair[0] <= pair[1], "delivery order inverted");
        }
        let stats = coalescer.stats();
        prop_assert_eq!(stats.completions, completions.len() as u64);
        prop_assert!(stats.interrupts >= 1);
        prop_assert!(stats.interrupts <= stats.completions);
        // Each interrupt covers at most `threshold` completions.
        let min_interrupts =
            (completions.len() as u64).div_ceil(u64::from(threshold).min(completions.len() as u64));
        prop_assert!(stats.interrupts >= min_interrupts);
    }

    /// Unfinished commands reported for recovery are exactly those submitted
    /// but not completed.
    #[test]
    fn unfinished_matches_submitted_minus_completed(total in 1usize..64, to_complete in 0usize..64) {
        let mut qp = QueuePair::new(0, 128);
        let mut cids = Vec::new();
        for i in 0..total {
            let cid = qp
                .submit(NvmeCommand::write(1, i as u64, 4096, PrpList::single(0)))
                .unwrap();
            cids.push(cid);
        }
        for _ in 0..total {
            let _ = qp.fetch_next();
        }
        let completing = to_complete.min(total);
        for cid in cids.iter().take(completing) {
            qp.complete(*cid, NvmeStatus::Success).unwrap();
        }
        prop_assert_eq!(qp.unfinished().len(), total - completing);
    }
}
