//! Property-based tests for the NVMe queue and PRP machinery.

use hams_nvme::{NvmeCommand, NvmeStatus, PrpList, QueuePair};
use proptest::prelude::*;

proptest! {
    /// A PRP list built for any transfer covers every byte of the transfer:
    /// the number of entries equals the number of pages the range straddles.
    #[test]
    fn prp_lists_cover_the_transfer(base in 0u64..1_000_000, len in 0u64..1_000_000) {
        let page = 4096u64;
        let list = PrpList::for_transfer(base, len, page);
        if len == 0 {
            prop_assert!(list.is_empty());
        } else {
            let first = base / page;
            let last = (base + len - 1) / page;
            prop_assert_eq!(list.len() as u64, last - first + 1);
            prop_assert_eq!(list.first().unwrap().address(), first * page);
        }
    }

    /// Retargeting preserves pairwise offsets between PRP entries.
    #[test]
    fn retarget_preserves_offsets(base in 0u64..1_000_000, len in 1u64..100_000, new_base in 0u64..1_000_000) {
        let mut list = PrpList::for_transfer(base, len, 4096);
        let offsets: Vec<u64> = list.iter().map(|e| e.address().wrapping_sub(base / 4096 * 4096)).collect();
        list.retarget(new_base);
        let new_offsets: Vec<u64> = list
            .iter()
            .map(|e| e.address().wrapping_sub(new_base))
            .collect();
        prop_assert_eq!(offsets, new_offsets);
    }

    /// Any interleaving of submit / fetch / complete keeps the queue-pair
    /// invariants: completions only for fetched commands, and the pair is
    /// quiescent exactly when everything submitted has been reaped.
    #[test]
    fn queue_pair_invariants_hold(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let mut qp = QueuePair::new(0, 256);
        let mut submitted = 0usize;
        let mut fetched: Vec<u16> = Vec::new();
        let mut completed = 0usize;
        let mut reaped = 0usize;
        for op in ops {
            match op {
                0 => {
                    if qp
                        .submit(NvmeCommand::read(1, submitted as u64, 4096, PrpList::single(0)))
                        .is_ok()
                    {
                        submitted += 1;
                    }
                }
                1 => {
                    if let Some(cmd) = qp.fetch_next() {
                        fetched.push(cmd.cid);
                    }
                }
                _ => {
                    if let Some(cid) = fetched.pop() {
                        prop_assert!(qp.complete(cid, NvmeStatus::Success).is_ok());
                        completed += 1;
                    } else {
                        prop_assert!(qp.reap().is_none() || reaped < completed);
                    }
                    if qp.reap().is_some() {
                        reaped += 1;
                    }
                }
            }
            prop_assert!(qp.outstanding() <= submitted);
            prop_assert!(completed <= submitted);
        }
        // Drain everything and verify quiescence is reachable.
        while let Some(cmd) = qp.fetch_next() {
            fetched.push(cmd.cid);
        }
        for cid in fetched.drain(..) {
            let _ = qp.complete(cid, NvmeStatus::Success);
        }
        while qp.reap().is_some() {}
        prop_assert!(qp.is_quiescent());
    }

    /// Unfinished commands reported for recovery are exactly those submitted
    /// but not completed.
    #[test]
    fn unfinished_matches_submitted_minus_completed(total in 1usize..64, to_complete in 0usize..64) {
        let mut qp = QueuePair::new(0, 128);
        let mut cids = Vec::new();
        for i in 0..total {
            let cid = qp
                .submit(NvmeCommand::write(1, i as u64, 4096, PrpList::single(0)))
                .unwrap();
            cids.push(cid);
        }
        for _ in 0..total {
            let _ = qp.fetch_next();
        }
        let completing = to_complete.min(total);
        for cid in cids.iter().take(completing) {
            qp.complete(*cid, NvmeStatus::Success).unwrap();
        }
        prop_assert_eq!(qp.unfinished().len(), total - completing);
    }
}
