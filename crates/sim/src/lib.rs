//! Transaction-level discrete-event simulation core shared by every HAMS crate.
//!
//! The HAMS reproduction models the memory/storage hierarchy at *transaction*
//! granularity: each memory access or I/O command is routed through component
//! models that consume simulated time from shared [`Resource`] schedulers
//! (DDR4 channels, PCIe links, flash channels/dies/planes, CPU cores). This
//! crate provides the primitives those models are built from:
//!
//! * [`Nanos`] — the simulation time unit (nanoseconds, saturating arithmetic),
//! * [`SimClock`] — a monotonically advancing clock,
//! * [`EventQueue`] — an ordered future-event list for out-of-order completion,
//! * [`Resource`] / [`MultiResource`] — FCFS busy-until schedulers that model
//!   contention on buses, channels and dies,
//! * [`stats`] — counters, running statistics, histograms and named latency
//!   breakdowns used to produce every figure in the paper,
//! * [`rng`] — seeded RNG construction so every experiment is reproducible.
//!
//! # Example
//!
//! ```
//! use hams_sim::{Nanos, Resource, SimClock};
//!
//! let mut clock = SimClock::new();
//! let mut channel = Resource::new("ddr4-ch0");
//! // Two back-to-back 64-byte bursts contend for the same channel.
//! let first = channel.acquire(clock.now(), Nanos::from_nanos(5));
//! let second = channel.acquire(clock.now(), Nanos::from_nanos(5));
//! assert_eq!(first.end, Nanos::from_nanos(5));
//! assert_eq!(second.start, Nanos::from_nanos(5));
//! clock.advance_to(second.end);
//! assert_eq!(clock.now(), Nanos::from_nanos(10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod hash;
pub mod intern;
pub mod par;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{CompletionSource, EventQueue, ScheduledEvent};
pub use hash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use intern::ComponentId;
pub use par::{cell_workers, parallel_map, scoped_partition_map};
pub use resource::{Grant, MultiResource, Resource};
pub use stats::{
    Counter, Histogram, HistogramSummary, LatencyBreakdown, LatencyVector, RunningStats,
};
pub use time::{Nanos, SimClock};
