//! Deterministic fork–join parallelism for embarrassingly parallel
//! experiment grids.
//!
//! The experiment runner executes many independent (platform, workload)
//! simulations; each one is seeded and self-contained, so they can run on
//! different OS threads without any effect on the simulated results. This
//! module provides the one primitive that needs: [`parallel_map`], an
//! order-preserving map over a slice using scoped threads. It exists in-tree
//! because the build environment has no crates-registry access (`rayon` would
//! otherwise be the natural choice); the API is deliberately tiny so a later
//! swap to `rayon` is a one-line change at each call site.
//!
//! # Determinism
//!
//! `parallel_map(items, f)` returns exactly `items.iter().map(f).collect()`
//! — same values, same order — as long as `f` is a pure function of its
//! argument. Work is claimed from an atomic counter, so thread scheduling
//! affects only which thread computes which element, never the result.
//!
//! # Example
//!
//! ```
//! let squares = hams_sim::par::parallel_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Upper bound on worker threads, honouring the `HAMS_THREADS` environment
/// variable (0 or unset = one worker per available core).
#[must_use]
pub fn max_workers() -> usize {
    let from_env = std::env::var("HAMS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if from_env > 0 {
        return from_env;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads one simulation cell may use for intra-cell
/// (per-bank) work, honouring the `HAMS_CELL_THREADS` environment variable.
///
/// Unset or `0` means **1**: intra-cell parallelism is opt-in, unlike the
/// cross-cell grid where every core is fair game by default. A grid of
/// cells already saturates the machine through [`parallel_map`]; cell
/// threads multiply on top of grid threads, so the conservative default
/// keeps `grid × cell` from oversubscribing unless the user asks for it.
#[must_use]
pub fn cell_workers() -> usize {
    std::env::var("HAMS_CELL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Runs `f` once per partition on a pool of scoped threads, giving each
/// invocation exclusive mutable access to its partition, and returns the
/// per-partition results in partition order.
///
/// This is the intra-cell sibling of [`parallel_map`]: where `parallel_map`
/// spreads independent *cells* (whole simulations) across the machine, this
/// spreads the independent *banks inside one cell* (disjoint `&mut`
/// partitions of its state) across at most `workers` threads — `0` resolves
/// to the [`cell_workers`] / `HAMS_CELL_THREADS` default. With one effective
/// worker the map runs inline on the caller's thread, spawning nothing.
///
/// Partitions are assigned to workers in contiguous runs (no work stealing):
/// results are deterministic for any pure-per-partition `f` regardless of
/// scheduling, and panics in `f` propagate to the caller with their own
/// payload.
pub fn scoped_partition_map<T, R, F>(parts: &mut [T], workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = parts.len();
    let workers = if workers == 0 {
        cell_workers()
    } else {
        workers
    }
    .min(n);
    if workers <= 1 {
        return parts.iter_mut().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, run)| {
                let f = &f;
                scope.spawn(move || {
                    run.iter_mut()
                        .enumerate()
                        .map(|(j, p)| f(ci * chunk + j, p))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(results) => out.extend(results),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Maps `f` over `items` on a pool of scoped threads, preserving input
/// order in the output.
///
/// Equivalent to `items.iter().map(f).collect()` for any `f` that is a pure
/// function of its argument (see the module docs on determinism). Panics in
/// `f` propagate to the caller once all workers have stopped.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = max_workers().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let out: Vec<Option<R>> = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out
    });
    // A hole is only possible when a worker panicked mid-item; the scope has
    // already re-raised that panic (with the worker's own message) before
    // this point, so the expect never fires.
    out.into_iter()
        .map(|slot| slot.expect("worker delivered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_value_and_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        let parallel = parallel_map(&items, |x| x.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn repeated_runs_are_identical() {
        let items: Vec<u64> = (0..64).collect();
        let a = parallel_map(&items, |x| x * x);
        let b = parallel_map(&items, |x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_own_message() {
        let items: Vec<u64> = (0..16).collect();
        let _ = parallel_map(&items, |x| {
            assert!(*x != 9, "boom");
            *x
        });
    }

    #[test]
    fn max_workers_is_positive() {
        assert!(max_workers() >= 1);
    }

    #[test]
    fn partition_map_matches_serial_at_every_worker_count() {
        let reference: Vec<u64> = (0..37u64).map(|i| i * i + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let mut parts: Vec<u64> = (0..37).collect();
            let out = scoped_partition_map(&mut parts, workers, |i, p| {
                *p = p.wrapping_mul(*p);
                *p + i as u64 - (i as u64 * i as u64) + (i as u64 * i as u64) - i as u64 + 1
            });
            assert_eq!(out, reference, "workers={workers}");
            let squares: Vec<u64> = (0..37u64).map(|i| i * i).collect();
            assert_eq!(parts, squares, "mutations must land, workers={workers}");
        }
    }

    #[test]
    fn partition_map_empty_singleton_and_more_workers_than_parts() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(scoped_partition_map(&mut empty, 8, |_, p| *p).is_empty());
        let mut one = [41u32];
        assert_eq!(scoped_partition_map(&mut one, 8, |_, p| *p + 1), vec![42]);
    }

    #[test]
    fn partition_map_indices_are_partition_order() {
        let mut parts = [0usize; 23];
        let idx = scoped_partition_map(&mut parts, 4, |i, _| i);
        assert_eq!(idx, (0..23).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bank boom")]
    fn partition_map_panics_propagate_with_their_own_message() {
        let mut parts: Vec<u64> = (0..16).collect();
        let _ = scoped_partition_map(&mut parts, 4, |_, p| {
            assert!(*p != 11, "bank boom");
            *p
        });
    }

    #[test]
    fn cell_workers_defaults_to_one() {
        // The test environment does not set HAMS_CELL_THREADS for unit
        // tests; either way the resolved count must be positive.
        assert!(cell_workers() >= 1);
    }
}
