//! FCFS busy-until resource schedulers.
//!
//! A [`Resource`] models a single serially-occupied hardware unit — a DDR4
//! channel, a PCIe link, a flash die, a plane register — while a
//! [`MultiResource`] models a pool of identical units (e.g. the channels of an
//! SSD) with least-loaded dispatch. Transactions "acquire" a resource for a
//! duration; the scheduler returns the [`Grant`] describing when the
//! transaction actually starts and finishes, which is how queueing delay and
//! contention enter the latency model.

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// The outcome of acquiring a resource: when service started and ended, and
/// how long the transaction waited in the queue before service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// Time at which the resource began servicing the request.
    pub start: Nanos,
    /// Time at which the resource finished servicing the request.
    pub end: Nanos,
    /// Queueing delay experienced before service (`start - request_time`).
    pub wait: Nanos,
}

impl Grant {
    /// Total latency seen by the requester: queueing delay plus service time.
    #[must_use]
    pub fn latency(&self) -> Nanos {
        self.wait + (self.end - self.start)
    }
}

/// A single FCFS-served hardware unit with a "busy until" horizon.
///
/// # Example
///
/// ```
/// use hams_sim::{Nanos, Resource};
///
/// let mut die = Resource::new("znand-die");
/// let a = die.acquire(Nanos::ZERO, Nanos::from_micros(3));
/// let b = die.acquire(Nanos::ZERO, Nanos::from_micros(3));
/// assert_eq!(a.wait, Nanos::ZERO);
/// assert_eq!(b.wait, Nanos::from_micros(3)); // queued behind the first read
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    busy_until: Nanos,
    busy_time: Nanos,
    grants: u64,
}

impl Resource {
    /// Creates an idle resource with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            busy_until: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            grants: 0,
        }
    }

    /// Diagnostic name given at construction.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time at which the resource next becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Total time the resource has spent busy.
    #[must_use]
    pub fn busy_time(&self) -> Nanos {
        self.busy_time
    }

    /// Number of grants issued so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Returns `true` if the resource is idle at time `now`.
    #[must_use]
    pub fn is_idle_at(&self, now: Nanos) -> bool {
        self.busy_until <= now
    }

    /// Acquires the resource at `now` for `duration`, queueing behind any
    /// earlier grant that has not yet completed.
    pub fn acquire(&mut self, now: Nanos, duration: Nanos) -> Grant {
        let start = self.busy_until.max(now);
        let end = start + duration;
        self.busy_until = end;
        self.busy_time += duration;
        self.grants += 1;
        Grant {
            start,
            end,
            wait: start - now,
        }
    }

    /// Reserves the resource until at least `until` without accounting the
    /// span as useful busy time (used for lock-register style bus holds).
    pub fn hold_until(&mut self, until: Nanos) {
        if until > self.busy_until {
            self.busy_until = until;
        }
    }

    /// Utilisation of the resource over `[0, horizon]`, in `[0, 1]`.
    /// Returns 0 for a zero horizon.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Resets the resource to idle and clears accounting.
    pub fn reset(&mut self) {
        self.busy_until = Nanos::ZERO;
        self.busy_time = Nanos::ZERO;
        self.grants = 0;
    }
}

/// A pool of identical FCFS units with least-loaded dispatch.
///
/// Used for structures whose members are interchangeable from the requester's
/// point of view, such as the channel set of an SSD when the FTL stripes
/// across channels, or the per-core hardware dispatch queues of the block
/// layer.
///
/// # Example
///
/// ```
/// use hams_sim::{MultiResource, Nanos};
///
/// let mut channels = MultiResource::new("ssd-channel", 2);
/// // Three transfers over two channels: the third queues behind the first.
/// let g1 = channels.acquire(Nanos::ZERO, Nanos::from_nanos(100));
/// let g2 = channels.acquire(Nanos::ZERO, Nanos::from_nanos(100));
/// let g3 = channels.acquire(Nanos::ZERO, Nanos::from_nanos(100));
/// assert_eq!(g1.wait, Nanos::ZERO);
/// assert_eq!(g2.wait, Nanos::ZERO);
/// assert_eq!(g3.wait, Nanos::from_nanos(100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiResource {
    units: Vec<Resource>,
}

impl MultiResource {
    /// Creates a pool of `count` identical units.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero: a pool must contain at least one unit.
    #[must_use]
    pub fn new(name: impl Into<String>, count: usize) -> Self {
        assert!(count > 0, "MultiResource must have at least one unit");
        let name = name.into();
        let units = (0..count)
            .map(|i| Resource::new(format!("{name}[{i}]")))
            .collect();
        MultiResource { units }
    }

    /// Number of units in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always `false`: construction guarantees at least one unit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Acquires the least-loaded unit at `now` for `duration`.
    pub fn acquire(&mut self, now: Nanos, duration: Nanos) -> Grant {
        let idx = self.least_loaded();
        self.units[idx].acquire(now, duration)
    }

    /// Acquires a *specific* unit (e.g. the channel selected by address
    /// striping) at `now` for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn acquire_unit(&mut self, index: usize, now: Nanos, duration: Nanos) -> Grant {
        self.units[index].acquire(now, duration)
    }

    /// Returns the index of the unit that becomes idle earliest.
    #[must_use]
    pub fn least_loaded(&self) -> usize {
        self.units
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.busy_until())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Read-only access to an individual unit.
    #[must_use]
    pub fn unit(&self, index: usize) -> Option<&Resource> {
        self.units.get(index)
    }

    /// Iterator over the units of the pool.
    pub fn iter(&self) -> std::slice::Iter<'_, Resource> {
        self.units.iter()
    }

    /// Total busy time summed across every unit.
    #[must_use]
    pub fn total_busy_time(&self) -> Nanos {
        self.units.iter().map(Resource::busy_time).sum()
    }

    /// Average utilisation across the pool over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if self.units.is_empty() {
            return 0.0;
        }
        self.units
            .iter()
            .map(|u| u.utilization(horizon))
            .sum::<f64>()
            / self.units.len() as f64
    }

    /// Resets every unit in the pool.
    pub fn reset(&mut self) {
        for u in &mut self.units {
            u.reset();
        }
    }
}

impl<'a> IntoIterator for &'a MultiResource {
    type Item = &'a Resource;
    type IntoIter = std::slice::Iter<'a, Resource>;
    fn into_iter(self) -> Self::IntoIter {
        self.units.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new("r");
        let g = r.acquire(Nanos::from_nanos(10), Nanos::from_nanos(5));
        assert_eq!(g.start, Nanos::from_nanos(10));
        assert_eq!(g.end, Nanos::from_nanos(15));
        assert_eq!(g.wait, Nanos::ZERO);
        assert_eq!(g.latency(), Nanos::from_nanos(5));
    }

    #[test]
    fn busy_resource_queues_requests() {
        let mut r = Resource::new("r");
        let _ = r.acquire(Nanos::ZERO, Nanos::from_nanos(100));
        let g = r.acquire(Nanos::from_nanos(20), Nanos::from_nanos(10));
        assert_eq!(g.start, Nanos::from_nanos(100));
        assert_eq!(g.wait, Nanos::from_nanos(80));
        assert_eq!(g.latency(), Nanos::from_nanos(90));
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut r = Resource::new("r");
        r.acquire(Nanos::ZERO, Nanos::from_nanos(10));
        r.acquire(Nanos::from_nanos(100), Nanos::from_nanos(10));
        assert_eq!(r.busy_time(), Nanos::from_nanos(20));
        assert_eq!(r.grants(), 2);
        assert!(r.is_idle_at(Nanos::from_nanos(200)));
        assert!(!r.is_idle_at(Nanos::from_nanos(105)));
    }

    #[test]
    fn hold_until_extends_horizon_without_busy_accounting() {
        let mut r = Resource::new("r");
        r.hold_until(Nanos::from_nanos(50));
        assert_eq!(r.busy_until(), Nanos::from_nanos(50));
        assert_eq!(r.busy_time(), Nanos::ZERO);
        let g = r.acquire(Nanos::ZERO, Nanos::from_nanos(5));
        assert_eq!(g.start, Nanos::from_nanos(50));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut r = Resource::new("r");
        r.acquire(Nanos::ZERO, Nanos::from_nanos(50));
        assert!((r.utilization(Nanos::from_nanos(100)) - 0.5).abs() < 1e-9);
        assert_eq!(r.utilization(Nanos::ZERO), 0.0);
        assert!(r.utilization(Nanos::from_nanos(10)) <= 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("r");
        r.acquire(Nanos::ZERO, Nanos::from_nanos(50));
        r.reset();
        assert_eq!(r.busy_until(), Nanos::ZERO);
        assert_eq!(r.busy_time(), Nanos::ZERO);
        assert_eq!(r.grants(), 0);
    }

    #[test]
    fn multi_resource_dispatches_least_loaded() {
        let mut m = MultiResource::new("ch", 2);
        let g1 = m.acquire(Nanos::ZERO, Nanos::from_nanos(100));
        let g2 = m.acquire(Nanos::ZERO, Nanos::from_nanos(50));
        let g3 = m.acquire(Nanos::ZERO, Nanos::from_nanos(10));
        assert_eq!(g1.wait, Nanos::ZERO);
        assert_eq!(g2.wait, Nanos::ZERO);
        // Third goes behind the 50ns unit (least loaded).
        assert_eq!(g3.start, Nanos::from_nanos(50));
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_busy_time(), Nanos::from_nanos(160));
    }

    #[test]
    fn multi_resource_specific_unit() {
        let mut m = MultiResource::new("ch", 4);
        let g = m.acquire_unit(3, Nanos::ZERO, Nanos::from_nanos(10));
        assert_eq!(g.end, Nanos::from_nanos(10));
        assert_eq!(m.unit(3).unwrap().grants(), 1);
        assert_eq!(m.unit(0).unwrap().grants(), 0);
        assert!(m.unit(9).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn multi_resource_rejects_zero_units() {
        let _ = MultiResource::new("ch", 0);
    }
}
