//! Simulation time: the [`Nanos`] duration/instant type and the [`SimClock`].
//!
//! All component models in the HAMS reproduction express latency in integer
//! nanoseconds. The paper's device parameters span five orders of magnitude
//! (DDR4 column access ≈ 14 ns, Z-NAND read = 3 µs, Z-NAND program = 100 µs,
//! NVDIMM backup ≈ tens of seconds), all of which are exactly representable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant in simulated time, measured in nanoseconds.
///
/// `Nanos` is used both as a point on the simulation timeline (an instant
/// since simulation start) and as a span between two points; the arithmetic
/// is identical and keeping a single type avoids a proliferation of
/// conversions in the component models.
///
/// Arithmetic saturates rather than wrapping so that pathological
/// configurations degrade gracefully instead of producing nonsense times.
///
/// # Example
///
/// ```
/// use hams_sim::Nanos;
///
/// let znand_read = Nanos::from_micros(3);
/// let znand_program = Nanos::from_micros(100);
/// assert!(znand_program > znand_read);
/// assert_eq!((znand_read + znand_program).as_nanos(), 103_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / simulation start instant.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time. Used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time value from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Creates a time value from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a time value from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Creates a time value from a floating-point microsecond count,
    /// rounding to the nearest nanosecond. Negative or non-finite inputs
    /// clamp to zero.
    #[must_use]
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((us * 1_000.0).round() as u64)
    }

    /// Creates a time value from a floating-point nanosecond count,
    /// rounding to the nearest nanosecond. Negative or non-finite inputs
    /// clamp to zero.
    #[must_use]
    pub fn from_nanos_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos(ns.round() as u64)
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed as (possibly fractional) microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed as (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed as (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; returns [`Nanos::ZERO`] if `other > self`.
    #[must_use]
    pub const fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies this duration by a floating point scale factor, rounding to
    /// the nearest nanosecond. Negative scales clamp to zero.
    #[must_use]
    pub fn scale(self, factor: f64) -> Nanos {
        Nanos::from_nanos_f64(self.0 as f64 * factor)
    }

    /// Returns `true` if this is the zero time.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    /// Integer division of a duration.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing simulation clock.
///
/// The clock never moves backwards: [`SimClock::advance_to`] with a time in
/// the past is a no-op. Component models advance the clock to the completion
/// time of the transaction they just finished.
///
/// # Example
///
/// ```
/// use hams_sim::{Nanos, SimClock};
///
/// let mut clock = SimClock::new();
/// clock.advance_by(Nanos::from_micros(3));
/// clock.advance_to(Nanos::from_nanos(10)); // in the past: ignored
/// assert_eq!(clock.now(), Nanos::from_micros(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock { now: Nanos::ZERO }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock to `t` if `t` is later than the current time.
    /// Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, t: Nanos) -> Nanos {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Advances the clock by a duration and returns the new time.
    pub fn advance_by(&mut self, d: Nanos) -> Nanos {
        self.now += d;
        self.now
    }

    /// Resets the clock to time zero.
    pub fn reset(&mut self) {
        self.now = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn float_constructors_clamp_garbage() {
        assert_eq!(Nanos::from_micros_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_nanos_f64(f64::INFINITY), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos::from_nanos(1), Nanos::MAX);
        assert_eq!(Nanos::ZERO - Nanos::from_nanos(1), Nanos::ZERO);
        assert_eq!(
            Nanos::from_nanos(10) - Nanos::from_nanos(3),
            Nanos::from_nanos(7)
        );
        assert_eq!(Nanos::from_nanos(10) * 3, Nanos::from_nanos(30));
        assert_eq!(Nanos::from_nanos(10) / 4, Nanos::from_nanos(2));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4).map(Nanos::from_nanos).sum();
        assert_eq!(total, Nanos::from_nanos(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(3).to_string(), "3.000us");
        assert_eq!(Nanos::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Nanos::from_nanos(10).scale(0.25), Nanos::from_nanos(3));
        assert_eq!(Nanos::from_nanos(10).scale(-1.0), Nanos::ZERO);
    }

    #[test]
    fn min_max_behave() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance_to(Nanos::from_nanos(100));
        c.advance_to(Nanos::from_nanos(50));
        assert_eq!(c.now(), Nanos::from_nanos(100));
        c.advance_by(Nanos::from_nanos(10));
        assert_eq!(c.now(), Nanos::from_nanos(110));
        c.reset();
        assert_eq!(c.now(), Nanos::ZERO);
    }
}
