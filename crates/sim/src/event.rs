//! An ordered future-event list.
//!
//! The flash firmware model and the HAMS NVMe engine complete work
//! out-of-order with respect to submission (the paper leans on this in its
//! eviction-hazard discussion, §V-B). [`EventQueue`] keeps pending completions
//! ordered by simulated time with FIFO tie-breaking so that components can pop
//! "the next thing that finishes" deterministically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// An event scheduled to fire at a given simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: Nanos,
    /// Monotonic sequence number used to keep FIFO order among equal times.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T: Eq> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (a max-heap) pops the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of future events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use hams_sim::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_nanos(30), "late");
/// q.schedule(Nanos::from_nanos(10), "early");
/// q.schedule(Nanos::from_nanos(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty event queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`. Returns the sequence number
    /// assigned to the event.
    pub fn schedule(&mut self, at: Nanos, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop()
    }

    /// Removes and returns the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<ScheduledEvent<T>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains every pending event in firing order.
    pub fn drain_ordered(&mut self) -> Vec<ScheduledEvent<T>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e);
        }
        out
    }

    /// Removes all pending events without returning them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A time-ordered source of completion events feeding an interrupt model.
///
/// Device models (the flash firmware, the HAMS NVMe engine) schedule a
/// completion when they accept work; the consumer drains everything due at
/// the current simulated time in firing order. This is a thin, purpose-named
/// wrapper over [`EventQueue`] that exists so multi-queue completion streams
/// retire in one deterministic global order (time, then schedule order)
/// rather than per-queue or hash-map order.
///
/// # Example
///
/// ```
/// use hams_sim::{CompletionSource, Nanos};
///
/// let mut source = CompletionSource::new();
/// source.schedule(Nanos::from_micros(5), "fill-a");
/// source.schedule(Nanos::from_micros(2), "fill-b");
/// let due = source.drain_due(Nanos::from_micros(3));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].payload, "fill-b");
/// assert_eq!(source.next_at(), Some(Nanos::from_micros(5)));
/// ```
#[derive(Debug, Clone)]
pub struct CompletionSource<T: Eq> {
    events: EventQueue<T>,
}

impl<T: Eq> Default for CompletionSource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> CompletionSource<T> {
    /// Creates an empty source.
    #[must_use]
    pub fn new() -> Self {
        CompletionSource {
            events: EventQueue::new(),
        }
    }

    /// Schedules a completion to fire at `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        self.events.schedule(at, payload);
    }

    /// Removes and returns every completion due at or before `now`, in
    /// firing order with FIFO tie-breaking.
    pub fn drain_due(&mut self, now: Nanos) -> Vec<ScheduledEvent<T>> {
        let mut due = Vec::new();
        while let Some(e) = self.events.pop_due(now) {
            due.push(e);
        }
        due
    }

    /// Removes and returns the earliest completion if it fires at or before
    /// `now` — the allocation-free way to drain: callers loop until `None`
    /// instead of collecting a [`Self::drain_due`] vector. The first call
    /// costs one heap peek when nothing is due.
    pub fn pop_due(&mut self, now: Nanos) -> Option<ScheduledEvent<T>> {
        self.events.pop_due(now)
    }

    /// The firing time of the earliest pending completion.
    #[must_use]
    pub fn next_at(&self) -> Option<Nanos> {
        self.events.peek_time()
    }

    /// Number of pending completions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no completion is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all pending completions (a power failure kills in-flight work;
    /// the journal-tag scan, not the completion stream, drives recovery).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(5), 5u32);
        q.schedule(Nanos::from_nanos(1), 1u32);
        q.schedule(Nanos::from_nanos(3), 3u32);
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(Nanos::from_nanos(42), i);
        }
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), "a");
        q.schedule(Nanos::from_nanos(20), "b");
        assert!(q.pop_due(Nanos::from_nanos(5)).is_none());
        assert_eq!(q.pop_due(Nanos::from_nanos(10)).unwrap().payload, "a");
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn completion_source_drains_in_order_and_tracks_pending() {
        let mut s = CompletionSource::new();
        assert!(s.is_empty());
        s.schedule(Nanos::from_nanos(30), 3u32);
        s.schedule(Nanos::from_nanos(10), 1u32);
        s.schedule(Nanos::from_nanos(10), 2u32);
        assert_eq!(s.len(), 3);
        let due: Vec<u32> = s
            .drain_due(Nanos::from_nanos(10))
            .into_iter()
            .map(|e| e.payload)
            .collect();
        assert_eq!(due, vec![1, 2], "equal times must stay FIFO");
        assert_eq!(s.next_at(), Some(Nanos::from_nanos(30)));
        s.clear();
        assert!(s.drain_due(Nanos::MAX).is_empty());
    }

    #[test]
    fn clear_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos::ZERO, 1u8);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
