//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default `SipHash` is DoS-resistant, which simulator bookkeeping
//! maps (command trackers, page tables) do not need: their keys are small
//! integers produced by the simulation itself, never attacker-controlled.
//! [`FastHasher`] is the classic Fx multiply-rotate hash — a handful of
//! cycles per key — which matters on the per-command maps the serving hot
//! path touches several times per simulated miss. It exists in-tree because
//! the build environment has no crates-registry access (`rustc-hash` would
//! otherwise be the natural choice).
//!
//! Determinism: the hash of a key is a pure function of its bytes (no random
//! per-process seed), so map iteration order — which simulator code must
//! never rely on anyway — is at least stable across runs of the same binary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply constant (a large prime close to the golden ratio times
/// 2^64, as used by the Firefox and rustc hashers).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A non-cryptographic multiply-rotate hasher for small simulator keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasherDefault`] over [`FastHasher`]; implements `Default`, so the
/// aliases below keep working with `serde` and `HashMap::default()`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_and_is_deterministic() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i * 7, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..500u64 {
            assert_eq!(m.remove(&(i * 7)), Some(i));
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn hashes_are_pure_functions_of_the_key() {
        use std::hash::BuildHasher;
        let build = FastBuildHasher::default();
        let hash_of = |k: &(u16, u16)| build.hash_one(k);
        assert_eq!(hash_of(&(3, 9)), hash_of(&(3, 9)));
        assert_ne!(hash_of(&(3, 9)), hash_of(&(9, 3)));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }
}
