//! Deterministic random number construction.
//!
//! Every experiment in the reproduction is seeded, so a figure regenerated
//! twice produces identical numbers. All stochastic behaviour (random access
//! patterns, hot-set selection, firmware jitter) flows through RNGs created by
//! [`seeded_rng`], never through thread-local or OS entropy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit experiment seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = hams_sim::rng::seeded_rng(42);
/// let mut b = hams_sim::rng::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child RNG from a parent seed and a component label, so that two
/// components of the same experiment never share a random stream.
///
/// The derivation is a simple FNV-1a mix of the label into the seed; it is
/// not cryptographic, only collision-resistant enough for experiment
/// bookkeeping.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut ftl = hams_sim::rng::derived_rng(7, "ftl");
/// let mut workload = hams_sim::rng::derived_rng(7, "workload");
/// // Different labels yield independent-looking streams.
/// assert_ne!(ftl.gen::<u64>(), workload.gen::<u64>());
/// ```
#[must_use]
pub fn derived_rng(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Samples an exponentially distributed duration (in nanoseconds) with the
/// given mean, clamped to at least 1 ns. Used to model firmware and queueing
/// jitter around published mean latencies.
pub fn exponential_nanos<R: Rng + ?Sized>(rng: &mut R, mean_ns: f64) -> u64 {
    if mean_ns <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let sample = -mean_ns * u.ln();
    sample.max(1.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_label_dependent() {
        let mut a = derived_rng(99, "flash");
        let mut b = derived_rng(99, "host");
        let mut a2 = derived_rng(99, "flash");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
        let mut a = derived_rng(99, "flash");
        assert_eq!(a.gen::<u64>(), a2.gen::<u64>());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let mean = 1_000.0;
        let total: u64 = (0..n).map(|_| exponential_nanos(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.1,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(exponential_nanos(&mut rng, 0.0), 0);
        assert_eq!(exponential_nanos(&mut rng, -5.0), 0);
    }
}
