//! Process-wide interning of latency-component names.
//!
//! Every latency breakdown in the simulator names its components with a
//! handful of static strings (`"nvdimm"`, `"dma"`, `"ssd"`, `"hams"`, the
//! flash-internal stages, the MMF software stages, …). The seed code keyed
//! its accumulators by `String`, which put a heap allocation and a tree
//! lookup on every `add` of the serving hot path. [`ComponentId`] replaces
//! the string key with a small dense index into a process-wide intern table:
//! the well-known names are pre-interned at fixed indices (exposed as
//! associated constants such as [`ComponentId::NVDIMM`]), so hot paths add
//! into a fixed slot with no hashing, no allocation and no string compare,
//! while arbitrary names keep working through [`ComponentId::intern`].
//!
//! The table only ever grows (an interned name is a `&'static str` for the
//! life of the process) and is expected to stay tiny — the workspace uses
//! about a dozen names; tests may add a few more.

use std::sync::RwLock;

use serde::{Deserialize, Serialize};

/// Names interned ahead of time, at indices `0..PRE_INTERNED.len()`, in
/// lexicographic order. The associated constants on [`ComponentId`] index
/// into this list and are what the hot paths use.
const PRE_INTERNED: [&str; 14] = [
    "app",
    "dma",
    "dram",
    "flash_array",
    "flash_channel",
    "flash_queue",
    "ftl",
    "hams",
    "hil",
    "io_stack",
    "mmap",
    "nvdimm",
    "os",
    "ssd",
];

/// Names interned at runtime (indices `PRE_INTERNED.len()..`). Leaked on
/// insert so lookups can hand out `&'static str` without copying; bounded by
/// the number of *distinct* names a process ever uses.
static DYNAMIC: RwLock<Vec<&'static str>> = RwLock::new(Vec::new());

/// An interned latency-component name: a dense index into the process-wide
/// component table.
///
/// # Example
///
/// ```
/// use hams_sim::ComponentId;
///
/// assert_eq!(ComponentId::NVDIMM.name(), "nvdimm");
/// assert_eq!(ComponentId::intern("nvdimm"), ComponentId::NVDIMM);
/// let custom = ComponentId::intern("my_stage");
/// assert_eq!(custom.name(), "my_stage");
/// assert_eq!(ComponentId::intern("my_stage"), custom);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(u16);

impl ComponentId {
    /// `"app"` — application compute time (execution breakdown, Fig. 17).
    pub const APP: ComponentId = ComponentId(0);
    /// `"dma"` — PCIe / DDR4 / CXL data movement (memory delay, Fig. 18).
    pub const DMA: ComponentId = ComponentId(1);
    /// `"dram"` — SSD-internal DRAM buffer time.
    pub const DRAM: ComponentId = ComponentId(2);
    /// `"flash_array"` — Z-NAND sense/program/erase time.
    pub const FLASH_ARRAY: ComponentId = ComponentId(3);
    /// `"flash_channel"` — flash-channel transfer time.
    pub const FLASH_CHANNEL: ComponentId = ComponentId(4);
    /// `"flash_queue"` — queueing for busy flash dies/channels.
    pub const FLASH_QUEUE: ComponentId = ComponentId(5);
    /// `"ftl"` — flash-translation-layer firmware time.
    pub const FTL: ComponentId = ComponentId(6);
    /// `"hams"` — HAMS controller overhead (memory delay, Fig. 18).
    pub const HAMS: ComponentId = ComponentId(7);
    /// `"hil"` — SSD host-interface-layer overhead.
    pub const HIL: ComponentId = ComponentId(8);
    /// `"io_stack"` — filesystem + blk-mq + NVMe-driver software time.
    pub const IO_STACK: ComponentId = ComponentId(9);
    /// `"mmap"` — page-fault handling + context switches (Fig. 7a).
    pub const MMAP: ComponentId = ComponentId(10);
    /// `"nvdimm"` — NVDIMM array + channel time (memory delay, Fig. 18).
    pub const NVDIMM: ComponentId = ComponentId(11);
    /// `"os"` — OS / software-stack stall time (execution breakdown).
    pub const OS: ComponentId = ComponentId(12);
    /// `"ssd"` — storage-device stall time (both breakdowns).
    pub const SSD: ComponentId = ComponentId(13);

    /// Interns `name`, returning its id (existing or freshly assigned).
    ///
    /// # Panics
    ///
    /// Panics if the process interns more than `u16::MAX` distinct names —
    /// far beyond the ~dozen the workspace defines.
    #[must_use]
    pub fn intern(name: &str) -> ComponentId {
        if let Some(id) = Self::lookup(name) {
            return id;
        }
        let mut dynamic = DYNAMIC.write().expect("component table poisoned");
        // Re-check under the write lock: another thread may have interned the
        // same name between our read and write.
        if let Some(i) = dynamic.iter().position(|&n| n == name) {
            return ComponentId((PRE_INTERNED.len() + i) as u16);
        }
        let index = PRE_INTERNED.len() + dynamic.len();
        assert!(index <= usize::from(u16::MAX), "component table overflow");
        dynamic.push(Box::leak(name.to_owned().into_boxed_str()));
        ComponentId(index as u16)
    }

    /// The id of `name` if it has been interned, without interning it.
    #[must_use]
    pub fn lookup(name: &str) -> Option<ComponentId> {
        if let Ok(i) = PRE_INTERNED.binary_search(&name) {
            return Some(ComponentId(i as u16));
        }
        let dynamic = DYNAMIC.read().expect("component table poisoned");
        dynamic
            .iter()
            .position(|&n| n == name)
            .map(|i| ComponentId((PRE_INTERNED.len() + i) as u16))
    }

    /// The interned name.
    #[must_use]
    pub fn name(self) -> &'static str {
        let i = usize::from(self.0);
        if i < PRE_INTERNED.len() {
            PRE_INTERNED[i]
        } else {
            DYNAMIC.read().expect("component table poisoned")[i - PRE_INTERNED.len()]
        }
    }

    /// The dense table index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Reconstructs an id from a table index previously obtained through
    /// [`ComponentId::index`]. Crate-internal: accumulators use it to walk
    /// their slot arrays without re-interning.
    pub(crate) fn from_index(index: usize) -> ComponentId {
        ComponentId(index as u16)
    }
}

impl From<&str> for ComponentId {
    /// Interning conversion, so accumulator APIs can accept either a
    /// pre-interned id (hot paths) or a name (edge layer) through one
    /// generic parameter.
    fn from(name: &str) -> Self {
        ComponentId::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preregistered_names_are_sorted_and_match_their_constants() {
        let mut sorted = PRE_INTERNED;
        sorted.sort_unstable();
        assert_eq!(sorted, PRE_INTERNED, "binary_search needs sorted names");
        for (i, name) in PRE_INTERNED.iter().enumerate() {
            assert_eq!(ComponentId::intern(name).index(), i);
            assert_eq!(ComponentId(i as u16).name(), *name);
        }
        assert_eq!(ComponentId::APP.name(), "app");
        assert_eq!(ComponentId::SSD.name(), "ssd");
        assert_eq!(ComponentId::HAMS, ComponentId::intern("hams"));
    }

    #[test]
    fn dynamic_names_round_trip_and_deduplicate() {
        let a = ComponentId::intern("intern_test_alpha");
        let b = ComponentId::intern("intern_test_beta");
        assert_ne!(a, b);
        assert_eq!(a.name(), "intern_test_alpha");
        assert_eq!(ComponentId::intern("intern_test_alpha"), a);
        assert_eq!(ComponentId::lookup("intern_test_beta"), Some(b));
        assert!(a.index() >= PRE_INTERNED.len());
    }

    #[test]
    fn lookup_of_unknown_names_does_not_intern() {
        assert_eq!(ComponentId::lookup("never_interned_name_xyzzy"), None);
        assert_eq!(ComponentId::lookup("never_interned_name_xyzzy"), None);
    }

    #[test]
    fn from_str_interns() {
        let id: ComponentId = "dma".into();
        assert_eq!(id, ComponentId::DMA);
    }
}
