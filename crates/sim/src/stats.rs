//! Measurement primitives used to produce every figure of the paper.
//!
//! * [`Counter`] — a named monotonically increasing event count,
//! * [`RunningStats`] — online mean/min/max over a stream of samples,
//! * [`Histogram`] — fixed-width-bucket latency histogram with percentiles,
//! * [`LatencyBreakdown`] — named time components (e.g. `"mmap"`, `"io_stack"`,
//!   `"ssd"`, `"cpu"`) that sum to a total, used for the stacked-bar figures
//!   (Fig. 7a, 17, 18, 19).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// A named monotonically increasing counter.
///
/// # Example
///
/// ```
/// use hams_sim::Counter;
///
/// let mut hits = Counter::new("nvdimm_cache_hits");
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Online mean / min / max / count over a stream of `f64` samples.
///
/// # Example
///
/// ```
/// use hams_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Adds a time sample expressed in nanoseconds.
    pub fn push_nanos(&mut self, t: Nanos) {
        self.push(t.as_nanos() as f64);
    }

    /// Number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 if no samples have been observed.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0 if fewer than two samples have been observed.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0)
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample observed.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample observed.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another statistics accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fixed-bucket-width histogram of nanosecond latencies with percentile
/// queries.
///
/// Samples above the configured range accumulate in an overflow bucket that
/// still participates in percentile queries (returning the range maximum).
///
/// # Example
///
/// ```
/// use hams_sim::{Histogram, Nanos};
///
/// let mut h = Histogram::new(Nanos::from_nanos(100), 100);
/// for i in 1..=100u64 {
///     h.record(Nanos::from_nanos(i * 100));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= Nanos::from_nanos(4900) && p50 <= Nanos::from_nanos(5200));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: Nanos,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets each `bucket_width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: Nanos, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Records a latency sample.
    pub fn record(&mut self, t: Nanos) {
        let idx = (t.as_nanos() / self.bucket_width.as_nanos()) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += u128::from(t.as_nanos());
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples that fell past the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded samples, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos((self.sum / u128::from(self.count)) as u64)
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), approximated at bucket-boundary
    /// resolution. Returns `None` when no samples have been recorded.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Nanos> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_width * (i as u64 + 1));
            }
        }
        Some(self.bucket_width * self.buckets.len() as u64)
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
    }
}

/// Named time components that sum to a total — the stacked bars of the
/// paper's breakdown figures.
///
/// Components are stored in a `BTreeMap` so iteration order (and therefore
/// printed output) is deterministic.
///
/// # Example
///
/// ```
/// use hams_sim::{LatencyBreakdown, Nanos};
///
/// let mut b = LatencyBreakdown::new();
/// b.add("os", Nanos::from_micros(15));
/// b.add("ssd", Nanos::from_micros(3));
/// b.add("app", Nanos::from_micros(12));
/// assert_eq!(b.total(), Nanos::from_micros(30));
/// assert!((b.fraction("os") - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    components: BTreeMap<String, Nanos>,
}

impl LatencyBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `t` to the component named `name`, creating it if necessary.
    pub fn add(&mut self, name: impl Into<String>, t: Nanos) {
        let entry = self.components.entry(name.into()).or_insert(Nanos::ZERO);
        *entry += t;
    }

    /// The accumulated time of component `name`, or zero if absent.
    #[must_use]
    pub fn component(&self, name: &str) -> Nanos {
        self.components.get(name).copied().unwrap_or(Nanos::ZERO)
    }

    /// The sum of all components.
    #[must_use]
    pub fn total(&self) -> Nanos {
        self.components.values().copied().sum()
    }

    /// Component `name` as a fraction of the total, in `[0, 1]`.
    /// Returns 0 when the total is zero.
    #[must_use]
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total.is_zero() {
            return 0.0;
        }
        self.component(name).as_nanos() as f64 / total.as_nanos() as f64
    }

    /// Iterates over `(component, time)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Nanos)> {
        self.components.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Component names present in the breakdown, in name order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.components.keys().map(String::as_str)
    }

    /// Returns `true` if no components have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Merges another breakdown into this one component-by-component.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        for (name, t) in other.iter() {
            self.add(name, t);
        }
    }

    /// Returns the breakdown normalised so that components sum to 1.0.
    /// Components of a zero-total breakdown normalise to 0.
    #[must_use]
    pub fn normalized(&self) -> Vec<(String, f64)> {
        self.components
            .keys()
            .map(|k| (k.clone(), self.fraction(k)))
            .collect()
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        write!(f, "total={total}")?;
        for (name, t) in self.iter() {
            write!(f, " {name}={t} ({:.1}%)", self.fraction(name) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.name(), "x");
        c.incr();
        c.add(10);
        assert_eq!(c.value(), 11);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("x");
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn running_stats_mean_and_extremes() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [4.0, 8.0, 6.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 6.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(4.0));
        assert_eq!(s.max(), Some(8.0));
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn running_stats_variance_of_constant_is_zero() {
        let mut s = RunningStats::new();
        for _ in 0..100 {
            s.push(7.5);
        }
        assert!(s.variance() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(Nanos::from_nanos(10), 1000);
        for i in 1..=1000u64 {
            h.record(Nanos::from_nanos(i * 10));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.overflow(), 1); // the 10_000ns sample lands past bucket 999
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= Nanos::from_nanos(9_800), "p99 was {p99}");
        assert!(h.mean() > Nanos::from_nanos(4_000));
        assert!(h.percentile(0.0).is_some());
    }

    #[test]
    fn histogram_empty_and_reset() {
        let mut h = Histogram::new(Nanos::from_nanos(10), 10);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), Nanos::ZERO);
        h.record(Nanos::from_nanos(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(Nanos::ZERO, 10);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = LatencyBreakdown::new();
        b.add("a", Nanos::from_nanos(10));
        b.add("b", Nanos::from_nanos(30));
        b.add("a", Nanos::from_nanos(10));
        let sum: f64 = b.normalized().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.component("a"), Nanos::from_nanos(20));
        assert_eq!(b.component("missing"), Nanos::ZERO);
        assert_eq!(b.total(), Nanos::from_nanos(50));
    }

    #[test]
    fn breakdown_merge_and_display() {
        let mut a = LatencyBreakdown::new();
        a.add("os", Nanos::from_nanos(5));
        let mut b = LatencyBreakdown::new();
        b.add("os", Nanos::from_nanos(5));
        b.add("ssd", Nanos::from_nanos(10));
        a.merge(&b);
        assert_eq!(a.component("os"), Nanos::from_nanos(10));
        assert_eq!(a.component("ssd"), Nanos::from_nanos(10));
        let shown = a.to_string();
        assert!(shown.contains("os"));
        assert!(shown.contains("ssd"));
    }

    #[test]
    fn breakdown_empty_total_is_zero() {
        let b = LatencyBreakdown::new();
        assert!(b.is_empty());
        assert_eq!(b.total(), Nanos::ZERO);
        assert_eq!(b.fraction("anything"), 0.0);
    }
}
