//! Measurement primitives used to produce every figure of the paper.
//!
//! * [`Counter`] — a named monotonically increasing event count,
//! * [`RunningStats`] — online mean/min/max over a stream of samples,
//! * [`Histogram`] — fixed-width-bucket latency histogram with percentiles,
//! * [`LatencyVector`] — named time components (e.g. `"mmap"`, `"io_stack"`,
//!   `"ssd"`, `"cpu"`) that sum to a total, used for the stacked-bar figures
//!   (Fig. 7a, 17, 18, 19). Components are slot-indexed by an interned
//!   [`ComponentId`], so the serving hot path accumulates into a fixed
//!   array with no heap traffic; [`LatencyBreakdown`] is the historical
//!   name, kept as an alias.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::ComponentId;
use crate::time::Nanos;

/// A named monotonically increasing counter.
///
/// # Example
///
/// ```
/// use hams_sim::Counter;
///
/// let mut hits = Counter::new("nvdimm_cache_hits");
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Online mean / min / max / count over a stream of `f64` samples.
///
/// # Example
///
/// ```
/// use hams_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Adds a time sample expressed in nanoseconds.
    pub fn push_nanos(&mut self, t: Nanos) {
        self.push(t.as_nanos() as f64);
    }

    /// Number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 if no samples have been observed.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0 if fewer than two samples have been observed.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0)
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample observed.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample observed.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another statistics accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fixed-bucket-width histogram of nanosecond latencies with percentile
/// queries.
///
/// Samples above the configured range accumulate in an overflow bucket that
/// still participates in percentile queries: the histogram tracks the true
/// maximum of the overflowed samples, and any percentile that lands in the
/// overflow bucket resolves to that maximum rather than to the range edge.
/// (The seed implementation clamped overflow percentiles to the range
/// maximum, which silently flattened p999 exactly when a platform
/// saturates — the regime where the tail matters most.)
///
/// # Example
///
/// ```
/// use hams_sim::{Histogram, Nanos};
///
/// let mut h = Histogram::new(Nanos::from_nanos(100), 100);
/// for i in 1..=100u64 {
///     h.record(Nanos::from_nanos(i * 100));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= Nanos::from_nanos(4900) && p50 <= Nanos::from_nanos(5200));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: Nanos,
    buckets: Vec<u64>,
    overflow: u64,
    /// Largest sample that landed in the overflow bucket (zero when none
    /// has). Overflow-landing percentiles resolve to this value.
    overflow_max: Nanos,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets each `bucket_width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: Nanos, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            overflow_max: Nanos::ZERO,
            count: 0,
            sum: 0,
        }
    }

    /// Records a latency sample.
    pub fn record(&mut self, t: Nanos) {
        let idx = (t.as_nanos() / self.bucket_width.as_nanos()) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
            self.overflow_max = self.overflow_max.max(t);
        }
        self.count += 1;
        self.sum += u128::from(t.as_nanos());
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples that fell past the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The largest sample that fell past the last bucket, or `None` when no
    /// sample has overflowed. This is the exact value overflow-landing
    /// percentiles resolve to.
    #[must_use]
    pub fn overflow_max(&self) -> Option<Nanos> {
        (self.overflow > 0).then_some(self.overflow_max)
    }

    /// Mean of all recorded samples, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos((self.sum / u128::from(self.count)) as u64)
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), approximated at bucket-boundary
    /// resolution. Returns `None` when no samples have been recorded.
    /// Percentiles that land in the overflow bucket resolve to the true
    /// maximum of the overflowed samples ([`Histogram::overflow_max`]), not
    /// to the range edge.
    ///
    /// One query is a single allocation-free bucket walk; to resolve
    /// several percentiles of the same histogram, [`Histogram::percentiles`]
    /// shares one cumulative pass across all of them instead of rescanning
    /// from bucket zero per query.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Nanos> {
        if self.count == 0 {
            return None;
        }
        let target = Self::rank_of(p, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_width * (i as u64 + 1));
            }
        }
        // The target rank exceeds the bucketed sample count, so at least one
        // sample overflowed and `overflow_max` is the true observed value.
        Some(self.overflow_max)
    }

    /// Resolves every percentile in `ps` (each 0 < p ≤ 100) in **one**
    /// cumulative pass over the buckets, instead of rescanning from bucket
    /// zero per query. Results are index-aligned with `ps`; each entry is
    /// `None` when the histogram is empty, and identical to what
    /// [`Histogram::percentile`] returns for that `p`.
    #[must_use]
    pub fn percentiles(&self, ps: &[f64]) -> Vec<Option<Nanos>> {
        if self.count == 0 {
            return vec![None; ps.len()];
        }
        // Rank each percentile, then resolve the ranks in ascending order
        // while a single cumulative count walks the buckets.
        let mut targets: Vec<(usize, u64)> = ps
            .iter()
            .map(|p| Self::rank_of(*p, self.count))
            .enumerate()
            .collect();
        targets.sort_by_key(|&(_, target)| target);

        // Pre-fill with the overflow resolution: targets the bucket walk
        // never reaches sit in the overflow bucket, whose percentile value
        // is the true maximum of the overflowed samples.
        let mut results = vec![Some(self.overflow_max); ps.len()];
        let mut next = targets.iter().peekable();
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            while let Some(&&(slot, target)) = next.peek() {
                if seen < target {
                    break;
                }
                results[slot] = Some(self.bucket_width * (i as u64 + 1));
                next.next();
            }
            if next.peek().is_none() {
                break;
            }
        }
        // Unresolved targets sit in the overflow bucket and keep the
        // pre-filled overflow maximum.
        results
    }

    /// The 1-based sample rank percentile `p` resolves to among `count`
    /// samples — the shared definition behind [`Histogram::percentile`] and
    /// [`Histogram::percentiles`].
    fn rank_of(p: f64, count: u64) -> u64 {
        let p = p.clamp(0.0, 100.0);
        ((p / 100.0) * count as f64).ceil().max(1.0) as u64
    }

    /// The standard tail summary — count, mean, p50/p99/p99.9 and max — in
    /// **one** cumulative pass over the buckets. Returns `None` when the
    /// histogram is empty.
    ///
    /// Overflow-aware like [`Histogram::percentiles`]: percentiles (and the
    /// maximum) that land past the last bucket resolve to the true maximum
    /// of the overflowed samples, not to the bucket-range edge.
    #[must_use]
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.count == 0 {
            return None;
        }
        let targets = [
            Self::rank_of(50.0, self.count),
            Self::rank_of(99.0, self.count),
            Self::rank_of(99.9, self.count),
        ];
        // One walk resolves all three ranks and finds the highest non-empty
        // bucket; overflowed values resolve to the exact overflow maximum.
        let mut resolved = [self.overflow_max; 3];
        let mut max = self.overflow_max;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 {
                let edge = self.bucket_width * (i as u64 + 1);
                if self.overflow == 0 {
                    max = edge;
                }
                for (slot, &target) in targets.iter().enumerate() {
                    if seen >= target && seen - c < target {
                        resolved[slot] = edge;
                    }
                }
            }
        }
        Some(HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: resolved[0],
            p99: resolved[1],
            p999: resolved[2],
            max,
        })
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.overflow_max = Nanos::ZERO;
        self.count = 0;
        self.sum = 0;
    }
}

/// The one-pass tail summary of a [`Histogram`]; see [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Mean of all samples.
    pub mean: Nanos,
    /// Median, at bucket-boundary resolution.
    pub p50: Nanos,
    /// 99th percentile, at bucket-boundary resolution.
    pub p99: Nanos,
    /// 99.9th percentile, at bucket-boundary resolution.
    pub p999: Nanos,
    /// Largest sample: the highest non-empty bucket edge, or the exact
    /// overflow maximum when samples fell past the last bucket.
    pub max: Nanos,
}

/// Number of fixed accumulator slots in a [`LatencyVector`]. Ids below this
/// index add in O(1) with zero heap traffic; the workspace's pre-interned
/// names all fit with room to spare, and rarer (test-only) names spill to a
/// sorted side list.
pub const INLINE_COMPONENTS: usize = 32;

/// Named time components that sum to a total — the stacked bars of the
/// paper's breakdown figures.
///
/// The accumulator is a fixed `[Nanos; INLINE_COMPONENTS]` array indexed by
/// interned [`ComponentId`]s plus a presence bitmask, so `add` and `merge`
/// on the serving hot path touch no heap at all (the seed implementation
/// keyed a `BTreeMap` by `String`, paying an allocation per `add` and a
/// tree walk per merge). Ids past the inline slots — only reachable by
/// interning many distinct names — spill to a small sorted list.
///
/// The string-facing API is a thin edge layer: [`LatencyVector::add`]
/// accepts either a name or a pre-interned id, and iteration yields
/// components in **name order**, exactly as the old `BTreeMap` did, so
/// printed output and the golden snapshots (which render through
/// [`LatencyVector::component`]) are unchanged.
///
/// Serde caveat: the derives keep the workspace's swap-the-shim contract
/// compiling, but the derived wire format is the slot representation, and
/// ids past the pre-interned set depend on process-local intern order. A
/// breakdown that must cross process boundaries should be emitted through
/// [`LatencyVector::iter`] (name → time, as the golden renderer does), not
/// through serde.
///
/// # Example
///
/// ```
/// use hams_sim::{ComponentId, LatencyVector, Nanos};
///
/// let mut b = LatencyVector::new();
/// b.add("os", Nanos::from_micros(15));
/// b.add(ComponentId::SSD, Nanos::from_micros(3));
/// b.add("app", Nanos::from_micros(12));
/// assert_eq!(b.total(), Nanos::from_micros(30));
/// assert!((b.fraction("os") - 0.5).abs() < 1e-9);
/// let names: Vec<&str> = b.names().collect();
/// assert_eq!(names, ["app", "os", "ssd"]); // name order, like the old map
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyVector {
    /// Fixed accumulator slots, indexed by `ComponentId::index()`.
    inline: [Nanos; INLINE_COMPONENTS],
    /// Bit `i` set ⇔ inline slot `i` has been explicitly added to (a
    /// component added with zero time is *present*, matching map semantics).
    present: u32,
    /// Components with ids past the inline slots, sorted by id. Empty (and
    /// unallocated) in every workspace code path.
    spill: Vec<(ComponentId, Nanos)>,
}

/// The historical name of [`LatencyVector`], kept so existing call sites and
/// docs keep reading naturally.
pub type LatencyBreakdown = LatencyVector;

impl LatencyVector {
    /// Creates an empty breakdown. Allocation-free.
    #[must_use]
    pub fn new() -> Self {
        LatencyVector {
            inline: [Nanos::ZERO; INLINE_COMPONENTS],
            present: 0,
            spill: Vec::new(),
        }
    }

    /// Adds `t` to a component, creating it if necessary. Accepts a
    /// pre-interned [`ComponentId`] (the hot-path form: one array index, no
    /// allocation) or a `&str` name (the edge layer, which interns).
    pub fn add(&mut self, component: impl Into<ComponentId>, t: Nanos) {
        let id = component.into();
        let i = id.index();
        if i < INLINE_COMPONENTS {
            self.inline[i] += t;
            self.present |= 1 << i;
        } else {
            match self.spill.binary_search_by_key(&id, |e| e.0) {
                Ok(pos) => self.spill[pos].1 += t,
                Err(pos) => self.spill.insert(pos, (id, t)),
            }
        }
    }

    /// The accumulated time of component `name`, or zero if absent. Never
    /// interns: asking for an unknown name is free.
    #[must_use]
    pub fn component(&self, name: &str) -> Nanos {
        ComponentId::lookup(name).map_or(Nanos::ZERO, |id| self.value(id))
    }

    /// The accumulated time of an interned component, or zero if absent.
    #[must_use]
    pub fn value(&self, id: ComponentId) -> Nanos {
        let i = id.index();
        if i < INLINE_COMPONENTS {
            self.inline[i]
        } else {
            self.spill
                .binary_search_by_key(&id, |e| e.0)
                .map_or(Nanos::ZERO, |pos| self.spill[pos].1)
        }
    }

    /// The sum of all components.
    #[must_use]
    pub fn total(&self) -> Nanos {
        let mut total = Nanos::ZERO;
        for slot in &self.inline {
            total += *slot;
        }
        for (_, t) in &self.spill {
            total += *t;
        }
        total
    }

    /// Component `name` as a fraction of the total, in `[0, 1]`.
    /// Returns 0 when the total is zero.
    #[must_use]
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total.is_zero() {
            return 0.0;
        }
        self.component(name).as_nanos() as f64 / total.as_nanos() as f64
    }

    /// The present components as `(id, time)` pairs, sorted by name — the
    /// deterministic order the old `BTreeMap` iterated in.
    fn sorted_entries(&self) -> Vec<(ComponentId, Nanos)> {
        let mut entries: Vec<(ComponentId, Nanos)> =
            Vec::with_capacity(self.present.count_ones() as usize + self.spill.len());
        let mut mask = self.present;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            // Present inline slots were set through `add`, whose interning
            // guarantees the id exists in the table.
            entries.push((ComponentId::from_index(i), self.inline[i]));
            mask &= mask - 1;
        }
        entries.extend(self.spill.iter().copied());
        entries.sort_by_key(|(id, _)| id.name());
        entries
    }

    /// Iterates over `(component, time)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Nanos)> {
        self.sorted_entries()
            .into_iter()
            .map(|(id, t)| (id.name(), t))
    }

    /// Component names present in the breakdown, in name order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> {
        self.iter().map(|(name, _)| name)
    }

    /// Returns `true` if no components have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.present == 0 && self.spill.is_empty()
    }

    /// Merges another breakdown into this one component-by-component:
    /// O(`present` slots), no allocation on the inline path.
    pub fn merge(&mut self, other: &LatencyVector) {
        let mut mask = other.present;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            self.inline[i] += other.inline[i];
            mask &= mask - 1;
        }
        self.present |= other.present;
        for &(id, t) in &other.spill {
            self.add(id, t);
        }
    }

    /// Resets to the empty breakdown without touching the spill capacity —
    /// the scratch-reuse form of [`LatencyVector::new`].
    pub fn clear(&mut self) {
        self.inline = [Nanos::ZERO; INLINE_COMPONENTS];
        self.present = 0;
        self.spill.clear();
    }

    /// Returns the breakdown normalised so that components sum to 1.0.
    /// Components of a zero-total breakdown normalise to 0.
    #[must_use]
    pub fn normalized(&self) -> Vec<(String, f64)> {
        self.iter()
            .map(|(name, _)| (name.to_owned(), self.fraction(name)))
            .collect()
    }
}

impl Default for LatencyVector {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for LatencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        write!(f, "total={total}")?;
        for (name, t) in self.iter() {
            write!(f, " {name}={t} ({:.1}%)", self.fraction(name) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.name(), "x");
        c.incr();
        c.add(10);
        assert_eq!(c.value(), 11);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("x");
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn running_stats_mean_and_extremes() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [4.0, 8.0, 6.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 6.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(4.0));
        assert_eq!(s.max(), Some(8.0));
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn running_stats_variance_of_constant_is_zero() {
        let mut s = RunningStats::new();
        for _ in 0..100 {
            s.push(7.5);
        }
        assert!(s.variance() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(Nanos::from_nanos(10), 1000);
        for i in 1..=1000u64 {
            h.record(Nanos::from_nanos(i * 10));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.overflow(), 1); // the 10_000ns sample lands past bucket 999
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= Nanos::from_nanos(9_800), "p99 was {p99}");
        assert!(h.mean() > Nanos::from_nanos(4_000));
        assert!(h.percentile(0.0).is_some());
    }

    #[test]
    fn histogram_empty_and_reset() {
        let mut h = Histogram::new(Nanos::from_nanos(10), 10);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), Nanos::ZERO);
        h.record(Nanos::from_nanos(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(Nanos::ZERO, 10);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = LatencyBreakdown::new();
        b.add("a", Nanos::from_nanos(10));
        b.add("b", Nanos::from_nanos(30));
        b.add("a", Nanos::from_nanos(10));
        let sum: f64 = b.normalized().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.component("a"), Nanos::from_nanos(20));
        assert_eq!(b.component("missing"), Nanos::ZERO);
        assert_eq!(b.total(), Nanos::from_nanos(50));
    }

    #[test]
    fn breakdown_merge_and_display() {
        let mut a = LatencyBreakdown::new();
        a.add("os", Nanos::from_nanos(5));
        let mut b = LatencyBreakdown::new();
        b.add("os", Nanos::from_nanos(5));
        b.add("ssd", Nanos::from_nanos(10));
        a.merge(&b);
        assert_eq!(a.component("os"), Nanos::from_nanos(10));
        assert_eq!(a.component("ssd"), Nanos::from_nanos(10));
        let shown = a.to_string();
        assert!(shown.contains("os"));
        assert!(shown.contains("ssd"));
    }

    #[test]
    fn breakdown_empty_total_is_zero() {
        let b = LatencyBreakdown::new();
        assert!(b.is_empty());
        assert_eq!(b.total(), Nanos::ZERO);
        assert_eq!(b.fraction("anything"), 0.0);
    }

    #[test]
    fn vector_accepts_ids_and_names_interchangeably() {
        let mut by_name = LatencyVector::new();
        by_name.add("nvdimm", Nanos::from_nanos(7));
        by_name.add("dma", Nanos::from_nanos(3));
        let mut by_id = LatencyVector::new();
        by_id.add(ComponentId::NVDIMM, Nanos::from_nanos(7));
        by_id.add(ComponentId::DMA, Nanos::from_nanos(3));
        assert_eq!(by_name, by_id);
        assert_eq!(by_id.value(ComponentId::NVDIMM), Nanos::from_nanos(7));
        assert_eq!(by_id.component("nvdimm"), Nanos::from_nanos(7));
    }

    #[test]
    fn vector_iterates_in_name_order_like_the_old_map() {
        let mut b = LatencyVector::new();
        b.add(ComponentId::SSD, Nanos::from_nanos(1));
        b.add(ComponentId::APP, Nanos::from_nanos(2));
        b.add(ComponentId::NVDIMM, Nanos::from_nanos(3));
        b.add("io_stack", Nanos::from_nanos(4));
        let names: Vec<&str> = b.names().collect();
        assert_eq!(names, ["app", "io_stack", "nvdimm", "ssd"]);
    }

    #[test]
    fn zero_valued_components_are_present_like_map_entries() {
        let mut b = LatencyVector::new();
        b.add("os", Nanos::ZERO);
        assert!(!b.is_empty());
        assert_eq!(b.names().collect::<Vec<_>>(), ["os"]);
        let empty = LatencyVector::new();
        assert_ne!(b, empty, "an explicit zero entry is not the empty map");
    }

    #[test]
    fn vector_clear_resets_to_empty() {
        let mut b = LatencyVector::new();
        b.add(ComponentId::HAMS, Nanos::from_nanos(9));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b, LatencyVector::new());
    }

    #[test]
    fn spilled_components_merge_and_iterate() {
        // Intern enough distinct names to push past the inline slots.
        let ids: Vec<ComponentId> = (0..INLINE_COMPONENTS + 4)
            .map(|i| ComponentId::intern(&format!("spill_test_{i:03}")))
            .collect();
        let over = *ids.last().unwrap();
        assert!(over.index() >= INLINE_COMPONENTS);
        let mut a = LatencyVector::new();
        a.add(over, Nanos::from_nanos(5));
        let mut b = LatencyVector::new();
        b.add(over, Nanos::from_nanos(6));
        b.add(ComponentId::DMA, Nanos::from_nanos(1));
        a.merge(&b);
        assert_eq!(a.value(over), Nanos::from_nanos(11));
        assert_eq!(a.total(), Nanos::from_nanos(12));
        assert!(a.names().any(|n| n == over.name()));
    }

    #[test]
    fn histogram_percentile_edge_cases() {
        // 10 buckets of 10ns: samples 10, 20, ..., 90 land in buckets 1..9
        // (sample i*10 falls exactly on a boundary, landing in bucket i),
        // one 1000ns sample overflows.
        let mut h = Histogram::new(Nanos::from_nanos(10), 10);
        for i in 1..=9u64 {
            h.record(Nanos::from_nanos(i * 10));
        }
        h.record(Nanos::from_nanos(1_000));
        assert_eq!(h.count(), 10);
        assert_eq!(h.overflow(), 1);
        // p50 → target rank 5 → the fifth sample (50ns) in bucket 5 → upper
        // edge 60ns.
        assert_eq!(h.percentile(50.0), Some(Nanos::from_nanos(60)));
        // p99 → rank 10 → the overflow sample → its true observed value,
        // not the 100ns range edge (which would flatten the tail).
        assert_eq!(h.percentile(99.0), Some(Nanos::from_nanos(1_000)));
        // p0 clamps to the first sample's bucket.
        assert_eq!(h.percentile(0.0), Some(Nanos::from_nanos(20)));
        // Out-of-range p clamps to 100.
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
    }

    #[test]
    fn percentiles_match_percentile_in_one_pass() {
        let mut h = Histogram::new(Nanos::from_nanos(100), 64);
        for i in 0..500u64 {
            h.record(Nanos::from_nanos(i * 17 % 8_000));
        }
        let ps = [99.9, 1.0, 50.0, 90.0, 99.0, 25.0, 75.0];
        let batch = h.percentiles(&ps);
        for (p, got) in ps.iter().zip(&batch) {
            assert_eq!(*got, h.percentile(*p), "p{p} diverged from the batch");
        }
        // An overflow-heavy histogram must agree between the two paths too.
        let mut tail = Histogram::new(Nanos::from_nanos(100), 8);
        for i in 0..200u64 {
            tail.record(Nanos::from_nanos(i * 311 % 50_000));
        }
        assert!(tail.overflow() > 0);
        for (p, got) in ps.iter().zip(&tail.percentiles(&ps)) {
            assert_eq!(*got, tail.percentile(*p), "overflow p{p} diverged");
        }
        // Empty histograms resolve every percentile to None.
        let empty = Histogram::new(Nanos::from_nanos(10), 4);
        assert_eq!(empty.percentiles(&ps), vec![None; ps.len()]);
    }

    #[test]
    fn all_overflow_percentiles_return_the_true_observed_max() {
        let mut h = Histogram::new(Nanos::from_nanos(10), 4);
        for _ in 0..8 {
            h.record(Nanos::from_micros(1));
        }
        assert_eq!(h.overflow(), 8);
        assert_eq!(h.overflow_max(), Some(Nanos::from_micros(1)));
        // Every percentile lands in the overflow bucket: the answer is the
        // largest overflowed sample, not the 40ns range maximum the clamped
        // implementation used to report.
        assert_eq!(h.percentile(50.0), Some(Nanos::from_micros(1)));
        assert_eq!(h.percentile(99.0), Some(Nanos::from_micros(1)));
        assert_eq!(
            h.percentiles(&[50.0, 99.9]),
            vec![Some(Nanos::from_micros(1)); 2]
        );
        h.reset();
        assert_eq!(h.overflow_max(), None);
    }

    #[test]
    fn summary_matches_the_piecewise_queries() {
        let mut h = Histogram::new(Nanos::from_nanos(100), 64);
        for i in 0..500u64 {
            h.record(Nanos::from_nanos(i * 17 % 8_000));
        }
        let s = h.summary().expect("non-empty histogram summarizes");
        assert_eq!(s.count, h.count());
        assert_eq!(s.mean, h.mean());
        assert_eq!(Some(s.p50), h.percentile(50.0));
        assert_eq!(Some(s.p99), h.percentile(99.0));
        assert_eq!(Some(s.p999), h.percentile(99.9));
        assert_eq!(Some(s.max), h.percentile(100.0));

        // Overflow-aware: the tail resolves to the true overflowed maximum.
        let mut tail = Histogram::new(Nanos::from_nanos(10), 4);
        for _ in 0..8 {
            tail.record(Nanos::from_micros(1));
        }
        let s = tail.summary().unwrap();
        assert_eq!(s.p50, Nanos::from_micros(1));
        assert_eq!(s.max, Nanos::from_micros(1));

        // Empty histograms have no summary.
        assert_eq!(Histogram::new(Nanos::from_nanos(10), 4).summary(), None);
    }

    #[test]
    fn boundary_sample_at_range_edge_lands_in_overflow() {
        // A sample at exactly `buckets * bucket_width` indexes one past the
        // last bucket: it must count as overflow and become the overflow max.
        let mut h = Histogram::new(Nanos::from_nanos(10), 4);
        h.record(Nanos::from_nanos(40));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.overflow_max(), Some(Nanos::from_nanos(40)));
        assert_eq!(h.percentile(100.0), Some(Nanos::from_nanos(40)));
    }
}
