//! Property-based tests for the simulation primitives.

use std::collections::BTreeMap;

use hams_sim::{
    ComponentId, EventQueue, Histogram, LatencyBreakdown, LatencyVector, Nanos, Resource,
    RunningStats,
};
use proptest::prelude::*;

/// The name pool the `LatencyVector` equivalence properties draw from: the
/// pre-interned hot-path names plus enough synthetic ones to push ids past
/// the vector's inline slots, so the spill path is exercised too.
const EQUIV_NAMES: [&str; 40] = [
    "app",
    "dma",
    "dram",
    "flash_array",
    "flash_channel",
    "flash_queue",
    "ftl",
    "hams",
    "hil",
    "io_stack",
    "mmap",
    "nvdimm",
    "os",
    "ssd",
    "prop_c00",
    "prop_c01",
    "prop_c02",
    "prop_c03",
    "prop_c04",
    "prop_c05",
    "prop_c06",
    "prop_c07",
    "prop_c08",
    "prop_c09",
    "prop_c10",
    "prop_c11",
    "prop_c12",
    "prop_c13",
    "prop_c14",
    "prop_c15",
    "prop_c16",
    "prop_c17",
    "prop_c18",
    "prop_c19",
    "prop_c20",
    "prop_c21",
    "prop_c22",
    "prop_c23",
    "prop_c24",
    "prop_c25",
];

proptest! {
    /// Saturating arithmetic never panics and never goes below zero.
    #[test]
    fn nanos_arithmetic_is_total(a in any::<u64>(), b in any::<u64>()) {
        let x = Nanos::from_nanos(a);
        let y = Nanos::from_nanos(b);
        let sum = x + y;
        let diff = x - y;
        prop_assert!(sum >= x.max(y) || sum == Nanos::MAX);
        prop_assert!(diff <= x);
        prop_assert_eq!(x.max(y).min(x.min(y)), x.min(y));
    }

    /// A resource never starts a grant before the request time, never before
    /// the previous grant ends, and accounts busy time exactly.
    #[test]
    fn resource_grants_never_overlap(durations in proptest::collection::vec(1u64..10_000, 1..60)) {
        let mut r = Resource::new("prop");
        let mut prev_end = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        for d in &durations {
            let g = r.acquire(Nanos::ZERO, Nanos::from_nanos(*d));
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end, g.start + Nanos::from_nanos(*d));
            prev_end = g.end;
            total += Nanos::from_nanos(*d);
        }
        prop_assert_eq!(r.busy_time(), total);
        prop_assert_eq!(r.busy_until(), prev_end);
        prop_assert_eq!(r.grants(), durations.len() as u64);
    }

    /// Events always pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_orders_events(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(*t), i);
        }
        let drained = q.drain_ordered();
        prop_assert_eq!(drained.len(), times.len());
        for pair in drained.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
            if pair[0].at == pair[1].at {
                prop_assert!(pair[0].seq < pair[1].seq);
            }
        }
    }

    /// Histogram percentiles are monotone in the percentile and bounded by
    /// the recorded extremes (at bucket resolution).
    #[test]
    fn histogram_percentiles_are_monotone(samples in proptest::collection::vec(1u64..100_000, 1..300)) {
        let mut h = Histogram::new(Nanos::from_nanos(100), 1_024);
        for s in &samples {
            h.record(Nanos::from_nanos(*s));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Running statistics: the mean lies between min and max and merging two
    /// accumulators equals accumulating the concatenation.
    #[test]
    fn running_stats_merge_is_consistent(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut both = RunningStats::new();
        for x in &xs { a.push(*x); both.push(*x); }
        for y in &ys { b.push(*y); both.push(*y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert!((a.mean() - both.mean()).abs() < 1e-6);
        prop_assert!(a.mean() >= a.min().unwrap() - 1e-9);
        prop_assert!(a.mean() <= a.max().unwrap() + 1e-9);
    }

    /// Breakdown component fractions always sum to 1 (or 0 for an empty one).
    #[test]
    fn breakdown_fractions_normalise(components in proptest::collection::vec((0usize..6, 1u64..1_000_000), 0..30)) {
        let names = ["nvdimm", "dma", "ssd", "hams", "os", "app"];
        let mut b = LatencyBreakdown::new();
        for (idx, v) in &components {
            b.add(names[*idx], Nanos::from_nanos(*v));
        }
        let sum: f64 = b.normalized().iter().map(|(_, f)| f).sum();
        if components.is_empty() {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// The slot-indexed `LatencyVector` is observationally equivalent to the
    /// seed implementation — a `BTreeMap<String, Nanos>` — on arbitrary add
    /// streams: same components, same totals, same name-ordered iteration.
    #[test]
    fn latency_vector_matches_the_btreemap_model_on_add_streams(
        stream in proptest::collection::vec((0usize..40, 0u64..1_000_000), 0..80),
    ) {
        let mut vector = LatencyVector::new();
        let mut model: BTreeMap<String, Nanos> = BTreeMap::new();
        for (idx, v) in &stream {
            let name = EQUIV_NAMES[*idx];
            let t = Nanos::from_nanos(*v);
            vector.add(name, t);
            *model.entry(name.to_owned()).or_insert(Nanos::ZERO) += t;
        }
        prop_assert_eq!(vector.is_empty(), model.is_empty());
        prop_assert_eq!(vector.total(), model.values().copied().sum::<Nanos>());
        for name in EQUIV_NAMES {
            prop_assert_eq!(
                vector.component(name),
                model.get(name).copied().unwrap_or(Nanos::ZERO),
                "component {} diverged", name
            );
        }
        // Iteration order and contents match the map exactly.
        let vector_entries: Vec<(String, Nanos)> =
            vector.iter().map(|(n, t)| (n.to_owned(), t)).collect();
        let model_entries: Vec<(String, Nanos)> =
            model.iter().map(|(n, t)| (n.clone(), *t)).collect();
        prop_assert_eq!(vector_entries, model_entries);
    }

    /// Merging two vectors built from split streams equals building one
    /// vector (and one map model) from the concatenation — add/merge
    /// commute exactly as they did for the `BTreeMap`.
    #[test]
    fn latency_vector_merge_matches_the_btreemap_model(
        left in proptest::collection::vec((0usize..40, 0u64..1_000_000), 0..50),
        right in proptest::collection::vec((0usize..40, 0u64..1_000_000), 0..50),
    ) {
        let build = |stream: &[(usize, u64)]| {
            let mut v = LatencyVector::new();
            for (idx, val) in stream {
                v.add(EQUIV_NAMES[*idx], Nanos::from_nanos(*val));
            }
            v
        };
        let mut merged = build(&left);
        merged.merge(&build(&right));

        let mut model: BTreeMap<String, Nanos> = BTreeMap::new();
        for (idx, val) in left.iter().chain(right.iter()) {
            *model.entry(EQUIV_NAMES[*idx].to_owned()).or_insert(Nanos::ZERO) +=
                Nanos::from_nanos(*val);
        }
        let merged_entries: Vec<(String, Nanos)> =
            merged.iter().map(|(n, t)| (n.to_owned(), t)).collect();
        let model_entries: Vec<(String, Nanos)> =
            model.iter().map(|(n, t)| (n.clone(), *t)).collect();
        prop_assert_eq!(merged_entries, model_entries);
        prop_assert_eq!(merged.total(), model.values().copied().sum::<Nanos>());

        // Merge order over the same component set never changes the result.
        let mut flipped = build(&right);
        flipped.merge(&build(&left));
        prop_assert_eq!(merged, flipped);
    }

    /// Ids and names are interchangeable: adding through pre-interned
    /// constants equals adding through the string edge layer.
    #[test]
    fn latency_vector_ids_and_names_agree(
        stream in proptest::collection::vec((0usize..14, 1u64..1_000_000), 0..40),
    ) {
        let ids = [
            ComponentId::APP, ComponentId::DMA, ComponentId::DRAM,
            ComponentId::FLASH_ARRAY, ComponentId::FLASH_CHANNEL,
            ComponentId::FLASH_QUEUE, ComponentId::FTL, ComponentId::HAMS,
            ComponentId::HIL, ComponentId::IO_STACK, ComponentId::MMAP,
            ComponentId::NVDIMM, ComponentId::OS, ComponentId::SSD,
        ];
        let mut by_id = LatencyVector::new();
        let mut by_name = LatencyVector::new();
        for (idx, v) in &stream {
            by_id.add(ids[*idx], Nanos::from_nanos(*v));
            by_name.add(EQUIV_NAMES[*idx], Nanos::from_nanos(*v));
        }
        prop_assert_eq!(by_id, by_name);
    }
}
