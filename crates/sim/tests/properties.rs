//! Property-based tests for the simulation primitives.

use hams_sim::{EventQueue, Histogram, LatencyBreakdown, Nanos, Resource, RunningStats};
use proptest::prelude::*;

proptest! {
    /// Saturating arithmetic never panics and never goes below zero.
    #[test]
    fn nanos_arithmetic_is_total(a in any::<u64>(), b in any::<u64>()) {
        let x = Nanos::from_nanos(a);
        let y = Nanos::from_nanos(b);
        let sum = x + y;
        let diff = x - y;
        prop_assert!(sum >= x.max(y) || sum == Nanos::MAX);
        prop_assert!(diff <= x);
        prop_assert_eq!(x.max(y).min(x.min(y)), x.min(y));
    }

    /// A resource never starts a grant before the request time, never before
    /// the previous grant ends, and accounts busy time exactly.
    #[test]
    fn resource_grants_never_overlap(durations in proptest::collection::vec(1u64..10_000, 1..60)) {
        let mut r = Resource::new("prop");
        let mut prev_end = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        for d in &durations {
            let g = r.acquire(Nanos::ZERO, Nanos::from_nanos(*d));
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end, g.start + Nanos::from_nanos(*d));
            prev_end = g.end;
            total += Nanos::from_nanos(*d);
        }
        prop_assert_eq!(r.busy_time(), total);
        prop_assert_eq!(r.busy_until(), prev_end);
        prop_assert_eq!(r.grants(), durations.len() as u64);
    }

    /// Events always pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_orders_events(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(*t), i);
        }
        let drained = q.drain_ordered();
        prop_assert_eq!(drained.len(), times.len());
        for pair in drained.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
            if pair[0].at == pair[1].at {
                prop_assert!(pair[0].seq < pair[1].seq);
            }
        }
    }

    /// Histogram percentiles are monotone in the percentile and bounded by
    /// the recorded extremes (at bucket resolution).
    #[test]
    fn histogram_percentiles_are_monotone(samples in proptest::collection::vec(1u64..100_000, 1..300)) {
        let mut h = Histogram::new(Nanos::from_nanos(100), 1_024);
        for s in &samples {
            h.record(Nanos::from_nanos(*s));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Running statistics: the mean lies between min and max and merging two
    /// accumulators equals accumulating the concatenation.
    #[test]
    fn running_stats_merge_is_consistent(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut both = RunningStats::new();
        for x in &xs { a.push(*x); both.push(*x); }
        for y in &ys { b.push(*y); both.push(*y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert!((a.mean() - both.mean()).abs() < 1e-6);
        prop_assert!(a.mean() >= a.min().unwrap() - 1e-9);
        prop_assert!(a.mean() <= a.max().unwrap() + 1e-9);
    }

    /// Breakdown component fractions always sum to 1 (or 0 for an empty one).
    #[test]
    fn breakdown_fractions_normalise(components in proptest::collection::vec((0usize..6, 1u64..1_000_000), 0..30)) {
        let names = ["nvdimm", "dma", "ssd", "hams", "os", "app"];
        let mut b = LatencyBreakdown::new();
        for (idx, v) in &components {
            b.add(names[*idx], Nanos::from_nanos(*v));
        }
        let sum: f64 = b.normalized().iter().map(|(_, f)| f).sum();
        if components.is_empty() {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
