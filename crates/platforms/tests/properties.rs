//! Property-based tests for the platform layer: cache bounds, runner metric
//! sanity and cross-platform orderings that must hold for any seed.

use hams_platforms::{run_workload, CacheOutcome, LruPageCache, PlatformKind, ScaleProfile};
use hams_workloads::WorkloadSpec;
use proptest::prelude::*;

proptest! {
    /// The LRU page cache never exceeds its capacity, counts hits and misses
    /// exactly, and only evicts pages that were resident.
    #[test]
    fn lru_cache_invariants(
        capacity in 1usize..128,
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..400),
    ) {
        let mut cache = LruPageCache::new(capacity);
        let mut resident = std::collections::HashSet::new();
        for (page, is_write) in &ops {
            let outcome = cache.access(*page, *is_write);
            match outcome {
                CacheOutcome::Hit => prop_assert!(resident.contains(page)),
                CacheOutcome::MissInstalled => {
                    resident.insert(*page);
                }
                CacheOutcome::MissEvictClean { victim } | CacheOutcome::MissEvictDirty { victim } => {
                    prop_assert!(resident.remove(&victim), "evicted page {victim} was not resident");
                    resident.insert(*page);
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), resident.len());
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, ops.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seed, the runner produces finite, positive metrics and the
    /// oracle upper-bounds HAMS, which upper-bounds (or equals) mmap.
    #[test]
    fn runner_metrics_are_sane_for_any_seed(seed in 0u64..1_000) {
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 1_000,
            seed,
        };
        let spec = WorkloadSpec::by_name("rndWr").unwrap();
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let mut te = PlatformKind::HamsTE.build(&scale);
        let mut oracle = PlatformKind::Oracle.build(&scale);
        let m = run_workload(mmap.as_mut(), spec, &scale);
        let h = run_workload(te.as_mut(), spec, &scale);
        let o = run_workload(oracle.as_mut(), spec, &scale);
        for r in [&m, &h, &o] {
            prop_assert!(r.pages_per_sec.is_finite() && r.pages_per_sec > 0.0);
            prop_assert!(r.ipc.is_finite() && r.ipc > 0.0);
            prop_assert!(r.energy.total_joules().is_finite());
        }
        prop_assert!(o.pages_per_sec >= h.pages_per_sec * 0.99);
        prop_assert!(h.pages_per_sec >= m.pages_per_sec * 0.9,
            "HAMS ({:.0}) fell far below mmap ({:.0}) for seed {seed}", h.pages_per_sec, m.pages_per_sec);
    }
}
