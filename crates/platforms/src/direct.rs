//! Prior-work comparison platforms: FlatFlash (`flatflash-P/-M`), Optane DC
//! PMM (`optane-P/-M`), NVDIMM-C (`nvdimm-C`) and the `oracle` upper bound.
//!
//! These models capture the characteristics the paper uses to position HAMS
//! (§VI-B and §VII): FlatFlash's MMIO cache-line access costs ~4.8 µs and
//! forgoes NVMe parallelism, Optane's 256 B internal block wastes bandwidth on
//! fine-grained accesses, and NVDIMM-C confines DRAM↔flash migration to DRAM
//! refresh windows, making a page move cost tens of microseconds.

use hams_energy::{EnergyAccount, PowerParams};
use hams_flash::{SsdConfig, SsdDevice, LBA_SIZE};
use hams_interconnect::{Ddr4Channel, Ddr4Config, PcieConfig, PcieLink};
use hams_nvme::{NvmeCommand, PrpList, QueueConfig};
use hams_sim::Nanos;
use hams_workloads::Access;

use crate::cache::{CacheOutcome, LruPageCache};
use crate::platform::{AccessOutcome, BatchOutcome, BatchRequest, Platform};

const OS_PAGE: u64 = 4096;

fn znand_energy(power: &PowerParams, ssd: &SsdDevice) -> f64 {
    (ssd.stats().page_reads as f64 * power.znand_read_page_nj
        + ssd.stats().page_programs as f64 * power.znand_program_page_nj)
        / 1e9
}

/// FlatFlash: the SSD is exposed byte-addressably over MMIO.
///
/// `flatflash-P` (persistent) sends every cache-line access across PCIe to the
/// SSD; `flatflash-M` additionally buffers hot pages in host DRAM, improving
/// performance but forfeiting persistence.
#[derive(Debug)]
pub struct FlatFlashPlatform {
    name: String,
    host_cache: Option<LruPageCache>,
    ssd: SsdDevice,
    pcie: PcieLink,
    ddr: Ddr4Channel,
    power: PowerParams,
    dram_bytes_accessed: u64,
    queues: QueueConfig,
}

impl FlatFlashPlatform {
    /// `flatflash-P`: direct MMIO access, fully persistent.
    #[must_use]
    pub fn persistent() -> Self {
        Self::build("flatflash-P", None)
    }

    /// `flatflash-M`: hot pages buffered in `dram_bytes` of host memory.
    #[must_use]
    pub fn memory_cached(dram_bytes: u64) -> Self {
        Self::build(
            "flatflash-M",
            Some(LruPageCache::new((dram_bytes / OS_PAGE) as usize)),
        )
    }

    fn build(name: &str, host_cache: Option<LruPageCache>) -> Self {
        FlatFlashPlatform {
            name: name.to_owned(),
            host_cache,
            ssd: SsdDevice::new(SsdConfig::ull_flash()),
            pcie: PcieLink::new(PcieConfig::gen3_x4()),
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2133()),
            power: PowerParams::paper_default(),
            dram_bytes_accessed: 0,
            queues: QueueConfig::single(),
        }
    }

    /// Replaces the SSD with one whose internal DRAM holds `bytes` (used by
    /// scaled-down experiments to preserve the paper's capacity ratios).
    #[must_use]
    pub fn with_ssd_dram_bytes(mut self, bytes: u64) -> Self {
        let mut cfg = SsdConfig::ull_flash();
        cfg.dram_capacity_bytes = bytes;
        self.ssd = SsdDevice::new(cfg);
        self
    }

    /// One MMIO access of `size` bytes to the SSD: a small PCIe transaction
    /// plus the device-internal lookup. With the default single-queue shape
    /// there is no NVMe queueing or parallelism; a multi-queue opt-in splits
    /// transfers spanning several flash pages into one command per queue, so
    /// the device firmware walks them concurrently.
    fn mmio_access(&mut self, addr: u64, size: u64, is_write: bool, now: Nanos) -> Nanos {
        let length = size.max(64);
        let round_trip = self.pcie.transfer(length, now);
        let slba = addr / LBA_SIZE;
        let lanes = u64::from(self.queues.num_queues)
            .min(length.div_ceil(LBA_SIZE))
            .max(1);
        if lanes <= 1 {
            let cmd = if is_write {
                NvmeCommand::write(1, slba, length, PrpList::single(0))
            } else {
                NvmeCommand::read(1, slba, length, PrpList::single(0))
            };
            return self
                .ssd
                .service(&cmd, round_trip.finished_at)
                .map(|c| c.finished_at)
                .unwrap_or(round_trip.finished_at);
        }
        let mut finish = round_trip.finished_at;
        for (lba_offset, count) in hams_nvme::stripe_ranges(length.div_ceil(LBA_SIZE), lanes) {
            let sub_len = (count * LBA_SIZE).min(length - lba_offset * LBA_SIZE);
            let cmd = if is_write {
                NvmeCommand::write(1, slba + lba_offset, sub_len, PrpList::single(0))
            } else {
                NvmeCommand::read(1, slba + lba_offset, sub_len, PrpList::single(0))
            };
            let done = self
                .ssd
                .service(&cmd, round_trip.finished_at)
                .map(|c| c.finished_at)
                .unwrap_or(round_trip.finished_at);
            finish = finish.max(done);
        }
        finish
    }
}

impl Platform for FlatFlashPlatform {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        let mut t = now;
        if let Some(cache) = &mut self.host_cache {
            let page = access.addr / OS_PAGE;
            let outcome = cache.access(page, access.is_write);
            if outcome.is_hit() {
                self.dram_bytes_accessed += access.size;
                let served = self.ddr.transfer(access.size, t).finished_at + Nanos::from_nanos(30);
                return AccessOutcome {
                    finished_at: served,
                    os_time: Nanos::ZERO,
                    ssd_time: Nanos::ZERO,
                    memory_time: served - t,
                };
            }
            // Promote the page to host DRAM over MMIO (page-sized pull).
            let promoted = self.mmio_access(access.addr, OS_PAGE, false, t);
            if let CacheOutcome::MissEvictDirty { victim } = outcome {
                t = self.mmio_access(victim * OS_PAGE, OS_PAGE, true, promoted);
            } else {
                t = promoted;
            }
            let served = self.ddr.transfer(access.size, t).finished_at + Nanos::from_nanos(30);
            return AccessOutcome {
                finished_at: served,
                os_time: Nanos::ZERO,
                ssd_time: served - now,
                memory_time: served - t,
            };
        }
        let served = self.mmio_access(access.addr, access.size, access.is_write, t);
        AccessOutcome {
            finished_at: served,
            os_time: Nanos::ZERO,
            ssd_time: served - now,
            memory_time: Nanos::ZERO,
        }
    }

    /// Direct-attach batch path for `flatflash-P`: the host-cache branch is
    /// resolved once per batch and every access goes straight to the MMIO
    /// loop with the caller's reused outcome buffer. `flatflash-M` keeps the
    /// per-access fallback — its host DRAM cache makes every access
    /// branch-dependent anyway.
    fn serve_batch_into(&mut self, batch: &[BatchRequest], start: Nanos, out: &mut BatchOutcome) {
        out.outcomes.clear();
        let mut t = start;
        if self.host_cache.is_none() {
            for request in batch {
                let issued_at = t + request.compute;
                let served = self.mmio_access(
                    request.access.addr,
                    request.access.size,
                    request.access.is_write,
                    issued_at,
                );
                out.outcomes.push(AccessOutcome {
                    finished_at: served,
                    os_time: Nanos::ZERO,
                    ssd_time: served - issued_at,
                    memory_time: Nanos::ZERO,
                });
                t = served;
            }
        } else {
            for request in batch {
                let outcome = self.access(&request.access, t + request.compute);
                t = outcome.finished_at;
                out.outcomes.push(outcome);
            }
        }
    }

    /// `flatflash-P` drives the SSD directly and can spread multi-page
    /// transfers across NVMe queues; `flatflash-M` keeps the single-queue
    /// fallback (its host DRAM cache owns the promotion path).
    fn configure_queues(&mut self, queues: QueueConfig) -> bool {
        if self.host_cache.is_none() {
            self.queues = queues;
            true
        } else {
            false
        }
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        e.add_power("nvdimm", self.power.nvdimm_background_watts, elapsed);
        e.add(
            "nvdimm",
            self.dram_bytes_accessed as f64 * self.power.nvdimm_access_nj_per_byte / 1e9,
        );
        e.add_power(
            "internal_dram",
            self.power.ssd_dram_background_watts,
            elapsed,
        );
        e.add(
            "internal_dram",
            (self.ssd.dram_stats().accesses * 4096) as f64 * self.power.ssd_dram_access_nj_per_byte
                / 1e9,
        );
        e.add("znand", znand_energy(&self.power, &self.ssd));
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        self.host_cache.as_ref().map(|c| c.stats().hit_rate())
    }

    fn is_persistent(&self) -> bool {
        // Only the uncached variant guarantees persistence (§VII).
        self.host_cache.is_none()
    }
}

/// Optane DC PMM platforms: App Direct (`optane-P`) and memory-mode-style
/// DRAM-cached (`optane-M`).
#[derive(Debug)]
pub struct OptanePlatform {
    name: String,
    dram_cache: Option<LruPageCache>,
    power: PowerParams,
    ddr: Ddr4Channel,
    media_reads: u64,
    media_writes: u64,
    dram_bytes_accessed: u64,
    queues: QueueConfig,
}

impl OptanePlatform {
    /// Optane internal block size: requests smaller than this still move a
    /// full block (§VI-B).
    pub const INTERNAL_BLOCK: u64 = 256;
    /// Media read latency of Optane DC PMM.
    pub const READ_LATENCY: Nanos = Nanos::from_nanos(305);
    /// Media write latency into the XPBuffer.
    pub const WRITE_LATENCY: Nanos = Nanos::from_nanos(94);
    /// Sustainable media bandwidth (bytes/s), well below DRAM.
    pub const MEDIA_BANDWIDTH: f64 = 2.4e9;

    /// `optane-P`: App Direct mode, every access reaches the PMM media.
    #[must_use]
    pub fn app_direct() -> Self {
        OptanePlatform {
            name: "optane-P".to_owned(),
            dram_cache: None,
            power: PowerParams::paper_default(),
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2666()),
            media_reads: 0,
            media_writes: 0,
            dram_bytes_accessed: 0,
            queues: QueueConfig::single(),
        }
    }

    /// `optane-M`: `dram_bytes` of DRAM cache in front of the PMM.
    #[must_use]
    pub fn memory_mode(dram_bytes: u64) -> Self {
        OptanePlatform {
            name: "optane-M".to_owned(),
            dram_cache: Some(LruPageCache::new((dram_bytes / OS_PAGE) as usize)),
            ..Self::app_direct()
        }
    }

    /// One media access. With a multi-queue shape, requests spanning several
    /// 256 B internal blocks interleave across queues, so the media
    /// streaming time covers only the longest per-queue block run; the
    /// single-queue default streams every block back to back.
    fn media_access(&mut self, size: u64, is_write: bool, now: Nanos) -> Nanos {
        let moved = size.max(Self::INTERNAL_BLOCK);
        let blocks = moved.div_ceil(Self::INTERNAL_BLOCK);
        let lanes = u64::from(self.queues.num_queues).min(blocks).max(1);
        let lane_bytes = if lanes <= 1 {
            moved
        } else {
            blocks.div_ceil(lanes) * Self::INTERNAL_BLOCK
        };
        let stream = Nanos::from_nanos_f64(lane_bytes as f64 / Self::MEDIA_BANDWIDTH * 1e9);
        let latency = if is_write {
            self.media_writes += 1;
            Self::WRITE_LATENCY
        } else {
            self.media_reads += 1;
            Self::READ_LATENCY
        };
        let bus = self.ddr.transfer(moved, now);
        bus.finished_at + latency + stream
    }
}

impl Platform for OptanePlatform {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        let finished = if let Some(cache) = &mut self.dram_cache {
            let page = access.addr / OS_PAGE;
            if cache.access(page, access.is_write).is_hit() {
                self.dram_bytes_accessed += access.size;
                self.ddr.transfer(access.size, now).finished_at + Nanos::from_nanos(30)
            } else {
                // Fetch the 4 KB page from the PMM into the DRAM cache.
                self.media_access(OS_PAGE, false, now)
            }
        } else {
            self.media_access(access.size, access.is_write, now)
        };
        AccessOutcome {
            finished_at: finished,
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: finished - now,
        }
    }

    /// Direct-attach batch path for `optane-P`: the DRAM-cache branch is
    /// resolved once per batch and every access streams through the media
    /// model into the caller's reused outcome buffer. `optane-M` keeps the
    /// per-access fallback.
    fn serve_batch_into(&mut self, batch: &[BatchRequest], start: Nanos, out: &mut BatchOutcome) {
        out.outcomes.clear();
        let mut t = start;
        if self.dram_cache.is_none() {
            for request in batch {
                let issued_at = t + request.compute;
                let finished =
                    self.media_access(request.access.size, request.access.is_write, issued_at);
                out.outcomes.push(AccessOutcome {
                    finished_at: finished,
                    os_time: Nanos::ZERO,
                    ssd_time: Nanos::ZERO,
                    memory_time: finished - issued_at,
                });
                t = finished;
            }
        } else {
            for request in batch {
                let outcome = self.access(&request.access, t + request.compute);
                t = outcome.finished_at;
                out.outcomes.push(outcome);
            }
        }
    }

    /// `optane-P` exposes the PMM's internal queueing, so multi-block
    /// requests can interleave across queues; `optane-M` keeps the
    /// single-queue fallback behind its DRAM cache.
    fn configure_queues(&mut self, queues: QueueConfig) -> bool {
        if self.dram_cache.is_none() {
            self.queues = queues;
            true
        } else {
            false
        }
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        e.add_power("nvdimm", self.power.nvdimm_background_watts * 2.0, elapsed);
        e.add(
            "nvdimm",
            (self.dram_bytes_accessed
                + (self.media_reads + self.media_writes) * Self::INTERNAL_BLOCK) as f64
                * self.power.nvdimm_access_nj_per_byte
                * 3.0
                / 1e9,
        );
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        self.dram_cache.as_ref().map(|c| c.stats().hit_rate())
    }

    fn is_persistent(&self) -> bool {
        self.dram_cache.is_none()
    }
}

/// NVDIMM-C: ULL-Flash shares the DDR4 PHY with a DRAM cache, but DRAM↔flash
/// migration may only proceed during DRAM refresh windows, so a page move
/// costs tens of microseconds (§VI-B).
#[derive(Debug)]
pub struct NvdimmCPlatform {
    dram_cache: LruPageCache,
    ssd: SsdDevice,
    ddr: Ddr4Channel,
    power: PowerParams,
    dram_bytes_accessed: u64,
}

impl NvdimmCPlatform {
    /// Extra delay a page migration pays waiting for (and being chopped
    /// across) DRAM refresh windows; the paper quotes up to 48 µs per page.
    pub const REFRESH_MIGRATION_PENALTY: Nanos = Nanos::from_micros(40);

    /// Creates the platform with `dram_bytes` of DRAM cache.
    #[must_use]
    pub fn new(dram_bytes: u64) -> Self {
        NvdimmCPlatform {
            dram_cache: LruPageCache::new((dram_bytes / OS_PAGE) as usize),
            ssd: SsdDevice::new(SsdConfig::ull_flash()),
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2666()),
            power: PowerParams::paper_default(),
            dram_bytes_accessed: 0,
        }
    }

    /// Replaces the SSD with one whose internal DRAM holds `bytes` (used by
    /// scaled-down experiments to preserve the paper's capacity ratios).
    #[must_use]
    pub fn with_ssd_dram_bytes(mut self, bytes: u64) -> Self {
        let mut cfg = SsdConfig::ull_flash();
        cfg.dram_capacity_bytes = bytes;
        self.ssd = SsdDevice::new(cfg);
        self
    }

    fn migrate(&mut self, page: u64, is_write: bool, now: Nanos) -> Nanos {
        let cmd = if is_write {
            NvmeCommand::write(1, page * OS_PAGE / LBA_SIZE, OS_PAGE, PrpList::single(0))
        } else {
            NvmeCommand::read(1, page * OS_PAGE / LBA_SIZE, OS_PAGE, PrpList::single(0))
        };
        let device = self
            .ssd
            .service(&cmd, now)
            .map(|c| c.finished_at)
            .unwrap_or(now);
        let bus = self.ddr.transfer(OS_PAGE, device);
        bus.finished_at + Self::REFRESH_MIGRATION_PENALTY
    }
}

impl Platform for NvdimmCPlatform {
    fn name(&self) -> &str {
        "nvdimm-C"
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        let page = access.addr / OS_PAGE;
        let outcome = self.dram_cache.access(page, access.is_write);
        let mut t = now;
        if !outcome.is_hit() {
            t = self.migrate(page, false, t);
            if let CacheOutcome::MissEvictDirty { victim } = outcome {
                t = self.migrate(victim, true, t);
            }
        }
        self.dram_bytes_accessed += access.size;
        let served = self.ddr.transfer(access.size, t).finished_at + Nanos::from_nanos(30);
        AccessOutcome {
            finished_at: served,
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: served - now,
        }
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        e.add_power("nvdimm", self.power.nvdimm_background_watts, elapsed);
        e.add(
            "nvdimm",
            self.dram_bytes_accessed as f64 * self.power.nvdimm_access_nj_per_byte / 1e9,
        );
        e.add_power(
            "internal_dram",
            self.power.ssd_dram_background_watts,
            elapsed,
        );
        e.add("znand", znand_energy(&self.power, &self.ssd));
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        Some(self.dram_cache.stats().hit_rate())
    }

    fn is_persistent(&self) -> bool {
        false
    }
}

/// The oracle: a hypothetical 512 GB NVDIMM that holds every dataset
/// entirely, so all accesses complete at DRAM speed.
#[derive(Debug)]
pub struct OraclePlatform {
    ddr: Ddr4Channel,
    power: PowerParams,
    bytes_accessed: u64,
}

impl OraclePlatform {
    /// Creates the oracle.
    #[must_use]
    pub fn new() -> Self {
        OraclePlatform {
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2133()),
            power: PowerParams::paper_default(),
            bytes_accessed: 0,
        }
    }
}

impl Default for OraclePlatform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform for OraclePlatform {
    fn name(&self) -> &str {
        "oracle"
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        self.bytes_accessed += access.size;
        let served = self.ddr.transfer(access.size, now).finished_at + Nanos::from_nanos(30);
        AccessOutcome {
            finished_at: served,
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: served - now,
        }
    }

    /// Batch path: the energy byte counter is accumulated once per batch and
    /// the caller's outcome buffer is reused; each access still takes its
    /// own DDR4 grant so contention timing is identical to the per-access
    /// path.
    fn serve_batch_into(&mut self, batch: &[BatchRequest], start: Nanos, out: &mut BatchOutcome) {
        out.outcomes.clear();
        let mut t = start;
        let mut bytes = 0u64;
        for request in batch {
            let issued_at = t + request.compute;
            bytes += request.access.size;
            let served = self
                .ddr
                .transfer(request.access.size, issued_at)
                .finished_at
                + Nanos::from_nanos(30);
            out.outcomes.push(AccessOutcome {
                finished_at: served,
                os_time: Nanos::ZERO,
                ssd_time: Nanos::ZERO,
                memory_time: served - issued_at,
            });
            t = served;
        }
        self.bytes_accessed += bytes;
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        e.add_power("nvdimm", self.power.nvdimm_background_watts * 4.0, elapsed);
        e.add(
            "nvdimm",
            self.bytes_accessed as f64 * self.power.nvdimm_access_nj_per_byte / 1e9,
        );
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        Some(1.0)
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, is_write: bool, size: u64) -> Access {
        Access {
            addr,
            size,
            is_write,
            compute_instructions: 0,
        }
    }

    #[test]
    fn flatflash_p_cache_line_access_is_microseconds() {
        let mut p = FlatFlashPlatform::persistent();
        let o = p.access(&acc(0, false, 64), Nanos::ZERO);
        let us = o.latency(Nanos::ZERO).as_micros_f64();
        assert!(us > 1.0 && us < 10.0, "flatflash-P 64B access was {us}us");
        assert!(p.is_persistent());
    }

    #[test]
    fn flatflash_m_beats_flatflash_p_on_reuse() {
        let mut pp = FlatFlashPlatform::persistent();
        let mut pm = FlatFlashPlatform::memory_cached(1 << 20);
        let mut tp = Nanos::ZERO;
        let mut tm = Nanos::ZERO;
        for i in 0..64u64 {
            let a = acc((i % 8) * 64, false, 64);
            tp = pp.access(&a, tp).finished_at;
            tm = pm.access(&a, tm).finished_at;
        }
        assert!(tm < tp, "cached FlatFlash ({tm}) should beat direct ({tp})");
        assert!(!pm.is_persistent());
        assert!(pm.hit_rate().unwrap() > 0.8);
    }

    #[test]
    fn optane_p_fine_grained_access_wastes_bandwidth() {
        let mut p = OptanePlatform::app_direct();
        let small = p
            .access(&acc(0, false, 64), Nanos::ZERO)
            .latency(Nanos::ZERO);
        let t1 = Nanos::from_millis(1);
        let block = p.access(&acc(4096, false, 256), t1).latency(t1);
        // A 64 B request costs the same as a 256 B one: the internal block.
        assert_eq!(small, block);
        assert!(p.is_persistent());
    }

    #[test]
    fn optane_p_multi_queue_interleaves_block_streams() {
        let mut single = OptanePlatform::app_direct();
        let mut striped = OptanePlatform::app_direct();
        assert!(striped.configure_queues(QueueConfig::striped(4)));
        let a = acc(0, false, 4096);
        let t_s = single.access(&a, Nanos::ZERO).latency(Nanos::ZERO);
        let t_m = striped.access(&a, Nanos::ZERO).latency(Nanos::ZERO);
        assert!(
            t_m < t_s,
            "4-queue PMM access ({t_m}) should beat single queue ({t_s})"
        );
        // A single-block access cannot interleave and is unchanged.
        let small = acc(8192, false, 64);
        let t1 = Nanos::from_millis(1);
        assert_eq!(
            single.access(&small, t1).latency(t1),
            striped.access(&small, t1).latency(t1)
        );
    }

    #[test]
    fn cached_variants_refuse_queue_configuration() {
        let mut om = OptanePlatform::memory_mode(1 << 20);
        assert!(!om.configure_queues(QueueConfig::striped(4)));
        let mut fm = FlatFlashPlatform::memory_cached(1 << 20);
        assert!(!fm.configure_queues(QueueConfig::striped(4)));
        let mut fp = FlatFlashPlatform::persistent();
        assert!(fp.configure_queues(QueueConfig::striped(4)));
    }

    #[test]
    fn flatflash_p_multi_queue_splits_multi_page_transfers() {
        let mut single = FlatFlashPlatform::persistent();
        let mut striped = FlatFlashPlatform::persistent();
        assert!(striped.configure_queues(QueueConfig::striped(4)));
        // Populate the span so reads touch programmed pages.
        let mut t_s = Nanos::ZERO;
        let mut t_m = Nanos::ZERO;
        for i in 0..8u64 {
            let w = acc(i * 4096, true, 4096);
            t_s = single.access(&w, t_s).finished_at;
            t_m = striped.access(&w, t_m).finished_at;
        }
        // A 16 KB transfer spans four flash pages: the striped platform walks
        // them with four concurrent commands.
        let big = acc(0, false, 16 * 1024);
        let s = single.access(&big, t_s).latency(t_s);
        let m = striped.access(&big, t_m).latency(t_m);
        assert!(
            m < s,
            "striped multi-page MMIO ({m}) should beat the single command ({s})"
        );
    }

    #[test]
    fn optane_m_caches_and_loses_persistence() {
        let mut p = OptanePlatform::memory_mode(1 << 20);
        let a = p.access(&acc(0, false, 64), Nanos::ZERO);
        let b = p.access(&acc(64, false, 64), a.finished_at);
        assert!(b.latency(a.finished_at) < a.latency(Nanos::ZERO));
        assert!(!p.is_persistent());
    }

    #[test]
    fn nvdimm_c_migration_penalty_dominates_misses() {
        let mut p = NvdimmCPlatform::new(1 << 20);
        let miss = p.access(&acc(0, false, 64), Nanos::ZERO);
        assert!(miss.latency(Nanos::ZERO) >= NvdimmCPlatform::REFRESH_MIGRATION_PENALTY);
        let hit = p.access(&acc(64, false, 64), miss.finished_at);
        assert!(hit.latency(miss.finished_at) < Nanos::from_micros(1));
    }

    #[test]
    fn oracle_serves_everything_at_dram_speed() {
        let mut p = OraclePlatform::new();
        let o = p.access(&acc(123 << 20, true, 64), Nanos::ZERO);
        assert!(o.latency(Nanos::ZERO) < Nanos::from_nanos(200));
        assert_eq!(p.hit_rate(), Some(1.0));
        assert!(p.is_persistent());
        assert!(p.device_energy(Nanos::from_millis(1)).total_joules() > 0.0);
    }
}
