//! An O(log n) LRU page cache used by the software-managed platforms
//! (the OS page cache of `mmap`, the host-side caches of `flatflash-M`,
//! `optane-M` and `nvdimm-C`).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Result of offering an access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// The page was resident.
    Hit,
    /// The page was installed without evicting anything.
    MissInstalled,
    /// The page was installed and a clean page was evicted.
    MissEvictClean {
        /// The evicted page.
        victim: u64,
    },
    /// The page was installed and a dirty page was evicted (needs write-back).
    MissEvictDirty {
        /// The evicted dirty page.
        victim: u64,
    },
}

impl CacheOutcome {
    /// Returns `true` for the hit case.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Counters maintained by the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// A true-LRU page cache with O(log n) operations.
///
/// # Example
///
/// ```
/// use hams_platforms::cache::{CacheOutcome, LruPageCache};
///
/// let mut cache = LruPageCache::new(2);
/// assert_eq!(cache.access(1, false), CacheOutcome::MissInstalled);
/// assert_eq!(cache.access(1, true), CacheOutcome::Hit);
/// cache.access(2, false);
/// // Page 1 is dirty and least recently used after touching page 2 twice.
/// cache.access(2, false);
/// assert_eq!(cache.access(3, false), CacheOutcome::MissEvictDirty { victim: 1 });
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LruPageCache {
    capacity: usize,
    // page -> (tick, dirty)
    resident: HashMap<u64, (u64, bool)>,
    // tick -> page (ticks are unique)
    order: BTreeMap<u64, u64>,
    tick: u64,
    stats: CacheStats,
}

impl LruPageCache {
    /// Creates a cache holding up to `capacity` pages.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruPageCache {
            capacity,
            resident: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Returns `true` when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Returns `true` if `page` is resident (without touching recency).
    #[must_use]
    pub fn contains(&self, page: u64) -> bool {
        self.resident.contains_key(&page)
    }

    /// Offers an access to `page`; installs it on a miss, evicting the LRU
    /// page if the cache is full. `is_write` dirties the page.
    pub fn access(&mut self, page: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_tick, dirty)) = self.resident.get_mut(&page) {
            self.order.remove(&std::mem::replace(old_tick, tick));
            self.order.insert(tick, page);
            *dirty = *dirty || is_write;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        self.stats.misses += 1;
        if self.capacity == 0 {
            return CacheOutcome::MissInstalled;
        }
        let mut outcome = CacheOutcome::MissInstalled;
        if self.resident.len() >= self.capacity {
            if let Some((&lru_tick, &victim)) = self.order.iter().next() {
                self.order.remove(&lru_tick);
                let (_, was_dirty) = self.resident.remove(&victim).unwrap_or((0, false));
                outcome = if was_dirty {
                    self.stats.dirty_evictions += 1;
                    CacheOutcome::MissEvictDirty { victim }
                } else {
                    CacheOutcome::MissEvictClean { victim }
                };
            }
        }
        self.resident.insert(page, (tick, is_write));
        self.order.insert(tick, page);
        outcome
    }

    /// Dirty pages currently resident, in ascending page order.
    #[must_use]
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .resident
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(&p, _)| p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Marks every resident page clean (e.g. after an `msync`-style flush).
    pub fn clean_all(&mut self) {
        for (_, d) in self.resident.values_mut() {
            *d = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_is_respected() {
        let mut c = LruPageCache::new(3);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false);
        c.access(1, false); // refresh 1; LRU is now 2
        assert_eq!(
            c.access(4, false),
            CacheOutcome::MissEvictClean { victim: 2 }
        );
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_evictions_are_reported() {
        let mut c = LruPageCache::new(1);
        c.access(10, true);
        assert_eq!(
            c.access(11, false),
            CacheOutcome::MissEvictDirty { victim: 10 }
        );
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn hit_rate_and_len() {
        let mut c = LruPageCache::new(8);
        for i in 0..8u64 {
            c.access(i, false);
        }
        for i in 0..8u64 {
            assert!(c.access(i, false).is_hit());
        }
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn dirty_pages_and_clean_all() {
        let mut c = LruPageCache::new(4);
        c.access(1, true);
        c.access(2, false);
        c.access(3, true);
        assert_eq!(c.dirty_pages(), vec![1, 3]);
        c.clean_all();
        assert!(c.dirty_pages().is_empty());
    }

    #[test]
    fn zero_capacity_cache_never_hits() {
        let mut c = LruPageCache::new(0);
        assert_eq!(c.access(1, false), CacheOutcome::MissInstalled);
        assert_eq!(c.access(1, false), CacheOutcome::MissInstalled);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn large_cache_stays_fast_under_many_accesses() {
        let mut c = LruPageCache::new(10_000);
        for i in 0..100_000u64 {
            c.access(i % 8_000, i % 3 == 0);
        }
        assert!(c.len() <= 10_000);
        assert!(c.stats().hits > 0);
    }
}
