//! The experiment runner: executes a Table III workload on a platform and
//! produces every metric the paper's figures report.

use hams_core::{AttachMode, PersistMode};
use hams_energy::{EnergyAccount, PowerParams};
use hams_flash::SsdConfig;
use hams_host::{CpuConfig, CpuModel};
use hams_sim::{LatencyBreakdown, Nanos};
use hams_workloads::{TraceGenerator, WorkloadClass, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::direct::{FlatFlashPlatform, NvdimmCPlatform, OptanePlatform, OraclePlatform};
use crate::hams::HamsPlatform;
use crate::mmap::MmapPlatform;
use crate::platform::Platform;

/// Number of MoS accesses that constitute one SQLite "operation" when
/// converting access throughput into the ops/s metric of Fig. 16b.
pub const ACCESSES_PER_SQL_OP: u64 = 128;

/// The metrics produced by one (platform, workload) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Platform name (figure legend).
    pub platform: String,
    /// Workload name (figure x-axis).
    pub workload: String,
    /// Memory accesses replayed.
    pub accesses: u64,
    /// Instructions retired (memory plus compute).
    pub instructions: u64,
    /// Total simulated execution time.
    pub total_time: Nanos,
    /// Execution-time breakdown (`app`, `os`, `ssd`) — Fig. 7a and Fig. 17.
    pub exec_breakdown: LatencyBreakdown,
    /// Memory-delay breakdown (`nvdimm`, `dma`, `ssd`) — Fig. 10a and Fig. 18.
    pub memory_delay: LatencyBreakdown,
    /// Whole-system energy (`cpu`, `nvdimm`, `internal_dram`, `znand`) — Fig. 19.
    pub energy: EnergyAccount,
    /// Effective instructions per cycle — Fig. 7b.
    pub ipc: f64,
    /// Application throughput in pages per second — Fig. 16a.
    pub pages_per_sec: f64,
    /// Application throughput in operations per second — Fig. 16b.
    pub ops_per_sec: f64,
    /// Fast-tier (page cache / NVDIMM) hit rate, if the platform has one.
    pub hit_rate: Option<f64>,
}

impl RunMetrics {
    /// Throughput in the unit the paper plots for this workload class:
    /// K pages/s for microbenchmark and Rodinia workloads, ops/s for SQLite.
    #[must_use]
    pub fn paper_throughput(&self, class: WorkloadClass) -> f64 {
        match class {
            WorkloadClass::Sqlite => self.ops_per_sec,
            _ => self.pages_per_sec / 1_000.0,
        }
    }
}

/// How much the full-scale experiment is shrunk so it runs in seconds.
///
/// Capacities (DRAM/NVDIMM caches) and dataset footprints are divided by
/// `capacity_divisor`, which preserves the cache-to-dataset ratio and hence
/// hit rates; the number of replayed accesses is capped at `accesses`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleProfile {
    /// Factor by which capacities and dataset sizes are divided.
    pub capacity_divisor: u64,
    /// Number of accesses replayed per run.
    pub accesses: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleProfile {
    /// The profile used by the figure benches: 1/256 capacities,
    /// 60 000 accesses.
    #[must_use]
    pub fn bench_default() -> Self {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 60_000,
            seed: 42,
        }
    }

    /// A very small profile for unit and integration tests.
    #[must_use]
    pub fn test_tiny() -> Self {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 4_000,
            seed: 7,
        }
    }

    /// The scaled DRAM / NVDIMM cache capacity (8 GB full scale).
    #[must_use]
    pub fn cache_bytes(&self) -> u64 {
        (8u64 * 1024 * 1024 * 1024 / self.capacity_divisor).max(4 * 1024 * 1024)
    }

    /// The scaled SSD-internal DRAM capacity (512 MB full scale).
    #[must_use]
    pub fn ssd_dram_bytes(&self) -> u64 {
        (512u64 * 1024 * 1024 / self.capacity_divisor).max(64 * 4096)
    }

    /// Scales a workload's dataset, keeping at least four cache's worth so
    /// misses still occur for the larger datasets.
    #[must_use]
    pub fn scale_spec(&self, spec: WorkloadSpec) -> WorkloadSpec {
        let scaled = (spec.dataset_bytes / self.capacity_divisor).max(spec.access_bytes * 16);
        spec.with_dataset_bytes(scaled)
    }
}

/// The eleven platforms of §VI-A (Fig. 16's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// MMF baseline over ULL-Flash.
    Mmap,
    /// FlatFlash, persistent (direct MMIO).
    FlatFlashP,
    /// FlatFlash with host-memory caching.
    FlatFlashM,
    /// NVDIMM-C (flash on the memory channel, refresh-window migration).
    NvdimmC,
    /// Optane DC PMM in App Direct mode.
    OptaneP,
    /// Optane DC PMM behind a DRAM cache.
    OptaneM,
    /// Loosely-coupled HAMS, persist mode.
    HamsLP,
    /// Loosely-coupled HAMS, extend mode.
    HamsLE,
    /// Tightly-integrated HAMS, persist mode.
    HamsTP,
    /// Tightly-integrated HAMS, extend mode.
    HamsTE,
    /// 512 GB NVDIMM oracle.
    Oracle,
}

impl PlatformKind {
    /// Every platform, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> Vec<PlatformKind> {
        vec![
            PlatformKind::Mmap,
            PlatformKind::FlatFlashP,
            PlatformKind::FlatFlashM,
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::NvdimmC,
            PlatformKind::OptaneP,
            PlatformKind::OptaneM,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
            PlatformKind::Oracle,
        ]
    }

    /// The subset compared in Fig. 17 and Fig. 19 (mmap plus the HAMS modes).
    #[must_use]
    pub fn breakdown_set() -> Vec<PlatformKind> {
        vec![
            PlatformKind::Mmap,
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
        ]
    }

    /// The HAMS-only subset of Fig. 18.
    #[must_use]
    pub fn hams_set() -> Vec<PlatformKind> {
        vec![
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
        ]
    }

    /// The platform's name as used in figure legends.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::Mmap => "mmap",
            PlatformKind::FlatFlashP => "flatflash-P",
            PlatformKind::FlatFlashM => "flatflash-M",
            PlatformKind::NvdimmC => "nvdimm-C",
            PlatformKind::OptaneP => "optane-P",
            PlatformKind::OptaneM => "optane-M",
            PlatformKind::HamsLP => "hams-LP",
            PlatformKind::HamsLE => "hams-LE",
            PlatformKind::HamsTP => "hams-TP",
            PlatformKind::HamsTE => "hams-TE",
            PlatformKind::Oracle => "oracle",
        }
    }

    /// Builds the platform with caches sized by `scale`.
    #[must_use]
    pub fn build(&self, scale: &ScaleProfile) -> Box<dyn Platform> {
        let cache = scale.cache_bytes();
        let ssd_dram = scale.ssd_dram_bytes();
        let scaled_ull = || {
            let mut cfg = SsdConfig::ull_flash();
            cfg.dram_capacity_bytes = ssd_dram;
            cfg
        };
        match self {
            PlatformKind::Mmap => Box::new(MmapPlatform::new("mmap", scaled_ull(), cache)),
            PlatformKind::FlatFlashP => {
                Box::new(FlatFlashPlatform::persistent().with_ssd_dram_bytes(ssd_dram))
            }
            PlatformKind::FlatFlashM => {
                Box::new(FlatFlashPlatform::memory_cached(cache).with_ssd_dram_bytes(ssd_dram))
            }
            PlatformKind::NvdimmC => Box::new(NvdimmCPlatform::new(cache).with_ssd_dram_bytes(ssd_dram)),
            PlatformKind::OptaneP => Box::new(OptanePlatform::app_direct()),
            PlatformKind::OptaneM => Box::new(OptanePlatform::memory_mode(cache)),
            PlatformKind::HamsLP => Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Persist,
                cache,
            )),
            PlatformKind::HamsLE => Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Extend,
                cache,
            )),
            PlatformKind::HamsTP => Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Persist,
                cache,
            )),
            PlatformKind::HamsTE => Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Extend,
                cache,
            )),
            PlatformKind::Oracle => Box::new(OraclePlatform::new()),
        }
    }
}

/// Runs one workload on one platform and gathers metrics.
pub fn run_workload(platform: &mut dyn Platform, spec: WorkloadSpec, scale: &ScaleProfile) -> RunMetrics {
    let scaled = scale.scale_spec(spec);
    let mut cpu = CpuModel::new(CpuConfig::paper_default());
    let power = PowerParams::paper_default();
    let mut t = Nanos::ZERO;
    let mut exec = LatencyBreakdown::new();
    let mut accesses = 0u64;

    for access in TraceGenerator::new(scaled, scale.seed, scale.accesses) {
        accesses += 1;
        // Compute phase between memory accesses.
        let compute = cpu.retire(access.compute_instructions + 1);
        exec.add("app", compute);
        t += compute;
        // Memory access.
        let outcome = platform.access(&access, t);
        let stall = outcome.latency(t);
        cpu.stall(stall);
        exec.add("os", outcome.os_time);
        exec.add("ssd", outcome.ssd_time);
        exec.add("app", stall.saturating_sub(outcome.os_time + outcome.ssd_time));
        t = outcome.finished_at;
    }

    let mut energy = platform.device_energy(t);
    energy.add_power("cpu", power.cpu_active_watts, cpu.compute_time());
    energy.add_power("cpu", power.cpu_idle_watts, cpu.stall_time());

    let secs = t.as_secs_f64().max(1e-12);
    let bytes_touched = accesses * scaled.access_bytes;
    let pages_per_sec = bytes_touched as f64 / 4096.0 / secs;
    let ops_per_sec = accesses as f64 / ACCESSES_PER_SQL_OP as f64 / secs;

    RunMetrics {
        platform: platform.name().to_owned(),
        workload: spec.name.to_owned(),
        accesses,
        instructions: cpu.instructions(),
        total_time: t,
        exec_breakdown: exec,
        memory_delay: platform.memory_delay(),
        energy,
        ipc: cpu.ipc(),
        pages_per_sec,
        ops_per_sec,
        hit_rate: platform.hit_rate(),
    }
}

/// Runs one workload across a set of platforms.
pub fn run_matrix(
    kinds: &[PlatformKind],
    spec: WorkloadSpec,
    scale: &ScaleProfile,
) -> Vec<RunMetrics> {
    kinds
        .iter()
        .map(|k| {
            let mut platform = k.build(scale);
            run_workload(platform.as_mut(), spec, scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scale() -> ScaleProfile {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 1_500,
            seed: 3,
        }
    }

    #[test]
    fn all_platforms_run_every_workload_class() {
        let scale = quick_scale();
        for name in ["rndWr", "rndSel", "KMN"] {
            let spec = WorkloadSpec::by_name(name).unwrap();
            for kind in PlatformKind::all() {
                let mut platform = kind.build(&scale);
                let m = run_workload(platform.as_mut(), spec, &scale);
                assert_eq!(m.accesses, scale.accesses as u64);
                assert!(m.total_time > Nanos::ZERO, "{name} on {} took no time", kind.label());
                assert!(m.pages_per_sec > 0.0);
                assert!(m.energy.total_joules() > 0.0);
            }
        }
    }

    #[test]
    fn hams_te_outperforms_mmap() {
        let scale = ScaleProfile {
            capacity_divisor: 1024,
            accesses: 6_000,
            seed: 11,
        };
        let spec = WorkloadSpec::by_name("rndWr").unwrap();
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let mut te = PlatformKind::HamsTE.build(&scale);
        let m = run_workload(mmap.as_mut(), spec, &scale);
        let h = run_workload(te.as_mut(), spec, &scale);
        assert!(
            h.pages_per_sec > m.pages_per_sec,
            "hams-TE ({:.0}) should beat mmap ({:.0}) pages/s",
            h.pages_per_sec,
            m.pages_per_sec
        );
        assert!(h.ipc > m.ipc);
    }

    #[test]
    fn oracle_is_the_upper_bound_among_hams_and_mmap() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("seqRd").unwrap();
        let results = run_matrix(
            &[PlatformKind::Mmap, PlatformKind::HamsTE, PlatformKind::Oracle],
            spec,
            &scale,
        );
        let oracle = results.iter().find(|r| r.platform == "oracle").unwrap();
        for r in &results {
            assert!(
                oracle.pages_per_sec >= r.pages_per_sec * 0.99,
                "{} ({:.0}) beat the oracle ({:.0})",
                r.platform,
                r.pages_per_sec,
                oracle.pages_per_sec
            );
        }
    }

    #[test]
    fn mmap_execution_is_dominated_by_software_overhead() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("rndRd").unwrap();
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let m = run_workload(mmap.as_mut(), spec, &scale);
        let os_fraction = m.exec_breakdown.fraction("os");
        assert!(
            os_fraction > 0.3,
            "mmap OS fraction was only {os_fraction:.2}; the paper reports ~69%"
        );
    }

    #[test]
    fn persist_mode_is_slower_than_extend_mode() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("update").unwrap();
        let results = run_matrix(&[PlatformKind::HamsTP, PlatformKind::HamsTE], spec, &scale);
        assert!(results[1].ops_per_sec >= results[0].ops_per_sec);
    }

    #[test]
    fn scale_profile_preserves_ratios() {
        let scale = ScaleProfile::bench_default();
        let spec = WorkloadSpec::by_name("seqRd").unwrap();
        let scaled = scale.scale_spec(spec);
        let full_ratio = spec.dataset_bytes as f64 / (8.0 * 1024.0 * 1024.0 * 1024.0);
        let scaled_ratio = scaled.dataset_bytes as f64 / scale.cache_bytes() as f64;
        assert!((full_ratio - scaled_ratio).abs() < 0.05 * full_ratio.max(scaled_ratio));
    }

    #[test]
    fn paper_throughput_selects_the_right_unit() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("seqSel").unwrap();
        let mut oracle = PlatformKind::Oracle.build(&scale);
        let m = run_workload(oracle.as_mut(), spec, &scale);
        assert!((m.paper_throughput(WorkloadClass::Sqlite) - m.ops_per_sec).abs() < 1e-9);
        assert!(
            (m.paper_throughput(WorkloadClass::Microbench) - m.pages_per_sec / 1000.0).abs() < 1e-9
        );
    }
}
