//! The experiment runner: executes a Table III workload on a platform and
//! produces every metric the paper's figures report.

use hams_energy::{EnergyAccount, PowerParams};
use hams_host::{CpuConfig, CpuModel};
use hams_sim::{parallel_map, ComponentId, LatencyBreakdown, Nanos};
use hams_telemetry::{Layer, RunTelemetry, Span, TelemetrySink, TraceSink};
use hams_workloads::{TraceGenerator, WorkloadClass, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::platform::{BatchOutcome, BatchRequest, Platform};
use crate::registry::{standard_registry, PlatformRegistry};

/// Number of MoS accesses that constitute one SQLite "operation" when
/// converting access throughput into the ops/s metric of Fig. 16b.
pub const ACCESSES_PER_SQL_OP: u64 = 128;

/// The metrics produced by one (platform, workload) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Platform name (figure legend).
    pub platform: String,
    /// Workload name (figure x-axis).
    pub workload: String,
    /// Memory accesses replayed.
    pub accesses: u64,
    /// Instructions retired (memory plus compute).
    pub instructions: u64,
    /// Total simulated execution time.
    pub total_time: Nanos,
    /// Execution-time breakdown (`app`, `os`, `ssd`) — Fig. 7a and Fig. 17.
    pub exec_breakdown: LatencyBreakdown,
    /// Memory-delay breakdown (`nvdimm`, `dma`, `ssd`) — Fig. 10a and Fig. 18.
    pub memory_delay: LatencyBreakdown,
    /// Whole-system energy (`cpu`, `nvdimm`, `internal_dram`, `znand`) — Fig. 19.
    pub energy: EnergyAccount,
    /// Effective instructions per cycle — Fig. 7b.
    pub ipc: f64,
    /// Application throughput in pages per second — Fig. 16a.
    pub pages_per_sec: f64,
    /// Application throughput in operations per second — Fig. 16b.
    pub ops_per_sec: f64,
    /// Fast-tier (page cache / NVDIMM) hit rate, if the platform has one.
    pub hit_rate: Option<f64>,
}

impl RunMetrics {
    /// Throughput in the unit the paper plots for this workload class:
    /// K pages/s for microbenchmark and Rodinia workloads, ops/s for SQLite.
    #[must_use]
    pub fn paper_throughput(&self, class: WorkloadClass) -> f64 {
        match class {
            WorkloadClass::Sqlite => self.ops_per_sec,
            _ => self.pages_per_sec / 1_000.0,
        }
    }
}

/// How much the full-scale experiment is shrunk so it runs in seconds.
///
/// Capacities (DRAM/NVDIMM caches) and dataset footprints are divided by
/// `capacity_divisor`, which preserves the cache-to-dataset ratio and hence
/// hit rates; the number of replayed accesses is capped at `accesses`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleProfile {
    /// Factor by which capacities and dataset sizes are divided.
    pub capacity_divisor: u64,
    /// Number of accesses replayed per run.
    pub accesses: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleProfile {
    /// The profile used by the figure benches: 1/256 capacities,
    /// 60 000 accesses.
    #[must_use]
    pub fn bench_default() -> Self {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 60_000,
            seed: 42,
        }
    }

    /// A very small profile for unit and integration tests.
    #[must_use]
    pub fn test_tiny() -> Self {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 4_000,
            seed: 7,
        }
    }

    /// The scaled DRAM / NVDIMM cache capacity (8 GB full scale).
    #[must_use]
    pub fn cache_bytes(&self) -> u64 {
        (8u64 * 1024 * 1024 * 1024 / self.capacity_divisor).max(4 * 1024 * 1024)
    }

    /// The scaled SSD-internal DRAM capacity (512 MB full scale).
    #[must_use]
    pub fn ssd_dram_bytes(&self) -> u64 {
        (512u64 * 1024 * 1024 / self.capacity_divisor).max(64 * 4096)
    }

    /// Scales a workload's dataset, keeping at least four cache's worth so
    /// misses still occur for the larger datasets.
    #[must_use]
    pub fn scale_spec(&self, spec: WorkloadSpec) -> WorkloadSpec {
        let scaled = (spec.dataset_bytes / self.capacity_divisor).max(spec.access_bytes * 16);
        spec.with_dataset_bytes(scaled)
    }
}

/// The eleven platforms of §VI-A (Fig. 16's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// MMF baseline over ULL-Flash.
    Mmap,
    /// FlatFlash, persistent (direct MMIO).
    FlatFlashP,
    /// FlatFlash with host-memory caching.
    FlatFlashM,
    /// NVDIMM-C (flash on the memory channel, refresh-window migration).
    NvdimmC,
    /// Optane DC PMM in App Direct mode.
    OptaneP,
    /// Optane DC PMM behind a DRAM cache.
    OptaneM,
    /// Loosely-coupled HAMS, persist mode.
    HamsLP,
    /// Loosely-coupled HAMS, extend mode.
    HamsLE,
    /// Tightly-integrated HAMS, persist mode.
    HamsTP,
    /// Tightly-integrated HAMS, extend mode.
    HamsTE,
    /// 512 GB NVDIMM oracle.
    Oracle,
}

impl PlatformKind {
    /// Every platform, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> Vec<PlatformKind> {
        vec![
            PlatformKind::Mmap,
            PlatformKind::FlatFlashP,
            PlatformKind::FlatFlashM,
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::NvdimmC,
            PlatformKind::OptaneP,
            PlatformKind::OptaneM,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
            PlatformKind::Oracle,
        ]
    }

    /// The subset compared in Fig. 17 and Fig. 19 (mmap plus the HAMS modes).
    #[must_use]
    pub fn breakdown_set() -> Vec<PlatformKind> {
        vec![
            PlatformKind::Mmap,
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
        ]
    }

    /// The HAMS-only subset of Fig. 18.
    #[must_use]
    pub fn hams_set() -> Vec<PlatformKind> {
        vec![
            PlatformKind::HamsLP,
            PlatformKind::HamsLE,
            PlatformKind::HamsTP,
            PlatformKind::HamsTE,
        ]
    }

    /// The platform's name as used in figure legends.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::Mmap => "mmap",
            PlatformKind::FlatFlashP => "flatflash-P",
            PlatformKind::FlatFlashM => "flatflash-M",
            PlatformKind::NvdimmC => "nvdimm-C",
            PlatformKind::OptaneP => "optane-P",
            PlatformKind::OptaneM => "optane-M",
            PlatformKind::HamsLP => "hams-LP",
            PlatformKind::HamsLE => "hams-LE",
            PlatformKind::HamsTP => "hams-TP",
            PlatformKind::HamsTE => "hams-TE",
            PlatformKind::Oracle => "oracle",
        }
    }

    /// Builds the platform with caches sized by `scale`.
    ///
    /// Construction is delegated to the shared
    /// [`standard_registry`](crate::registry::standard_registry); the
    /// registry — not this enum — is the extension point for new systems.
    #[must_use]
    pub fn build(&self, scale: &ScaleProfile) -> Box<dyn Platform> {
        standard_registry()
            .build(self.label(), scale)
            .expect("every PlatformKind label is pre-registered")
    }
}

/// Number of accesses handed to [`Platform::serve_batch`] per call by
/// [`run_workload`]. Large enough to amortize per-batch setup, small enough
/// that the request buffer stays cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Shared metric-folding state for the serial, batched and open-loop serving
/// paths.
pub(crate) struct MetricsFold {
    pub(crate) cpu: CpuModel,
    exec: LatencyBreakdown,
    accesses: u64,
    pub(crate) now: Nanos,
}

impl MetricsFold {
    pub(crate) fn new() -> Self {
        MetricsFold {
            cpu: CpuModel::new(CpuConfig::paper_default()),
            exec: LatencyBreakdown::new(),
            accesses: 0,
            now: Nanos::ZERO,
        }
    }

    /// Accounts one served access: the compute phase that preceded it and
    /// the stall its outcome caused. `outcome` must come from an access
    /// issued at `self.now + compute`.
    fn fold(&mut self, compute: Nanos, outcome: &crate::platform::AccessOutcome) {
        let ready = self.now;
        self.fold_from(ready, compute, outcome);
    }

    /// [`MetricsFold::fold`] with an explicit core-ready instant. The
    /// closed-loop paths always resume at `self.now` (the previous access's
    /// finish); the open-loop driver resumes each request at its dispatch
    /// instant, which can sit past `now` while the server idles waiting for
    /// an arrival. `outcome` must come from an access issued at
    /// `ready + compute`.
    pub(crate) fn fold_from(
        &mut self,
        ready: Nanos,
        compute: Nanos,
        outcome: &crate::platform::AccessOutcome,
    ) {
        self.accesses += 1;
        self.exec.add(ComponentId::APP, compute);
        let issued_at = ready + compute;
        let stall = outcome.latency(issued_at);
        self.cpu.stall(stall);
        self.exec.add(ComponentId::OS, outcome.os_time);
        self.exec.add(ComponentId::SSD, outcome.ssd_time);
        self.exec.add(
            ComponentId::APP,
            stall.saturating_sub(outcome.os_time + outcome.ssd_time),
        );
        self.now = outcome.finished_at;
    }

    /// Finalizes the run into the paper's metrics.
    pub(crate) fn finish(
        self,
        platform: &dyn Platform,
        spec: WorkloadSpec,
        scaled: WorkloadSpec,
    ) -> RunMetrics {
        let MetricsFold {
            cpu,
            exec,
            accesses,
            now: t,
        } = self;
        let power = PowerParams::paper_default();
        let mut energy = platform.device_energy(t);
        energy.add_power("cpu", power.cpu_active_watts, cpu.compute_time());
        energy.add_power("cpu", power.cpu_idle_watts, cpu.stall_time());

        let secs = t.as_secs_f64().max(1e-12);
        let bytes_touched = accesses * scaled.access_bytes;
        let pages_per_sec = bytes_touched as f64 / 4096.0 / secs;
        let ops_per_sec = accesses as f64 / ACCESSES_PER_SQL_OP as f64 / secs;

        RunMetrics {
            platform: platform.name().to_owned(),
            workload: spec.name.to_owned(),
            accesses,
            instructions: cpu.instructions(),
            total_time: t,
            exec_breakdown: exec,
            memory_delay: platform.memory_delay(),
            energy,
            ipc: cpu.ipc(),
            pages_per_sec,
            ops_per_sec,
            hit_rate: platform.hit_rate(),
        }
    }
}

/// Runs one workload on one platform and gathers metrics.
///
/// The trace is served through [`Platform::serve_batch`] in chunks of
/// [`DEFAULT_BATCH_SIZE`], which produces metrics byte-identical to the
/// per-access reference path ([`run_workload_serial`]) while letting
/// hardware-automated platforms amortize per-access setup.
pub fn run_workload(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
) -> RunMetrics {
    run_workload_batched(platform, spec, scale, DEFAULT_BATCH_SIZE)
}

/// [`run_workload`] with an explicit batch size (`0` is treated as `1`).
pub fn run_workload_batched(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    batch_size: usize,
) -> RunMetrics {
    let batch_size = batch_size.max(1);
    let scaled = scale.scale_spec(spec);
    let mut fold = MetricsFold::new();
    let mut trace = TraceGenerator::new(scaled, scale.seed, scale.accesses);
    // A batch can never outgrow the trace, so cap the buffer reservations.
    // Both the request and the outcome buffer are reused across every batch
    // of the replay ([`Platform::serve_batch_into`]'s scratch contract), so
    // the serving loop allocates nothing after warm-up.
    let mut batch: Vec<BatchRequest> = Vec::with_capacity(batch_size.min(scale.accesses));
    let mut result = BatchOutcome::with_capacity(batch_size.min(scale.accesses));

    loop {
        batch.clear();
        while batch.len() < batch_size {
            let Some(access) = trace.next() else { break };
            // Compute phase between memory accesses, priced by the runner's
            // CPU model so platforms never see instruction counts.
            let compute = fold.cpu.retire(access.compute_instructions + 1);
            batch.push(BatchRequest { access, compute });
        }
        if batch.is_empty() {
            break;
        }
        platform.serve_batch_into(&batch, fold.now, &mut result);
        assert_eq!(
            result.outcomes.len(),
            batch.len(),
            "{} returned {} outcomes for a batch of {}",
            platform.name(),
            result.outcomes.len(),
            batch.len()
        );
        for (request, outcome) in batch.iter().zip(&result.outcomes) {
            fold.fold(request.compute, outcome);
        }
    }

    fold.finish(platform, spec, scaled)
}

/// [`run_workload`] with telemetry collection.
///
/// Installs a recording sink on the platform (HAMS platforms emit
/// controller / tag-array / NVMe / MSI / archive spans; platforms without a
/// hardware controller ignore the sink), emits a [`Layer::Request`] span per
/// served access, and samples the platform's telemetry gauges into
/// `telemetry.registry` once per dispatched batch. Tracing is observation
/// only: the returned metrics are byte-identical to [`run_workload`]
/// (`tests/telemetry_equivalence.rs` pins this on every platform).
pub fn run_workload_traced(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    telemetry: &mut RunTelemetry,
) -> RunMetrics {
    platform.configure_trace(TelemetrySink::recording(telemetry.recorder.capacity()));
    let batch_size = DEFAULT_BATCH_SIZE;
    let scaled = scale.scale_spec(spec);
    let mut fold = MetricsFold::new();
    let mut trace = TraceGenerator::new(scaled, scale.seed, scale.accesses);
    let mut batch: Vec<BatchRequest> = Vec::with_capacity(batch_size.min(scale.accesses));
    let mut result = BatchOutcome::with_capacity(batch_size.min(scale.accesses));
    let mut gauges: Vec<(&'static str, f64)> = Vec::new();

    loop {
        batch.clear();
        while batch.len() < batch_size {
            let Some(access) = trace.next() else { break };
            let compute = fold.cpu.retire(access.compute_instructions + 1);
            batch.push(BatchRequest { access, compute });
        }
        if batch.is_empty() {
            break;
        }
        platform.serve_batch_into(&batch, fold.now, &mut result);
        assert_eq!(
            result.outcomes.len(),
            batch.len(),
            "{} returned {} outcomes for a batch of {}",
            platform.name(),
            result.outcomes.len(),
            batch.len()
        );
        for (request, outcome) in batch.iter().zip(&result.outcomes) {
            let issued_at = fold.now + request.compute;
            telemetry.recorder.record(
                Span::new(Layer::Request, "access", issued_at, outcome.finished_at)
                    .with_request(request.access.addr / 4096),
            );
            fold.fold(request.compute, outcome);
        }
        telemetry
            .registry
            .counter("accesses_served", fold.now, fold.accesses as f64);
        sample_platform_gauges(platform, fold.now, &mut gauges, &mut telemetry.registry);
    }

    drain_platform_spans(platform, telemetry);
    fold.finish(platform, spec, scaled)
}

/// Samples every gauge a platform exposes via
/// [`Platform::telemetry_gauges`] into `registry` at simulated instant `at`,
/// reusing `scratch` so the sampling path allocates nothing after warm-up.
pub(crate) fn sample_platform_gauges(
    platform: &dyn Platform,
    at: Nanos,
    scratch: &mut Vec<(&'static str, f64)>,
    registry: &mut hams_telemetry::MetricsRegistry,
) {
    scratch.clear();
    platform.telemetry_gauges(scratch);
    for (name, value) in scratch.drain(..) {
        registry.gauge(name, at, value);
    }
}

/// Moves the spans the platform's own sink collected (controller, tag array,
/// NVMe, MSI, archive) into the run-level recorder.
pub(crate) fn drain_platform_spans(platform: &mut dyn Platform, telemetry: &mut RunTelemetry) {
    let mut drained: Vec<Span> = Vec::new();
    platform.take_trace_spans(&mut drained);
    for span in drained {
        telemetry.recorder.record(span);
    }
}

/// [`run_workload`] with the platform opted into a multi-queue NVMe shape
/// before any access is served. The pinned contract for multi-queue serving:
/// this batched path must be byte-identical to
/// [`run_workload_serial_mq`] with the same `queues`, at every batch size
/// and `HAMS_THREADS` setting. Platforms without an NVMe queue model ignore
/// the configuration and keep their single-queue behaviour, in which case
/// both paths also still match the PR 1 single-queue reference
/// ([`run_workload_serial`]).
pub fn run_workload_mq(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    queues: hams_nvme::QueueConfig,
) -> RunMetrics {
    platform.configure_queues(queues);
    run_workload(platform, spec, scale)
}

/// The multi-queue serial reference: a single-threaded per-access loop over
/// a platform opted into `queues`. Because striped fills and MSI coalescing
/// legitimately change simulated latencies, multi-queue serving is *not*
/// expected to match [`run_workload_serial`]; it is pinned against this
/// loop instead (see `tests/multiqueue_equivalence.rs`).
pub fn run_workload_serial_mq(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    queues: hams_nvme::QueueConfig,
) -> RunMetrics {
    platform.configure_queues(queues);
    run_workload_serial(platform, spec, scale)
}

/// [`run_workload`] with the platform's MoS tag directory repartitioned into
/// `shards` banks before any access is served. The pinned contract is
/// stricter than the multi-queue one: the shard shape is pure routing, so
/// this must be byte-identical to [`run_workload`] *and*
/// [`run_workload_serial`] with no shard configuration at all, for every
/// platform, shard count and hash policy (`tests/shard_equivalence.rs`).
/// Platforms without a hardware tag cache ignore the configuration.
pub fn run_workload_sharded(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    shards: hams_core::ShardConfig,
) -> RunMetrics {
    platform.configure_shards(shards);
    run_workload(platform, spec, scale)
}

/// The sharded serial reference: a single-threaded per-access loop over a
/// platform repartitioned into `shards` banks. Exists for symmetry with
/// [`run_workload_serial_mq`]; by the shard-invariance contract it must
/// match the unsharded [`run_workload_serial`] byte for byte.
pub fn run_workload_serial_sharded(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    shards: hams_core::ShardConfig,
) -> RunMetrics {
    platform.configure_shards(shards);
    run_workload_serial(platform, spec, scale)
}

/// [`run_workload`] with the platform opted into cell-parallel batch serving
/// on `cell_threads` scoped workers (`0` = the `HAMS_CELL_THREADS`
/// environment default) before any access is served. The pinned contract is
/// the strict one: the worker count is pure host-side parallelism — each
/// batch is classified bank-by-bank concurrently and its timing replayed
/// serially — so this must be byte-identical to [`run_workload`] *and*
/// [`run_workload_serial`] with no cell configuration at all, for every
/// platform and any worker count (`tests/cell_parallel_equivalence.rs`).
/// Platforms without a banked tag directory ignore the configuration.
pub fn run_workload_cell_parallel(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    cell_threads: usize,
) -> RunMetrics {
    platform.configure_cell_threads(cell_threads);
    run_workload(platform, spec, scale)
}

/// [`run_workload`] with the platform's archive backend re-shaped into
/// `topology` before any access is served. The pinned contract sits between
/// the multi-queue and shard ones: [`hams_core::BackendTopology::single`]
/// (and a one-device RAID-0) must be byte-identical to [`run_workload`] and
/// [`run_workload_serial`] with no backend configuration at all, for every
/// platform (`tests/backend_equivalence.rs`) — while multi-device shapes
/// legitimately change timing and are pinned against their own serial
/// reference ([`run_workload_serial_backend`]). Platforms without an
/// in-controller archive ignore the configuration.
pub fn run_workload_backend(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    topology: hams_core::BackendTopology,
) -> RunMetrics {
    platform.configure_backend(topology);
    run_workload(platform, spec, scale)
}

/// The backend serial reference: a single-threaded per-access loop over a
/// platform re-shaped into `topology`. Exists for symmetry with
/// [`run_workload_serial_mq`]; [`run_workload_backend`] must match it byte
/// for byte at every batch size and thread count.
pub fn run_workload_serial_backend(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    topology: hams_core::BackendTopology,
) -> RunMetrics {
    platform.configure_backend(topology);
    run_workload_serial(platform, spec, scale)
}

/// The per-access reference path: one [`Platform::access`] call per trace
/// entry, no batching. [`run_workload`] must match this byte-for-byte.
pub fn run_workload_serial(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
) -> RunMetrics {
    let scaled = scale.scale_spec(spec);
    let mut fold = MetricsFold::new();

    for access in TraceGenerator::new(scaled, scale.seed, scale.accesses) {
        let compute = fold.cpu.retire(access.compute_instructions + 1);
        let outcome = platform.access(&access, fold.now + compute);
        fold.fold(compute, &outcome);
    }

    fold.finish(platform, spec, scaled)
}

/// Runs one workload across a set of platforms, in parallel (one fully
/// independent simulation per platform). Results keep the order of `kinds`.
pub fn run_matrix(
    kinds: &[PlatformKind],
    spec: WorkloadSpec,
    scale: &ScaleProfile,
) -> Vec<RunMetrics> {
    run_grid(kinds, &[spec], scale)
}

/// Runs the full platform × workload grid in parallel.
///
/// Every cell is an independent simulation: its own platform instance, CPU
/// model and seeded trace generator, so the results are byte-identical to
/// [`run_grid_serial`] regardless of thread count or scheduling. Results are
/// ordered workload-major — all platforms for `specs[0]`, then `specs[1]`,
/// … — matching how the paper's figures group their bars.
pub fn run_grid(
    kinds: &[PlatformKind],
    specs: &[WorkloadSpec],
    scale: &ScaleProfile,
) -> Vec<RunMetrics> {
    let labels: Vec<&str> = kinds.iter().map(PlatformKind::label).collect();
    run_grid_with(standard_registry(), &labels, specs, scale)
}

/// [`run_grid`] over an arbitrary [`PlatformRegistry`]: platforms are built
/// by label, so custom systems registered by a harness run through the same
/// parallel grid machinery as the standard eleven.
///
/// # Panics
///
/// Panics if any label in `labels` is not registered.
pub fn run_grid_with(
    registry: &PlatformRegistry,
    labels: &[&str],
    specs: &[WorkloadSpec],
    scale: &ScaleProfile,
) -> Vec<RunMetrics> {
    let cells: Vec<(WorkloadSpec, &str)> = specs
        .iter()
        .flat_map(|spec| labels.iter().map(move |label| (*spec, *label)))
        .collect();
    parallel_map(&cells, |(spec, label)| {
        let mut platform = registry
            .build(label, scale)
            .unwrap_or_else(|| panic!("platform {label:?} is not registered"));
        run_workload(platform.as_mut(), *spec, scale)
    })
}

/// The serial reference for [`run_grid`]: same cells, same order, one thread.
pub fn run_grid_serial(
    kinds: &[PlatformKind],
    specs: &[WorkloadSpec],
    scale: &ScaleProfile,
) -> Vec<RunMetrics> {
    specs
        .iter()
        .flat_map(|spec| {
            kinds.iter().map(|kind| {
                let mut platform = kind.build(scale);
                run_workload(platform.as_mut(), *spec, scale)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scale() -> ScaleProfile {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 1_500,
            seed: 3,
        }
    }

    #[test]
    fn all_platforms_run_every_workload_class() {
        let scale = quick_scale();
        for name in ["rndWr", "rndSel", "KMN"] {
            let spec = WorkloadSpec::by_name(name).unwrap();
            for kind in PlatformKind::all() {
                let mut platform = kind.build(&scale);
                let m = run_workload(platform.as_mut(), spec, &scale);
                assert_eq!(m.accesses, scale.accesses as u64);
                assert!(
                    m.total_time > Nanos::ZERO,
                    "{name} on {} took no time",
                    kind.label()
                );
                assert!(m.pages_per_sec > 0.0);
                assert!(m.energy.total_joules() > 0.0);
            }
        }
    }

    #[test]
    fn hams_te_outperforms_mmap() {
        let scale = ScaleProfile {
            capacity_divisor: 1024,
            accesses: 6_000,
            seed: 11,
        };
        let spec = WorkloadSpec::by_name("rndWr").unwrap();
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let mut te = PlatformKind::HamsTE.build(&scale);
        let m = run_workload(mmap.as_mut(), spec, &scale);
        let h = run_workload(te.as_mut(), spec, &scale);
        assert!(
            h.pages_per_sec > m.pages_per_sec,
            "hams-TE ({:.0}) should beat mmap ({:.0}) pages/s",
            h.pages_per_sec,
            m.pages_per_sec
        );
        assert!(h.ipc > m.ipc);
    }

    #[test]
    fn oracle_is_the_upper_bound_among_hams_and_mmap() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("seqRd").unwrap();
        let results = run_matrix(
            &[
                PlatformKind::Mmap,
                PlatformKind::HamsTE,
                PlatformKind::Oracle,
            ],
            spec,
            &scale,
        );
        let oracle = results.iter().find(|r| r.platform == "oracle").unwrap();
        for r in &results {
            assert!(
                oracle.pages_per_sec >= r.pages_per_sec * 0.99,
                "{} ({:.0}) beat the oracle ({:.0})",
                r.platform,
                r.pages_per_sec,
                oracle.pages_per_sec
            );
        }
    }

    #[test]
    fn mmap_execution_is_dominated_by_software_overhead() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("rndRd").unwrap();
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let m = run_workload(mmap.as_mut(), spec, &scale);
        let os_fraction = m.exec_breakdown.fraction("os");
        assert!(
            os_fraction > 0.3,
            "mmap OS fraction was only {os_fraction:.2}; the paper reports ~69%"
        );
    }

    #[test]
    fn persist_mode_is_slower_than_extend_mode() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("update").unwrap();
        let results = run_matrix(&[PlatformKind::HamsTP, PlatformKind::HamsTE], spec, &scale);
        assert!(results[1].ops_per_sec >= results[0].ops_per_sec);
    }

    #[test]
    fn scale_profile_preserves_ratios() {
        let scale = ScaleProfile::bench_default();
        let spec = WorkloadSpec::by_name("seqRd").unwrap();
        let scaled = scale.scale_spec(spec);
        let full_ratio = spec.dataset_bytes as f64 / (8.0 * 1024.0 * 1024.0 * 1024.0);
        let scaled_ratio = scaled.dataset_bytes as f64 / scale.cache_bytes() as f64;
        assert!((full_ratio - scaled_ratio).abs() < 0.05 * full_ratio.max(scaled_ratio));
    }

    #[test]
    fn batched_serving_is_byte_identical_to_serial_for_every_platform() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("rndWr").unwrap();
        for kind in PlatformKind::all() {
            let mut serial = kind.build(&scale);
            let mut batched = kind.build(&scale);
            let s = run_workload_serial(serial.as_mut(), spec, &scale);
            let b = run_workload(batched.as_mut(), spec, &scale);
            assert_eq!(s, b, "{} diverged between serial and batched", kind.label());
        }
    }

    #[test]
    fn batch_size_does_not_change_metrics() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("KMN").unwrap();
        let reference = {
            let mut p = PlatformKind::HamsTE.build(&scale);
            run_workload_batched(p.as_mut(), spec, &scale, 1)
        };
        for batch_size in [0, 7, 64, 100_000] {
            let mut p = PlatformKind::HamsTE.build(&scale);
            let m = run_workload_batched(p.as_mut(), spec, &scale, batch_size);
            assert_eq!(reference, m, "batch size {batch_size} diverged");
        }
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_serial_grid() {
        let scale = quick_scale();
        let kinds = PlatformKind::all();
        let specs: Vec<WorkloadSpec> = ["rndRd", "seqIns"]
            .iter()
            .map(|n| WorkloadSpec::by_name(n).unwrap())
            .collect();
        let parallel = run_grid(&kinds, &specs, &scale);
        let serial = run_grid_serial(&kinds, &specs, &scale);
        assert_eq!(parallel.len(), kinds.len() * specs.len());
        assert_eq!(parallel, serial);
    }

    #[test]
    fn custom_registry_platforms_run_through_the_grid() {
        use crate::direct::OraclePlatform;
        let mut registry = PlatformRegistry::standard();
        registry.register("oracle-2x", |_scale| Box::new(OraclePlatform::new()));
        let scale = quick_scale();
        let specs = [WorkloadSpec::by_name("rndRd").unwrap()];
        let results = run_grid_with(&registry, &["mmap", "oracle-2x"], &specs, &scale);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].platform, "mmap");
        assert_eq!(results[1].platform, "oracle");
        assert!(results[1].pages_per_sec > results[0].pages_per_sec);
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn unknown_label_in_grid_panics_with_the_label() {
        let scale = quick_scale();
        let specs = [WorkloadSpec::by_name("rndRd").unwrap()];
        let _ = run_grid_with(standard_registry(), &["hams-XX"], &specs, &scale);
    }

    #[test]
    fn grid_results_are_workload_major_in_figure_order() {
        let scale = quick_scale();
        let kinds = [PlatformKind::Mmap, PlatformKind::Oracle];
        let specs: Vec<WorkloadSpec> = ["rndRd", "rndWr"]
            .iter()
            .map(|n| WorkloadSpec::by_name(n).unwrap())
            .collect();
        let grid = run_grid(&kinds, &specs, &scale);
        let labels: Vec<(&str, &str)> = grid
            .iter()
            .map(|m| (m.workload.as_str(), m.platform.as_str()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("rndRd", "mmap"),
                ("rndRd", "oracle"),
                ("rndWr", "mmap"),
                ("rndWr", "oracle"),
            ]
        );
    }

    #[test]
    fn traced_run_is_byte_identical_and_collects_spans() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("rndRd").unwrap();
        let mut plain = PlatformKind::HamsTE.build(&scale);
        let mut traced = PlatformKind::HamsTE.build(&scale);
        let reference = run_workload(plain.as_mut(), spec, &scale);
        let mut telemetry = RunTelemetry::new();
        let m = run_workload_traced(traced.as_mut(), spec, &scale, &mut telemetry);
        assert_eq!(reference, m, "tracing changed the simulated metrics");
        let counts = telemetry.layer_counts();
        assert_eq!(counts[Layer::Request.index()], scale.accesses as u64);
        assert!(
            counts[Layer::Controller.index()] > 0,
            "HAMS runs should emit controller spans"
        );
        assert!(counts[Layer::TagArray.index()] > 0);
        assert!(!telemetry.registry.is_empty());
        assert!(telemetry.registry.get("accesses_served").is_some());
        assert!(telemetry.registry.get("nvme_inflight").is_some());
    }

    #[test]
    fn traced_run_on_a_software_platform_still_gets_request_spans() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("seqRd").unwrap();
        let mut platform = PlatformKind::Mmap.build(&scale);
        let mut telemetry = RunTelemetry::new();
        let m = run_workload_traced(platform.as_mut(), spec, &scale, &mut telemetry);
        assert_eq!(m.accesses, scale.accesses as u64);
        let counts = telemetry.layer_counts();
        assert_eq!(counts[Layer::Request.index()], scale.accesses as u64);
        assert_eq!(counts[Layer::Controller.index()], 0);
    }

    #[test]
    fn paper_throughput_selects_the_right_unit() {
        let scale = quick_scale();
        let spec = WorkloadSpec::by_name("seqSel").unwrap();
        let mut oracle = PlatformKind::Oracle.build(&scale);
        let m = run_workload(oracle.as_mut(), spec, &scale);
        assert!((m.paper_throughput(WorkloadClass::Sqlite) - m.ops_per_sec).abs() < 1e-9);
        assert!(
            (m.paper_throughput(WorkloadClass::Microbench) - m.pages_per_sec / 1000.0).abs() < 1e-9
        );
    }
}
