//! Full-system platform compositions and the experiment runner.
//!
//! This crate assembles the substrates (flash, NVMe, interconnect, NVDIMM,
//! host, energy) and the HAMS controller into the eleven systems the paper
//! evaluates, and provides [`run_workload`] / [`run_matrix`] to execute
//! Table III workloads on them and collect every reported metric
//! (throughput, IPC, execution-time breakdown, memory-delay breakdown,
//! energy breakdown, hit rates).
//!
//! # Example
//!
//! ```
//! use hams_platforms::{run_workload, PlatformKind, ScaleProfile};
//! use hams_workloads::WorkloadSpec;
//!
//! let scale = ScaleProfile::test_tiny();
//! let spec = WorkloadSpec::by_name("rndWr").unwrap();
//! let mut hams_te = PlatformKind::HamsTE.build(&scale);
//! let metrics = run_workload(hams_te.as_mut(), spec, &scale);
//! assert!(metrics.pages_per_sec > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod direct;
pub mod hams;
pub mod mmap;
pub mod platform;
pub mod runner;
pub mod summary;

pub use cache::{CacheOutcome, CacheStats, LruPageCache};
pub use direct::{FlatFlashPlatform, NvdimmCPlatform, OptanePlatform, OraclePlatform};
pub use hams::HamsPlatform;
pub use mmap::MmapPlatform;
pub use platform::{AccessOutcome, Platform};
pub use runner::{run_matrix, run_workload, PlatformKind, RunMetrics, ScaleProfile, ACCESSES_PER_SQL_OP};
pub use summary::{feature_table, headline_claims, paper_config, FeatureRow, HeadlineClaims, PaperConfig};
