//! Full-system platform compositions and the experiment runner.
//!
//! This crate assembles the substrates (flash, NVMe, interconnect, NVDIMM,
//! host, energy) and the HAMS controller into the eleven systems the paper
//! evaluates, and provides the experiment engine that executes Table III
//! workloads on them and collects every reported metric (throughput, IPC,
//! execution-time breakdown, memory-delay breakdown, energy breakdown, hit
//! rates):
//!
//! * [`PlatformRegistry`] — named, boxed platform constructors; the eleven
//!   paper systems are pre-registered and harnesses can add their own,
//! * [`Platform::serve_batch`] — the batched serving path; hardware-automated
//!   platforms override it to amortize per-access host-side setup while
//!   producing metrics byte-identical to the per-access loop,
//! * [`run_workload`] / [`run_matrix`] / [`run_grid`] — single-cell, one
//!   workload × many platforms, and full-grid execution; the grid fans cells
//!   out across CPU cores with per-run seeded RNGs, so parallel results are
//!   byte-identical to [`run_grid_serial`].
//!
//! # Example
//!
//! ```
//! use hams_platforms::{run_workload, PlatformKind, ScaleProfile};
//! use hams_workloads::WorkloadSpec;
//!
//! let scale = ScaleProfile::test_tiny();
//! let spec = WorkloadSpec::by_name("rndWr").unwrap();
//! let mut hams_te = PlatformKind::HamsTE.build(&scale);
//! let metrics = run_workload(hams_te.as_mut(), spec, &scale);
//! assert!(metrics.pages_per_sec > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod direct;
pub mod hams;
pub mod mmap;
pub mod openloop;
pub mod platform;
pub mod registry;
pub mod runner;
pub mod summary;

pub use cache::{CacheOutcome, CacheStats, LruPageCache};
pub use direct::{FlatFlashPlatform, NvdimmCPlatform, OptanePlatform, OraclePlatform};
pub use hams::{HamsPlatform, SCALED_MOS_PAGE_BYTES};
pub use hams_core::{BackendTopology, ShardConfig, ShardHashPolicy};
pub use hams_nvme::QueueConfig;
pub use mmap::MmapPlatform;
pub use openloop::{
    run_tenant_set_open_loop, run_tenant_set_open_loop_traced, run_workload_open_loop,
    run_workload_open_loop_traced, AdmissionPolicy, MultiTenantMetrics, OpenLoopConfig,
    OpenLoopMetrics, OpenLoopRecord, TenantMetrics,
};
pub use platform::{AccessOutcome, BatchOutcome, BatchRequest, Platform};
pub use registry::{
    build_cxl_platform, build_fault_platform, build_raid_sweep_platform, cxl_label, fault_label,
    queue_sweep_label, raid_sweep_label, register_hams_fault_scenario, register_hams_queue_sweep,
    register_hams_raid_sweep, register_hams_shard_sweep, shard_sweep_label, standard_registry,
    PlatformCtor, PlatformRegistry, FAULT_SWEEP_DEVICES, QUEUE_SWEEP_PAGE_BYTES,
    RAID_SWEEP_PAGE_BYTES, RAID_SWEEP_QUEUES,
};
pub use runner::{
    run_grid, run_grid_serial, run_grid_with, run_matrix, run_workload, run_workload_backend,
    run_workload_batched, run_workload_cell_parallel, run_workload_mq, run_workload_serial,
    run_workload_serial_backend, run_workload_serial_mq, run_workload_serial_sharded,
    run_workload_sharded, run_workload_traced, PlatformKind, RunMetrics, ScaleProfile,
    ACCESSES_PER_SQL_OP, DEFAULT_BATCH_SIZE,
};
pub use summary::{
    feature_table, headline_claims, paper_config, FeatureRow, HeadlineClaims, PaperConfig,
};
