//! The platform registry: named, boxed platform constructors.
//!
//! The seed code built platforms through a hard-coded `match` in the runner,
//! so adding a platform meant editing the runner itself. The registry inverts
//! that: every platform is a `(label, constructor)` entry, the standard
//! eleven systems of §VI-A are pre-registered in figure order, and
//! experiment harnesses (including out-of-tree ones) can register additional
//! systems and run them through the same grid machinery.
//!
//! # Example
//!
//! ```
//! use hams_platforms::{OraclePlatform, PlatformRegistry, ScaleProfile};
//!
//! let mut registry = PlatformRegistry::standard();
//! registry.register("oracle-2x", |_scale| Box::new(OraclePlatform::new()));
//! let scale = ScaleProfile::test_tiny();
//! let mut platform = registry.build("oracle-2x", &scale).unwrap();
//! assert_eq!(platform.name(), "oracle");
//! assert_eq!(registry.len(), 12);
//! ```

use std::sync::OnceLock;

use hams_core::{AttachMode, PersistMode, ShardConfig};
use hams_flash::SsdConfig;
use hams_nvme::QueueConfig;

use crate::direct::{FlatFlashPlatform, NvdimmCPlatform, OptanePlatform, OraclePlatform};
use crate::hams::HamsPlatform;
use crate::mmap::MmapPlatform;
use crate::platform::Platform;
use crate::runner::ScaleProfile;

/// A boxed platform constructor: builds a fresh system sized by a
/// [`ScaleProfile`]. `Send + Sync` so registries can be shared across the
/// parallel grid's worker threads.
pub type PlatformCtor = Box<dyn Fn(&ScaleProfile) -> Box<dyn Platform> + Send + Sync>;

/// An ordered collection of named platform constructors.
pub struct PlatformRegistry {
    entries: Vec<(String, PlatformCtor)>,
}

impl std::fmt::Debug for PlatformRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformRegistry")
            .field("labels", &self.labels().collect::<Vec<_>>())
            .finish()
    }
}

impl PlatformRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        PlatformRegistry {
            entries: Vec::new(),
        }
    }

    /// The eleven platforms of §VI-A, registered in the order the paper's
    /// figures list them.
    #[must_use]
    pub fn standard() -> Self {
        let mut registry = PlatformRegistry::new();
        let scaled_ull = |scale: &ScaleProfile| {
            let mut cfg = SsdConfig::ull_flash();
            cfg.dram_capacity_bytes = scale.ssd_dram_bytes();
            cfg
        };
        registry.register("mmap", move |scale| {
            Box::new(MmapPlatform::new(
                "mmap",
                scaled_ull(scale),
                scale.cache_bytes(),
            ))
        });
        registry.register("flatflash-P", |scale| {
            Box::new(FlatFlashPlatform::persistent().with_ssd_dram_bytes(scale.ssd_dram_bytes()))
        });
        registry.register("flatflash-M", |scale| {
            Box::new(
                FlatFlashPlatform::memory_cached(scale.cache_bytes())
                    .with_ssd_dram_bytes(scale.ssd_dram_bytes()),
            )
        });
        registry.register("hams-LP", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Persist,
                scale.cache_bytes(),
            ))
        });
        registry.register("hams-LE", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Extend,
                scale.cache_bytes(),
            ))
        });
        registry.register("nvdimm-C", |scale| {
            Box::new(
                NvdimmCPlatform::new(scale.cache_bytes())
                    .with_ssd_dram_bytes(scale.ssd_dram_bytes()),
            )
        });
        registry.register("optane-P", |_scale| Box::new(OptanePlatform::app_direct()));
        registry.register("optane-M", |scale| {
            Box::new(OptanePlatform::memory_mode(scale.cache_bytes()))
        });
        registry.register("hams-TP", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Persist,
                scale.cache_bytes(),
            ))
        });
        registry.register("hams-TE", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
            ))
        });
        registry.register("oracle", |_scale| Box::new(OraclePlatform::new()));
        registry
    }

    /// Registers (or replaces) the constructor for `label`, preserving the
    /// original position when replacing.
    pub fn register<F>(&mut self, label: impl Into<String>, ctor: F)
    where
        F: Fn(&ScaleProfile) -> Box<dyn Platform> + Send + Sync + 'static,
    {
        let label = label.into();
        let boxed: PlatformCtor = Box::new(ctor);
        if let Some(entry) = self.entries.iter_mut().find(|(l, _)| *l == label) {
            entry.1 = boxed;
        } else {
            self.entries.push((label, boxed));
        }
    }

    /// Builds a fresh platform for `label`, or `None` if it is unregistered.
    #[must_use]
    pub fn build(&self, label: &str, scale: &ScaleProfile) -> Option<Box<dyn Platform>> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, ctor)| ctor(scale))
    }

    /// Registered labels, in registration order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(l, _)| l.as_str())
    }

    /// Whether `label` is registered.
    #[must_use]
    pub fn contains(&self, label: &str) -> bool {
        self.entries.iter().any(|(l, _)| l == label)
    }

    /// Number of registered platforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for PlatformRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared instance of [`PlatformRegistry::standard`] used by
/// [`PlatformKind::build`](crate::PlatformKind::build) and the grid helpers.
#[must_use]
pub fn standard_registry() -> &'static PlatformRegistry {
    static REGISTRY: OnceLock<PlatformRegistry> = OnceLock::new();
    REGISTRY.get_or_init(PlatformRegistry::standard)
}

/// MoS page size used by the queue-count sweep entries. Striped fills split
/// a page across queue pairs at LBA (4 KB) granularity, so the sweep uses a
/// page spanning eight LBAs — small enough for scaled-down capacities,
/// large enough that every queue count up to eight gets its own stripe.
pub const QUEUE_SWEEP_PAGE_BYTES: u64 = 32 * 1024;

/// The registry label of a queue-sweep entry: `hams-TE-q{n}`.
#[must_use]
pub fn queue_sweep_label(num_queues: u16) -> String {
    format!("hams-TE-q{num_queues}")
}

/// Registers one `hams-TE-q{n}` entry per queue count: tightly-integrated,
/// extend-mode HAMS with [`QUEUE_SWEEP_PAGE_BYTES`] MoS pages and `n` NVMe
/// queue pairs (MSI coalescing threshold `n`, 8 µs timer). `q1` entries use
/// [`QueueConfig::single`], so the sweep's baseline is the exact
/// single-queue engine at the same page size. Together with
/// [`run_grid_with`](crate::run_grid_with), this is what `hams-bench` uses
/// to reproduce the queue-count sensitivity figure.
pub fn register_hams_queue_sweep(registry: &mut PlatformRegistry, queue_counts: &[u16]) {
    for &n in queue_counts {
        registry.register(queue_sweep_label(n), move |scale: &ScaleProfile| {
            let queues = if n <= 1 {
                QueueConfig::single()
            } else {
                QueueConfig::striped(n)
            };
            Box::new(HamsPlatform::scaled_with(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
                QUEUE_SWEEP_PAGE_BYTES,
                queues,
            ))
        });
    }
}

/// The registry label of a shard-sweep entry: `hams-TE-s{n}`.
#[must_use]
pub fn shard_sweep_label(num_shards: u16) -> String {
    format!("hams-TE-s{num_shards}")
}

/// Registers one `hams-TE-s{n}` entry per shard count, mirroring the
/// `hams-TE-q{n}` queue sweep: tightly-integrated, extend-mode HAMS with the
/// standard 4 KB MoS pages and the tag directory partitioned into `n`
/// interleaved banks. `s1` entries pin [`ShardConfig::single`], so the
/// sweep's baseline is the exact monolithic array. Unlike the queue sweep,
/// every entry must produce byte-identical metrics — the shard-invariance
/// contract — which is what the shard golden snapshot and
/// `hams-bench`'s `fig_shard_sensitivity` enforce on the grid.
pub fn register_hams_shard_sweep(registry: &mut PlatformRegistry, shard_counts: &[u16]) {
    for &n in shard_counts {
        registry.register(shard_sweep_label(n), move |scale: &ScaleProfile| {
            // interleaved(1) IS ShardConfig::single(), so the s1 baseline is
            // the exact monolithic array with no special casing.
            Box::new(HamsPlatform::scaled_with_shards(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
                4096,
                QueueConfig::single(),
                ShardConfig::interleaved(n),
            ))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PlatformKind;

    #[test]
    fn standard_registry_matches_the_paper_order() {
        let registry = PlatformRegistry::standard();
        let labels: Vec<&str> = registry.labels().collect();
        let expected: Vec<&'static str> = PlatformKind::all()
            .iter()
            .map(PlatformKind::label)
            .collect();
        assert_eq!(labels, expected);
        assert_eq!(registry.len(), 11);
        assert!(!registry.is_empty());
    }

    #[test]
    fn built_platforms_report_their_label_as_name() {
        let registry = PlatformRegistry::standard();
        let scale = ScaleProfile::test_tiny();
        for kind in PlatformKind::all() {
            let platform = registry
                .build(kind.label(), &scale)
                .unwrap_or_else(|| panic!("{} not registered", kind.label()));
            assert_eq!(platform.name(), kind.label());
        }
    }

    #[test]
    fn unknown_labels_build_nothing() {
        let registry = PlatformRegistry::standard();
        assert!(registry
            .build("hams-XX", &ScaleProfile::test_tiny())
            .is_none());
        assert!(!registry.contains("hams-XX"));
    }

    #[test]
    fn register_replaces_in_place() {
        let mut registry = PlatformRegistry::standard();
        let before: Vec<String> = registry.labels().map(str::to_owned).collect();
        registry.register("oracle", |_| Box::new(OraclePlatform::new()));
        let after: Vec<String> = registry.labels().map(str::to_owned).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn queue_sweep_entries_register_and_build() {
        let mut registry = PlatformRegistry::standard();
        register_hams_queue_sweep(&mut registry, &[1, 2, 4, 8]);
        assert_eq!(registry.len(), 15);
        let scale = ScaleProfile::test_tiny();
        for n in [1u16, 2, 4, 8] {
            let platform = registry
                .build(&queue_sweep_label(n), &scale)
                .expect("sweep entry registered");
            assert_eq!(platform.name(), "hams-TE");
        }
    }

    #[test]
    fn shard_sweep_entries_register_and_build() {
        let mut registry = PlatformRegistry::standard();
        register_hams_shard_sweep(&mut registry, &[1, 2, 8]);
        assert_eq!(registry.len(), 14);
        let scale = ScaleProfile::test_tiny();
        for n in [1u16, 2, 8] {
            let platform = registry
                .build(&shard_sweep_label(n), &scale)
                .expect("sweep entry registered");
            assert_eq!(platform.name(), "hams-TE");
        }
    }

    #[test]
    fn custom_platforms_extend_the_grid() {
        let mut registry = PlatformRegistry::new();
        registry.register("just-oracle", |_| Box::new(OraclePlatform::new()));
        assert_eq!(registry.len(), 1);
        let scale = ScaleProfile::test_tiny();
        assert!(registry.build("just-oracle", &scale).is_some());
    }
}
