//! The platform registry: named, boxed platform constructors.
//!
//! The seed code built platforms through a hard-coded `match` in the runner,
//! so adding a platform meant editing the runner itself. The registry inverts
//! that: every platform is a `(label, constructor)` entry, the standard
//! eleven systems of §VI-A are pre-registered in figure order, and
//! experiment harnesses (including out-of-tree ones) can register additional
//! systems and run them through the same grid machinery.
//!
//! # Example
//!
//! ```
//! use hams_platforms::{OraclePlatform, PlatformRegistry, ScaleProfile};
//!
//! let mut registry = PlatformRegistry::standard();
//! registry.register("oracle-2x", |_scale| Box::new(OraclePlatform::new()));
//! let scale = ScaleProfile::test_tiny();
//! let mut platform = registry.build("oracle-2x", &scale).unwrap();
//! assert_eq!(platform.name(), "oracle");
//! assert_eq!(registry.len(), 12);
//! ```

use std::sync::OnceLock;

use hams_core::{AttachMode, BackendTopology, PersistMode, ShardConfig};
use hams_flash::{SsdConfig, LBA_SIZE};
use hams_nvme::QueueConfig;

use crate::direct::{FlatFlashPlatform, NvdimmCPlatform, OptanePlatform, OraclePlatform};
use crate::hams::{HamsPlatform, SCALED_MOS_PAGE_BYTES};
use crate::mmap::MmapPlatform;
use crate::platform::Platform;
use crate::runner::ScaleProfile;

/// A boxed platform constructor: builds a fresh system sized by a
/// [`ScaleProfile`]. `Send + Sync` so registries can be shared across the
/// parallel grid's worker threads.
pub type PlatformCtor = Box<dyn Fn(&ScaleProfile) -> Box<dyn Platform> + Send + Sync>;

/// An ordered collection of named platform constructors.
pub struct PlatformRegistry {
    entries: Vec<(String, PlatformCtor)>,
}

impl std::fmt::Debug for PlatformRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformRegistry")
            .field("labels", &self.labels().collect::<Vec<_>>())
            .finish()
    }
}

impl PlatformRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        PlatformRegistry {
            entries: Vec::new(),
        }
    }

    /// The eleven platforms of §VI-A, registered in the order the paper's
    /// figures list them.
    #[must_use]
    pub fn standard() -> Self {
        let mut registry = PlatformRegistry::new();
        let scaled_ull = |scale: &ScaleProfile| {
            let mut cfg = SsdConfig::ull_flash();
            cfg.dram_capacity_bytes = scale.ssd_dram_bytes();
            cfg
        };
        registry.register("mmap", move |scale| {
            Box::new(MmapPlatform::new(
                "mmap",
                scaled_ull(scale),
                scale.cache_bytes(),
            ))
        });
        registry.register("flatflash-P", |scale| {
            Box::new(FlatFlashPlatform::persistent().with_ssd_dram_bytes(scale.ssd_dram_bytes()))
        });
        registry.register("flatflash-M", |scale| {
            Box::new(
                FlatFlashPlatform::memory_cached(scale.cache_bytes())
                    .with_ssd_dram_bytes(scale.ssd_dram_bytes()),
            )
        });
        registry.register("hams-LP", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Persist,
                scale.cache_bytes(),
            ))
        });
        registry.register("hams-LE", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Loose,
                PersistMode::Extend,
                scale.cache_bytes(),
            ))
        });
        registry.register("nvdimm-C", |scale| {
            Box::new(
                NvdimmCPlatform::new(scale.cache_bytes())
                    .with_ssd_dram_bytes(scale.ssd_dram_bytes()),
            )
        });
        registry.register("optane-P", |_scale| Box::new(OptanePlatform::app_direct()));
        registry.register("optane-M", |scale| {
            Box::new(OptanePlatform::memory_mode(scale.cache_bytes()))
        });
        registry.register("hams-TP", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Persist,
                scale.cache_bytes(),
            ))
        });
        registry.register("hams-TE", |scale| {
            Box::new(HamsPlatform::scaled(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
            ))
        });
        registry.register("oracle", |_scale| Box::new(OraclePlatform::new()));
        registry
    }

    /// Registers (or replaces) the constructor for `label`, preserving the
    /// original position when replacing.
    pub fn register<F>(&mut self, label: impl Into<String>, ctor: F)
    where
        F: Fn(&ScaleProfile) -> Box<dyn Platform> + Send + Sync + 'static,
    {
        let label = label.into();
        let boxed: PlatformCtor = Box::new(ctor);
        if let Some(entry) = self.entries.iter_mut().find(|(l, _)| *l == label) {
            entry.1 = boxed;
        } else {
            self.entries.push((label, boxed));
        }
    }

    /// Builds a fresh platform for `label`, or `None` if it is unregistered.
    #[must_use]
    pub fn build(&self, label: &str, scale: &ScaleProfile) -> Option<Box<dyn Platform>> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, ctor)| ctor(scale))
    }

    /// Registered labels, in registration order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(l, _)| l.as_str())
    }

    /// Whether `label` is registered.
    #[must_use]
    pub fn contains(&self, label: &str) -> bool {
        self.entries.iter().any(|(l, _)| l == label)
    }

    /// Number of registered platforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for PlatformRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared instance of [`PlatformRegistry::standard`] used by
/// [`PlatformKind::build`](crate::PlatformKind::build) and the grid helpers.
#[must_use]
pub fn standard_registry() -> &'static PlatformRegistry {
    static REGISTRY: OnceLock<PlatformRegistry> = OnceLock::new();
    REGISTRY.get_or_init(PlatformRegistry::standard)
}

/// MoS page size used by the queue-count sweep entries. Striped fills split
/// a page across queue pairs at LBA (4 KB) granularity, so the sweep uses a
/// page spanning eight LBAs — small enough for scaled-down capacities,
/// large enough that every queue count up to eight gets its own stripe.
pub const QUEUE_SWEEP_PAGE_BYTES: u64 = 32 * 1024;

/// The registry label of a queue-sweep entry: `hams-TE-q{n}`.
#[must_use]
pub fn queue_sweep_label(num_queues: u16) -> String {
    format!("hams-TE-q{num_queues}")
}

/// Registers one `hams-TE-q{n}` entry per queue count: tightly-integrated,
/// extend-mode HAMS with [`QUEUE_SWEEP_PAGE_BYTES`] MoS pages and `n` NVMe
/// queue pairs (MSI coalescing threshold `n`, 8 µs timer). `q1` entries use
/// [`QueueConfig::single`], so the sweep's baseline is the exact
/// single-queue engine at the same page size. Together with
/// [`run_grid_with`](crate::run_grid_with), this is what `hams-bench` uses
/// to reproduce the queue-count sensitivity figure.
pub fn register_hams_queue_sweep(registry: &mut PlatformRegistry, queue_counts: &[u16]) {
    for &n in queue_counts {
        registry.register(queue_sweep_label(n), move |scale: &ScaleProfile| {
            let queues = if n <= 1 {
                QueueConfig::single()
            } else {
                QueueConfig::striped(n)
            };
            Box::new(HamsPlatform::scaled_with(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
                QUEUE_SWEEP_PAGE_BYTES,
                queues,
            ))
        });
    }
}

/// The registry label of a shard-sweep entry: `hams-TE-s{n}`.
#[must_use]
pub fn shard_sweep_label(num_shards: u16) -> String {
    format!("hams-TE-s{num_shards}")
}

/// Registers one `hams-TE-s{n}` entry per shard count, mirroring the
/// `hams-TE-q{n}` queue sweep: tightly-integrated, extend-mode HAMS with the
/// standard scaled ([`SCALED_MOS_PAGE_BYTES`]) MoS pages and the tag
/// directory partitioned into `n` interleaved banks. `s1` entries pin
/// [`ShardConfig::single`], so the sweep's baseline is the exact monolithic
/// array. Unlike the queue sweep, every entry must produce byte-identical
/// metrics — the shard-invariance contract — which is what the shard golden
/// snapshot and `hams-bench`'s `fig_shard_sensitivity` enforce on the grid.
pub fn register_hams_shard_sweep(registry: &mut PlatformRegistry, shard_counts: &[u16]) {
    for &n in shard_counts {
        registry.register(shard_sweep_label(n), move |scale: &ScaleProfile| {
            // interleaved(1) IS ShardConfig::single(), so the s1 baseline is
            // the exact monolithic array with no special casing.
            Box::new(HamsPlatform::scaled_with_shards(
                AttachMode::Tight,
                PersistMode::Extend,
                scale.cache_bytes(),
                SCALED_MOS_PAGE_BYTES,
                QueueConfig::single(),
                ShardConfig::interleaved(n),
            ))
        });
    }
}

/// MoS page size of the RAID device sweep: the queue sweep's eight-LBA page,
/// so the eight stripe commands of one fill have stripes to spread across
/// devices.
pub const RAID_SWEEP_PAGE_BYTES: u64 = 32 * 1024;

/// NVMe queue pairs used by every RAID device-sweep entry. Held constant
/// across device counts so the sweep isolates device scaling: the d1
/// baseline pays the same queue shape, only the archive fan-out changes.
pub const RAID_SWEEP_QUEUES: u16 = 8;

/// The registry label of a device-sweep entry: `hams-TE-d{n}`.
#[must_use]
pub fn raid_sweep_label(devices: u16) -> String {
    format!("hams-TE-d{devices}")
}

/// The registry label of the CXL-attached archive entry.
#[must_use]
pub fn cxl_label() -> String {
    "hams-TE-cxl".to_owned()
}

/// The platform behind one `hams-TE-d{n}` entry: tightly-integrated,
/// extend-mode HAMS with [`RAID_SWEEP_PAGE_BYTES`] MoS pages,
/// [`RAID_SWEEP_QUEUES`] queue pairs and a RAID-0 archive set of `devices`
/// ULL-Flash devices at LBA (4 KB) stripe granularity — each of a fill's
/// stripe commands lands wholly on the device owning its stripe, so one
/// page fill fans out across up to `devices` independent flash arrays.
/// Exposed concretely (not boxed) so harnesses can read per-device archive
/// stats; `fig_device_scaling` uses this to prove the per-device totals sum
/// to the single-device run's.
#[must_use]
pub fn build_raid_sweep_platform(scale: &ScaleProfile, devices: u16) -> HamsPlatform {
    HamsPlatform::scaled_with_backend(
        AttachMode::Tight,
        PersistMode::Extend,
        scale.cache_bytes(),
        RAID_SWEEP_PAGE_BYTES,
        QueueConfig::striped(RAID_SWEEP_QUEUES),
        BackendTopology::raid0_striped(devices, LBA_SIZE),
    )
}

/// The platform behind the `hams-TE-cxl` entry: the d4 RAID fan-out of
/// [`build_raid_sweep_platform`] attached over the CXL link instead of the
/// DDR4 register interface — the memory-expansion shape, slower than the
/// tight attach and faster than loose PCIe.
#[must_use]
pub fn build_cxl_platform(scale: &ScaleProfile) -> HamsPlatform {
    HamsPlatform::scaled_with_backend(
        AttachMode::Tight,
        PersistMode::Extend,
        scale.cache_bytes(),
        RAID_SWEEP_PAGE_BYTES,
        QueueConfig::striped(RAID_SWEEP_QUEUES),
        BackendTopology::cxl(4, LBA_SIZE),
    )
}

/// Number of devices in the fault-scenario parity array: four, matching
/// the RAID sweep's widest entry so degraded timing is comparable to the
/// healthy d4 run.
pub const FAULT_SWEEP_DEVICES: u16 = 4;

/// The registry label of the parity-archive fault-scenario entry.
#[must_use]
pub fn fault_label() -> String {
    "hams-TP-r5".to_owned()
}

/// The platform behind the `hams-TP-r5` entry: the d4 shape of
/// [`build_raid_sweep_platform`] on the rotating-parity `Raid5` backend
/// instead of `Raid0`, in persist mode so every store reaches the archive
/// as a journal-tagged write — the traffic that matters when a device is
/// out: degraded writes are parity-absorbed and the rebuild has real
/// durable pages to copy onto the spare. With zero injected faults this
/// array is metrics-byte-identical to its RAID-0 twin
/// (`tests/fault_equivalence.rs` pins it); install a
/// [`hams_core::FaultPlan`] via `Platform::configure_faults` (or the
/// concrete controller) to fail a device mid-run and measure degraded
/// serving and rebuild-under-load — `fig26_latency_under_rebuild` and
/// `throughput --faults` both drive this entry. Exposed concretely so
/// harnesses can read the fault state machine and per-device stats.
#[must_use]
pub fn build_fault_platform(scale: &ScaleProfile) -> HamsPlatform {
    HamsPlatform::scaled_with_backend(
        AttachMode::Tight,
        PersistMode::Persist,
        scale.cache_bytes(),
        RAID_SWEEP_PAGE_BYTES,
        QueueConfig::striped(RAID_SWEEP_QUEUES),
        BackendTopology::raid5_striped(FAULT_SWEEP_DEVICES, LBA_SIZE),
    )
}

/// Registers one `hams-TE-d{n}` entry per device count plus the
/// `hams-TE-cxl` variant. `d1` pins a one-device RAID-0, which is the exact
/// single-archive engine (`tests/backend_equivalence.rs`), so the sweep's
/// baseline is today's hams-TE at the sweep's page/queue shape. Together
/// with [`run_grid_with`](crate::run_grid_with), this is what `hams-bench`'s
/// `fig_device_scaling` (`figures -- fig23`) sweeps: RAID-0 throughput
/// scaling on random reads, with per-device stats summing to the
/// single-device totals.
pub fn register_hams_raid_sweep(registry: &mut PlatformRegistry, device_counts: &[u16]) {
    for &n in device_counts {
        registry.register(raid_sweep_label(n), move |scale: &ScaleProfile| {
            Box::new(build_raid_sweep_platform(scale, n))
        });
    }
    registry.register(cxl_label(), |scale: &ScaleProfile| {
        Box::new(build_cxl_platform(scale))
    });
}

/// Registers the `hams-TP-r5` parity-archive entry — kept separate from
/// [`register_hams_raid_sweep`] so the device-scaling figure's entry set is
/// unchanged by the fault work.
pub fn register_hams_fault_scenario(registry: &mut PlatformRegistry) {
    registry.register(fault_label(), |scale: &ScaleProfile| {
        Box::new(build_fault_platform(scale))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PlatformKind;

    #[test]
    fn standard_registry_matches_the_paper_order() {
        let registry = PlatformRegistry::standard();
        let labels: Vec<&str> = registry.labels().collect();
        let expected: Vec<&'static str> = PlatformKind::all()
            .iter()
            .map(PlatformKind::label)
            .collect();
        assert_eq!(labels, expected);
        assert_eq!(registry.len(), 11);
        assert!(!registry.is_empty());
    }

    #[test]
    fn built_platforms_report_their_label_as_name() {
        let registry = PlatformRegistry::standard();
        let scale = ScaleProfile::test_tiny();
        for kind in PlatformKind::all() {
            let platform = registry
                .build(kind.label(), &scale)
                .unwrap_or_else(|| panic!("{} not registered", kind.label()));
            assert_eq!(platform.name(), kind.label());
        }
    }

    #[test]
    fn unknown_labels_build_nothing() {
        let registry = PlatformRegistry::standard();
        assert!(registry
            .build("hams-XX", &ScaleProfile::test_tiny())
            .is_none());
        assert!(!registry.contains("hams-XX"));
    }

    #[test]
    fn register_replaces_in_place() {
        let mut registry = PlatformRegistry::standard();
        let before: Vec<String> = registry.labels().map(str::to_owned).collect();
        registry.register("oracle", |_| Box::new(OraclePlatform::new()));
        let after: Vec<String> = registry.labels().map(str::to_owned).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn queue_sweep_entries_register_and_build() {
        let mut registry = PlatformRegistry::standard();
        register_hams_queue_sweep(&mut registry, &[1, 2, 4, 8]);
        assert_eq!(registry.len(), 15);
        let scale = ScaleProfile::test_tiny();
        for n in [1u16, 2, 4, 8] {
            let platform = registry
                .build(&queue_sweep_label(n), &scale)
                .expect("sweep entry registered");
            assert_eq!(platform.name(), "hams-TE");
        }
    }

    #[test]
    fn shard_sweep_entries_register_and_build() {
        let mut registry = PlatformRegistry::standard();
        register_hams_shard_sweep(&mut registry, &[1, 2, 8]);
        assert_eq!(registry.len(), 14);
        let scale = ScaleProfile::test_tiny();
        for n in [1u16, 2, 8] {
            let platform = registry
                .build(&shard_sweep_label(n), &scale)
                .expect("sweep entry registered");
            assert_eq!(platform.name(), "hams-TE");
        }
    }

    #[test]
    fn raid_sweep_entries_register_and_build() {
        let mut registry = PlatformRegistry::standard();
        register_hams_raid_sweep(&mut registry, &[1, 2, 4]);
        assert_eq!(registry.len(), 15, "three d{{n}} entries plus hams-TE-cxl");
        let scale = ScaleProfile::test_tiny();
        for n in [1u16, 2, 4] {
            let platform = registry
                .build(&raid_sweep_label(n), &scale)
                .expect("sweep entry registered");
            assert_eq!(platform.name(), "hams-TE");
        }
        assert!(registry.build(&cxl_label(), &scale).is_some());
        let concrete = build_raid_sweep_platform(&scale, 4);
        assert_eq!(concrete.controller().num_devices(), 4);
        assert_eq!(
            concrete.controller().archive().stripe_lbas(),
            1,
            "LBA-granularity stripes fan one fill across devices"
        );
        assert!(build_cxl_platform(&scale)
            .controller()
            .backend_topology()
            .uses_cxl());
    }

    #[test]
    fn fault_scenario_entry_registers_and_builds_a_parity_array() {
        let mut registry = PlatformRegistry::standard();
        register_hams_fault_scenario(&mut registry);
        let scale = ScaleProfile::test_tiny();
        let platform = registry
            .build(&fault_label(), &scale)
            .expect("fault entry registered");
        assert_eq!(platform.name(), "hams-TP");
        let concrete = build_fault_platform(&scale);
        assert_eq!(concrete.controller().num_devices(), FAULT_SWEEP_DEVICES);
        assert!(concrete.controller().backend_topology().has_parity());
        assert_eq!(
            concrete.controller().archive().stripe_lbas(),
            1,
            "fault entry keeps the RAID sweep's LBA-granularity stripes"
        );
    }

    #[test]
    fn custom_platforms_extend_the_grid() {
        let mut registry = PlatformRegistry::new();
        registry.register("just-oracle", |_| Box::new(OraclePlatform::new()));
        assert_eq!(registry.len(), 1);
        let scale = ScaleProfile::test_tiny();
        assert!(registry.build("just-oracle", &scale).is_some());
    }
}
