//! The `mmap` baseline platform: an OS page cache in DRAM over a
//! memory-mapped file on an SSD, paying the full MMF software stack on every
//! page fault (§II-B, §III-B).

use hams_energy::{EnergyAccount, PowerParams};
use hams_flash::{SsdConfig, SsdDevice, LBA_SIZE};
use hams_host::MmfCostModel;
use hams_interconnect::{Ddr4Channel, Ddr4Config, PcieConfig, PcieLink};
use hams_nvme::{NvmeCommand, PrpList};
use hams_sim::Nanos;
use hams_workloads::Access;

use crate::cache::{CacheOutcome, LruPageCache};
use crate::platform::{AccessOutcome, Platform};

/// OS page size used by the memory-mapped-file path.
const OS_PAGE: u64 = 4096;

/// The software-managed MMF baseline.
///
/// The SSD behind the mapping is configurable so the platform covers both the
/// paper's main baseline (ULL-Flash) and the SATA/NVMe comparison points of
/// Fig. 6.
///
/// # Example
///
/// ```
/// use hams_platforms::{MmapPlatform, Platform};
/// use hams_flash::SsdConfig;
/// use hams_sim::Nanos;
/// use hams_workloads::Access;
///
/// let mut mmap = MmapPlatform::new("mmap", SsdConfig::ull_flash(), 1 << 20);
/// let access = Access { addr: 0, size: 64, is_write: false, compute_instructions: 0 };
/// let fault = mmap.access(&access, Nanos::ZERO);
/// // The first touch page-faults and pays the software stack.
/// assert!(fault.os_time > Nanos::from_micros(5));
/// ```
#[derive(Debug)]
pub struct MmapPlatform {
    name: String,
    page_cache: LruPageCache,
    mmf: MmfCostModel,
    ssd: SsdDevice,
    pcie: PcieLink,
    ddr: Ddr4Channel,
    power: PowerParams,
    dram_bytes_accessed: u64,
}

impl MmapPlatform {
    /// Creates the platform with `dram_bytes` of page cache over an SSD
    /// described by `ssd`.
    #[must_use]
    pub fn new(name: impl Into<String>, ssd: SsdConfig, dram_bytes: u64) -> Self {
        MmapPlatform {
            name: name.into(),
            page_cache: LruPageCache::new((dram_bytes / OS_PAGE) as usize),
            mmf: MmfCostModel::linux_4_9(),
            ssd: SsdDevice::new(ssd),
            pcie: PcieLink::new(PcieConfig::gen3_x4()),
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2133()),
            power: PowerParams::paper_default(),
            dram_bytes_accessed: 0,
        }
    }

    /// The paper's default baseline: `mmap` over ULL-Flash with the given
    /// amount of DRAM page cache.
    #[must_use]
    pub fn ull_flash(dram_bytes: u64) -> Self {
        Self::new("mmap", SsdConfig::ull_flash(), dram_bytes)
    }

    /// Hit rate of the OS page cache.
    #[must_use]
    pub fn page_cache_hit_rate(&self) -> f64 {
        self.page_cache.stats().hit_rate()
    }

    /// Read access to the underlying SSD model.
    #[must_use]
    pub fn ssd(&self) -> &SsdDevice {
        &self.ssd
    }

    /// Device latency (flash plus PCIe) of reading one OS page at `now`.
    fn ssd_read(&mut self, page: u64, now: Nanos) -> Nanos {
        let cmd = NvmeCommand::read(1, page * OS_PAGE / LBA_SIZE, OS_PAGE, PrpList::single(0));
        let completion = self
            .ssd
            .service(&cmd, now)
            .map(|c| c.finished_at)
            .unwrap_or(now);
        self.pcie.transfer(OS_PAGE, completion).finished_at
    }

    /// Device latency (PCIe plus flash) of writing one OS page back at `now`.
    fn ssd_write(&mut self, page: u64, now: Nanos) -> Nanos {
        let transfer = self.pcie.transfer(OS_PAGE, now);
        let cmd = NvmeCommand::write(1, page * OS_PAGE / LBA_SIZE, OS_PAGE, PrpList::single(0));
        self.ssd
            .service(&cmd, transfer.finished_at)
            .map(|c| c.finished_at)
            .unwrap_or(transfer.finished_at)
    }

    /// DRAM time of serving the user-visible part of an access.
    fn dram_access(&mut self, bytes: u64, now: Nanos) -> Nanos {
        self.dram_bytes_accessed += bytes;
        let t = self.ddr.transfer(bytes, now);
        t.finished_at + Nanos::from_nanos(30)
    }
}

impl Platform for MmapPlatform {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        let page = access.addr / OS_PAGE;
        let mut os_time = Nanos::ZERO;
        let mut ssd_time = Nanos::ZERO;
        let mut t = now;

        let outcome = self.page_cache.access(page, access.is_write);
        if !outcome.is_hit() {
            // Page fault: software stack, then the device read, then (for a
            // dirty eviction) the write-back of the victim.
            let software = self.mmf.fault_overhead(OS_PAGE).total();
            os_time += software;
            t += software;

            let ssd_done = self.ssd_read(page, t);
            ssd_time += ssd_done - t;
            t = ssd_done;

            if let CacheOutcome::MissEvictDirty { victim } = outcome {
                let wb_software = self.mmf.writeback_overhead(OS_PAGE).total();
                os_time += wb_software;
                t += wb_software;
                let wb_done = self.ssd_write(victim, t);
                ssd_time += wb_done - t;
                t = wb_done;
            }
        }

        // The user-level load/store is finally served from the DRAM page cache.
        let served = self.dram_access(access.size, t);
        let memory_time = served - t;

        AccessOutcome {
            finished_at: served,
            os_time,
            ssd_time,
            memory_time,
        }
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        e.add_power("nvdimm", self.power.nvdimm_background_watts, elapsed);
        e.add(
            "nvdimm",
            self.dram_bytes_accessed as f64 * self.power.nvdimm_access_nj_per_byte / 1e9,
        );
        e.add_power(
            "internal_dram",
            self.power.ssd_dram_background_watts,
            elapsed,
        );
        let dram_bytes = self.ssd.dram_stats().accesses * 4096;
        e.add(
            "internal_dram",
            dram_bytes as f64 * self.power.ssd_dram_access_nj_per_byte / 1e9,
        );
        e.add(
            "znand",
            (self.ssd.stats().page_reads as f64 * self.power.znand_read_page_nj
                + self.ssd.stats().page_programs as f64 * self.power.znand_program_page_nj)
                / 1e9,
        );
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        Some(self.page_cache.stats().hit_rate())
    }

    fn is_persistent(&self) -> bool {
        // The OS page cache is volatile DRAM; durability requires msync.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, is_write: bool) -> Access {
        Access {
            addr,
            size: 64,
            is_write,
            compute_instructions: 0,
        }
    }

    #[test]
    fn fault_then_hit() {
        let mut p = MmapPlatform::new("mmap", SsdConfig::tiny_for_tests(), 1 << 20);
        let fault = p.access(&acc(0, false), Nanos::ZERO);
        assert!(
            fault.os_time >= Nanos::from_micros(10),
            "os {}",
            fault.os_time
        );
        let hit = p.access(&acc(64, false), fault.finished_at);
        assert_eq!(hit.os_time, Nanos::ZERO);
        assert!(hit.latency(fault.finished_at) < Nanos::from_micros(1));
        assert!(p.page_cache_hit_rate() > 0.0);
    }

    #[test]
    fn dirty_evictions_pay_write_back() {
        // One-page cache: every new page evicts the previous one.
        let mut p = MmapPlatform::new("mmap", SsdConfig::tiny_for_tests(), OS_PAGE);
        let a = p.access(&acc(0, true), Nanos::ZERO);
        let b = p.access(&acc(OS_PAGE, true), a.finished_at);
        assert!(
            b.ssd_time > a.ssd_time,
            "second fault also writes back the dirty victim"
        );
    }

    #[test]
    fn faster_ssd_means_faster_faults() {
        let mut ull = MmapPlatform::new("mmap-ull", SsdConfig::ull_flash(), 1 << 20);
        let mut sata = MmapPlatform::new("mmap-sata", SsdConfig::sata_ssd(), 1 << 20);
        let a = ull.access(&acc(0, false), Nanos::ZERO);
        let b = sata.access(&acc(0, false), Nanos::ZERO);
        assert!(a.latency(Nanos::ZERO) < b.latency(Nanos::ZERO));
    }

    #[test]
    fn energy_accounts_all_components() {
        let mut p = MmapPlatform::new("mmap", SsdConfig::tiny_for_tests(), 1 << 20);
        let mut t = Nanos::ZERO;
        for i in 0..32u64 {
            t = p.access(&acc(i * OS_PAGE, i % 2 == 0), t).finished_at;
        }
        let e = p.device_energy(t);
        assert!(e.component_joules("nvdimm") > 0.0);
        assert!(e.total_joules() > 0.0);
        assert!(!p.is_persistent());
    }
}
