//! Qualitative tables of the paper (Table I, Table II) and the headline
//! claims of the abstract, exposed as data so the `figures` binary and the
//! integration tests can print and check them.

use serde::{Deserialize, Serialize};

/// One row of Table I: feature comparison across persistent-memory types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// Memory type name.
    pub name: &'static str,
    /// Relative capacity class.
    pub capacity: &'static str,
    /// Whether the OS must intervene on the data path.
    pub os_intervention: bool,
    /// Qualitative performance class.
    pub performance: &'static str,
    /// Whether the type is byte-addressable.
    pub byte_addressable: bool,
}

/// Table I of the paper.
#[must_use]
pub fn feature_table() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "NVDIMM-N",
            capacity: "Low",
            os_intervention: false,
            performance: "DRAM-like",
            byte_addressable: true,
        },
        FeatureRow {
            name: "NVDIMM-F",
            capacity: "High",
            os_intervention: true,
            performance: "Slow",
            byte_addressable: false,
        },
        FeatureRow {
            name: "NVDIMM-P",
            capacity: "Medium",
            os_intervention: true,
            performance: "Medium",
            byte_addressable: true,
        },
        FeatureRow {
            name: "HAMS",
            capacity: "High",
            os_intervention: false,
            performance: "DRAM-like",
            byte_addressable: true,
        },
    ]
}

/// Table II of the paper: the simulated system configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperConfig {
    /// Operating system of the full-system simulation.
    pub os: &'static str,
    /// CPU configuration.
    pub cpu: &'static str,
    /// Cache hierarchy.
    pub cache: &'static str,
    /// Memory (NVDIMM) configuration.
    pub memory: &'static str,
    /// Storage (ULL-Flash) configuration.
    pub storage: &'static str,
    /// Flash timing.
    pub flash: &'static str,
}

/// Table II of the paper.
#[must_use]
pub fn paper_config() -> PaperConfig {
    PaperConfig {
        os: "Linux 4.9, Ubuntu 14.10",
        cpu: "quad-core, ARM v8, 2GHz",
        cache: "64KB L1I / 64KB L1D / 2MB L2",
        memory: "NVDIMM, DDR4, 8GB, 128KB page",
        storage: "ULL-Flash, 512MB buffer, 800GB",
        flash: "3us read, 100us write",
    }
}

/// The abstract's headline claims, used as reproduction targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineClaims {
    /// HAMS (loose) speed-up over the software MMF design (97 % ⇒ 1.97×).
    pub hams_speedup_over_mmap: f64,
    /// Advanced HAMS speed-up over the software MMF design (119 % ⇒ 2.19×).
    pub advanced_hams_speedup_over_mmap: f64,
    /// HAMS energy relative to the MMF design (41 % lower ⇒ 0.59×).
    pub hams_energy_vs_mmap: f64,
    /// Advanced HAMS energy relative to the MMF design (45 % lower ⇒ 0.55×).
    pub advanced_hams_energy_vs_mmap: f64,
    /// Average NVDIMM cache hit rate reported in §VI-C.
    pub nvdimm_hit_rate: f64,
}

/// The paper's headline numbers.
#[must_use]
pub fn headline_claims() -> HeadlineClaims {
    HeadlineClaims {
        hams_speedup_over_mmap: 1.97,
        advanced_hams_speedup_over_mmap: 2.19,
        hams_energy_vs_mmap: 0.59,
        advanced_hams_energy_vs_mmap: 0.55,
        nvdimm_hit_rate: 0.94,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_and_hams_is_best_of_both() {
        let t = feature_table();
        assert_eq!(t.len(), 4);
        let hams = t.iter().find(|r| r.name == "HAMS").unwrap();
        assert!(hams.byte_addressable);
        assert!(!hams.os_intervention);
        assert_eq!(hams.capacity, "High");
        let nvdimm_n = t.iter().find(|r| r.name == "NVDIMM-N").unwrap();
        assert_eq!(nvdimm_n.capacity, "Low");
    }

    #[test]
    fn table2_matches_the_paper() {
        let c = paper_config();
        assert!(c.memory.contains("8GB"));
        assert!(c.flash.contains("3us read"));
        assert!(c.storage.contains("800GB"));
    }

    #[test]
    fn headline_claims_are_the_abstract_numbers() {
        let h = headline_claims();
        assert!((h.hams_speedup_over_mmap - 1.97).abs() < 1e-9);
        assert!((h.advanced_hams_speedup_over_mmap - 2.19).abs() < 1e-9);
        assert!(h.hams_energy_vs_mmap < 1.0);
        assert!(h.nvdimm_hit_rate > 0.9);
    }
}
