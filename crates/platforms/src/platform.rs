//! The [`Platform`] abstraction: a complete system that serves memory
//! accesses from a workload trace.
//!
//! Every evaluated system of §VI-A — `mmap`, `flatflash-P/-M`, `nvdimm-C`,
//! `optane-P/-M`, the four HAMS variants and the `oracle` — implements this
//! trait, so the runner and every figure harness are platform-agnostic.

use hams_core::{BackendTopology, FaultPlan, ShardConfig};
use hams_energy::EnergyAccount;
use hams_nvme::QueueConfig;
use hams_sim::{LatencyVector, Nanos};
use hams_telemetry::{Span, TelemetrySink};
use hams_workloads::Access;
use serde::{Deserialize, Serialize};

/// The outcome of serving one access on a platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Simulated time at which the access (and any blocking work it caused)
    /// completed.
    pub finished_at: Nanos,
    /// Time the CPU was stalled inside the OS / software stack ("OS" in
    /// Fig. 17). Zero for hardware-automated platforms.
    pub os_time: Nanos,
    /// Time the CPU was stalled waiting for the storage device ("SSD" in
    /// Fig. 17) when that wait is visible to software.
    pub ssd_time: Nanos,
    /// Time spent in the memory system itself (DRAM/NVDIMM plus, for HAMS,
    /// hardware-managed fills and evictions) — charged to the application as
    /// load/store latency.
    pub memory_time: Nanos,
}

impl AccessOutcome {
    /// Total stall latency relative to the issue time.
    #[must_use]
    pub fn latency(&self, issued_at: Nanos) -> Nanos {
        self.finished_at - issued_at
    }
}

/// One entry of a serving batch: a memory access plus the compute phase the
/// CPU spends before issuing it.
///
/// The runner owns the CPU model, so platforms never see instruction counts —
/// they receive the already-priced compute gap and only have to respect it
/// when scheduling the access (see [`Platform::serve_batch`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The memory access to serve.
    pub access: Access,
    /// CPU compute time between the previous access completing and this one
    /// issuing.
    pub compute: Nanos,
}

impl BatchRequest {
    /// A request with no preceding compute phase (back-to-back issue).
    #[must_use]
    pub fn immediate(access: Access) -> Self {
        BatchRequest {
            access,
            compute: Nanos::ZERO,
        }
    }
}

/// The outcome of serving one batch: one [`AccessOutcome`] per request, in
/// request order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Per-access outcomes, index-aligned with the request batch.
    pub outcomes: Vec<AccessOutcome>,
}

impl BatchOutcome {
    /// An empty outcome with room for `capacity` accesses.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BatchOutcome {
            outcomes: Vec::with_capacity(capacity),
        }
    }

    /// Completion time of the batch: when its last access finished, or
    /// `start` for an empty batch.
    #[must_use]
    pub fn finished_at(&self, start: Nanos) -> Nanos {
        self.outcomes.last().map_or(start, |o| o.finished_at)
    }
}

/// A complete system under test.
pub trait Platform {
    /// Platform name as used in the paper's figure legends (e.g. `"hams-TE"`).
    fn name(&self) -> &str;

    /// Serves one memory access issued at `now`.
    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome;

    /// Serves a batch of accesses, the first one issuing at
    /// `start + batch[0].compute` and each subsequent access at the previous
    /// access's completion plus its own compute gap.
    ///
    /// The contract is strict: `serve_batch` must produce exactly the
    /// outcomes the equivalent [`Platform::access`] loop would, so runner
    /// metrics are byte-identical on either path. What platforms may change
    /// is *how fast the host computes them*: overrides amortize per-call
    /// setup (configuration lookups, queue-pair doorbell bookkeeping, PRP
    /// construction, DDR4/PCIe grant scaffolding) across the whole batch
    /// instead of re-establishing it per access. Software-mediated platforms
    /// (`mmap`) keep this per-access fallback, mirroring how their real
    /// counterparts cannot batch page faults either.
    ///
    /// This convenience form allocates a fresh [`BatchOutcome`] per call;
    /// the serving loop itself goes through [`Platform::serve_batch_into`],
    /// which reuses a caller-owned buffer across batches. Platforms
    /// override `serve_batch_into`, and both forms stay in sync.
    fn serve_batch(&mut self, batch: &[BatchRequest], start: Nanos) -> BatchOutcome {
        let mut result = BatchOutcome::with_capacity(batch.len());
        self.serve_batch_into(batch, start, &mut result);
        result
    }

    /// [`Platform::serve_batch`] writing into a caller-owned outcome buffer —
    /// the allocation-free form the runner's serving loop uses, so one
    /// buffer is reused across every batch of a workload replay.
    ///
    /// The scratch-reuse contract for implementors: clear `out.outcomes`
    /// first, then push exactly one [`AccessOutcome`] per request in request
    /// order (never inherit entries from the previous batch), and produce
    /// byte-identical outcomes to the [`Platform::access`] loop. Do not
    /// shrink the buffer — its retained capacity is the point.
    fn serve_batch_into(&mut self, batch: &[BatchRequest], start: Nanos, out: &mut BatchOutcome) {
        out.outcomes.clear();
        let mut t = start;
        for request in batch {
            let outcome = self.access(&request.access, t + request.compute);
            t = outcome.finished_at;
            out.outcomes.push(outcome);
        }
    }

    /// Opts the platform into a multi-queue NVMe submission model: queue
    /// count, ring depth and MSI coalescing. Returns `true` if the platform
    /// honours the configuration.
    ///
    /// Hardware-automated platforms with an NVMe path (the HAMS variants,
    /// `flatflash-P`, `optane-P`) override this; software-mediated and
    /// queue-less platforms (`mmap`, `oracle`, the host-cached variants)
    /// keep this single-queue fallback and return `false`. Call before
    /// serving traffic — reconfiguring mid-run discards in-flight queue
    /// state. [`QueueConfig::single`] restores the original behaviour
    /// exactly, which is what the PR 1 byte-identical contract pins.
    fn configure_queues(&mut self, _queues: QueueConfig) -> bool {
        false
    }

    /// Opts the platform into a sharded MoS tag directory: bank count and
    /// set→shard hash policy. Returns `true` if the platform honours the
    /// configuration.
    ///
    /// Only platforms with a hardware tag cache (the four HAMS variants)
    /// override this; every other system keeps this fallback and returns
    /// `false`. Call before serving traffic — repartitioning rebuilds the
    /// directory cold. Unlike [`Platform::configure_queues`], the shard
    /// shape is *never* allowed to change results: the shard-invariance
    /// contract (`tests/shard_equivalence.rs`) pins metrics byte-identical
    /// for any `ShardConfig`, with [`ShardConfig::single`] the original
    /// monolithic array.
    fn configure_shards(&mut self, _shards: ShardConfig) -> bool {
        false
    }

    /// Opts the platform into cell-parallel batch serving: each serving
    /// batch is partitioned by owning tag-directory bank and the per-bank
    /// sub-batches are classified concurrently on `workers` scoped threads
    /// (`0` means the `HAMS_CELL_THREADS` environment default), with the
    /// timing replayed serially in batch order. Returns `true` if the
    /// platform honours the configuration.
    ///
    /// Only platforms with a banked hardware tag directory (the four HAMS
    /// variants) override this; every other system keeps this fallback and
    /// returns `false`. Like [`Platform::configure_shards`], the worker
    /// count is *never* allowed to change results: metrics stay
    /// byte-identical to the serial path at any thread count
    /// (`tests/cell_parallel_equivalence.rs` pins this), because
    /// classification is a pure function of the access sequence and every
    /// timing decision remains serial.
    fn configure_cell_threads(&mut self, _workers: usize) -> bool {
        false
    }

    /// Opts the platform into a multi-device archive backend: one device, a
    /// RAID-0 fan-out over several ULL-Flash archives, or the CXL-attached
    /// variant. Returns `true` if the platform honours the configuration.
    ///
    /// Only platforms that own an in-controller archive (the four HAMS
    /// variants) override this; every other system keeps this fallback and
    /// returns `false`. Call before serving traffic — re-shaping rebuilds
    /// the archive set cold. [`BackendTopology::single`] restores the
    /// original single-archive engine byte for byte
    /// (`tests/backend_equivalence.rs` pins this for every platform);
    /// unlike [`Platform::configure_shards`], multi-device shapes
    /// legitimately change timing — that is the point of the fan-out.
    fn configure_backend(&mut self, _topology: BackendTopology) -> bool {
        false
    }

    /// Installs a device-fault plan on the platform's archive backend:
    /// named devices fail at planned simulated instants, the array serves
    /// degraded (parity reconstruction) and rebuilds under load. Returns
    /// `true` if the platform honours the plan.
    ///
    /// Only the HAMS variants own a fault-injectable archive and override
    /// this; every other system keeps this fallback and returns `false`.
    /// Requires the parity backend — call [`Platform::configure_backend`]
    /// with [`BackendTopology::Raid5`] first (re-shaping rebuilds the
    /// archive cold and drops any installed plan). A platform with a plan
    /// but zero due faults stays metrics-byte-identical to its healthy twin
    /// (`tests/fault_equivalence.rs` pins this), and fault timing advances
    /// only on the simulated clock of the serial archive command stream, so
    /// the same plan is deterministic across runs and thread counts.
    fn configure_faults(&mut self, _plan: &FaultPlan) -> bool {
        false
    }

    /// Advances the platform's fault state machine to simulated instant
    /// `now` without serving traffic — how a harness lets a pending rebuild
    /// finish after the last foreground access. No-op for platforms without
    /// a fault-injectable archive.
    fn advance_faults(&mut self, _now: Nanos) {}

    /// Opts the platform into simulated-time span tracing: installs a
    /// telemetry sink on the platform's internal serving spine. Returns
    /// `true` if the platform emits its own spans (controller, tag-array,
    /// NVMe, MSI, archive layers).
    ///
    /// Only the HAMS variants carry an instrumentable controller and
    /// override this; every other system keeps this fallback and returns
    /// `false` — their request-level spans still come from the traced
    /// runners, which trace *every* platform. Tracing is observation-only:
    /// spans record already-computed simulated timestamps, so metrics are
    /// byte-identical with tracing on or off
    /// (`tests/telemetry_equivalence.rs` pins this on all eleven platforms).
    fn configure_trace(&mut self, _sink: TelemetrySink) -> bool {
        false
    }

    /// Moves any spans the platform's internal sink retained into `out`
    /// (appending). No-op for platforms without an internal sink.
    fn take_trace_spans(&mut self, _out: &mut Vec<Span>) {}

    /// Samples the platform's telemetry gauges (in-flight NVMe commands, MSI
    /// burst sizes, internal-DRAM evictions, journal writes, ...) as
    /// `(metric name, value)` pairs appended to `out`. No-op for platforms
    /// without instrumented internals; the traced runners call this once per
    /// dispatched batch, never on the per-access hot path.
    fn telemetry_gauges(&self, _out: &mut Vec<(&'static str, f64)>) {}

    /// The platform's share of the memory-delay breakdown of Fig. 18
    /// (`nvdimm` / `dma` / `ssd`), if it distinguishes these components.
    fn memory_delay(&self) -> LatencyVector {
        LatencyVector::new()
    }

    /// Device-side energy consumed so far (everything except the CPU, which
    /// the runner accounts from compute/stall time): `nvdimm`,
    /// `internal_dram`, `znand`.
    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount;

    /// Cache hit rate of the platform's fastest tier, if it has a cache.
    fn hit_rate(&self) -> Option<f64> {
        None
    }

    /// Whether acknowledged writes are durable across a power failure on this
    /// platform (Table I's "persistence" property as the paper interprets it).
    fn is_persistent(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_energy::EnergyAccount;

    /// A stateful dummy platform: latency grows with every access served, so
    /// batching mistakes (wrong order, wrong issue time) change the outcome.
    struct Ramp {
        served: u64,
    }

    impl Platform for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }

        fn access(&mut self, _access: &Access, now: Nanos) -> AccessOutcome {
            self.served += 1;
            AccessOutcome {
                finished_at: now + Nanos::from_nanos(self.served * 10),
                os_time: Nanos::ZERO,
                ssd_time: Nanos::ZERO,
                memory_time: Nanos::from_nanos(self.served * 10),
            }
        }

        fn device_energy(&self, _elapsed: Nanos) -> EnergyAccount {
            EnergyAccount::new()
        }

        fn is_persistent(&self) -> bool {
            false
        }
    }

    fn batch_of(n: u64) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| BatchRequest {
                access: Access {
                    addr: i * 64,
                    size: 64,
                    is_write: i % 2 == 0,
                    compute_instructions: 0,
                },
                compute: Nanos::from_nanos(i * 3),
            })
            .collect()
    }

    #[test]
    fn default_serve_batch_equals_the_access_loop() {
        let batch = batch_of(16);
        let start = Nanos::from_micros(5);

        let mut looped = Ramp { served: 0 };
        let mut expected = Vec::new();
        let mut t = start;
        for request in &batch {
            let o = looped.access(&request.access, t + request.compute);
            t = o.finished_at;
            expected.push(o);
        }

        let mut batched = Ramp { served: 0 };
        let result = batched.serve_batch(&batch, start);
        assert_eq!(result.outcomes, expected);
        assert_eq!(result.finished_at(start), t);
    }

    #[test]
    fn empty_batch_finishes_at_start() {
        let mut p = Ramp { served: 0 };
        let result = p.serve_batch(&[], Nanos::from_micros(3));
        assert!(result.outcomes.is_empty());
        assert_eq!(
            result.finished_at(Nanos::from_micros(3)),
            Nanos::from_micros(3)
        );
    }

    #[test]
    fn immediate_requests_carry_no_compute() {
        let access = Access {
            addr: 0,
            size: 64,
            is_write: false,
            compute_instructions: 7,
        };
        assert_eq!(BatchRequest::immediate(access).compute, Nanos::ZERO);
    }

    #[test]
    fn outcome_latency_is_relative() {
        let o = AccessOutcome {
            finished_at: Nanos::from_micros(10),
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: Nanos::from_micros(2),
        };
        assert_eq!(o.latency(Nanos::from_micros(4)), Nanos::from_micros(6));
    }
}
