//! The [`Platform`] abstraction: a complete system that serves memory
//! accesses from a workload trace.
//!
//! Every evaluated system of §VI-A — `mmap`, `flatflash-P/-M`, `nvdimm-C`,
//! `optane-P/-M`, the four HAMS variants and the `oracle` — implements this
//! trait, so the runner and every figure harness are platform-agnostic.

use hams_energy::EnergyAccount;
use hams_sim::{LatencyBreakdown, Nanos};
use hams_workloads::Access;
use serde::{Deserialize, Serialize};

/// The outcome of serving one access on a platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Simulated time at which the access (and any blocking work it caused)
    /// completed.
    pub finished_at: Nanos,
    /// Time the CPU was stalled inside the OS / software stack ("OS" in
    /// Fig. 17). Zero for hardware-automated platforms.
    pub os_time: Nanos,
    /// Time the CPU was stalled waiting for the storage device ("SSD" in
    /// Fig. 17) when that wait is visible to software.
    pub ssd_time: Nanos,
    /// Time spent in the memory system itself (DRAM/NVDIMM plus, for HAMS,
    /// hardware-managed fills and evictions) — charged to the application as
    /// load/store latency.
    pub memory_time: Nanos,
}

impl AccessOutcome {
    /// Total stall latency relative to the issue time.
    #[must_use]
    pub fn latency(&self, issued_at: Nanos) -> Nanos {
        self.finished_at - issued_at
    }
}

/// A complete system under test.
pub trait Platform {
    /// Platform name as used in the paper's figure legends (e.g. `"hams-TE"`).
    fn name(&self) -> &str;

    /// Serves one memory access issued at `now`.
    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome;

    /// The platform's share of the memory-delay breakdown of Fig. 18
    /// (`nvdimm` / `dma` / `ssd`), if it distinguishes these components.
    fn memory_delay(&self) -> LatencyBreakdown {
        LatencyBreakdown::new()
    }

    /// Device-side energy consumed so far (everything except the CPU, which
    /// the runner accounts from compute/stall time): `nvdimm`,
    /// `internal_dram`, `znand`.
    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount;

    /// Cache hit rate of the platform's fastest tier, if it has a cache.
    fn hit_rate(&self) -> Option<f64> {
        None
    }

    /// Whether acknowledged writes are durable across a power failure on this
    /// platform (Table I's "persistence" property as the paper interprets it).
    fn is_persistent(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_latency_is_relative() {
        let o = AccessOutcome {
            finished_at: Nanos::from_micros(10),
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: Nanos::from_micros(2),
        };
        assert_eq!(o.latency(Nanos::from_micros(4)), Nanos::from_micros(6));
    }
}
