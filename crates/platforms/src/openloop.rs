//! Open-loop serving: a bounded admission queue between arrival processes
//! and the platform, with sojourn-time (queueing + service) accounting —
//! single-tenant and multi-tenant.
//!
//! The closed-loop runner ([`crate::run_workload`]) issues the next access
//! when the previous one finishes, so the offered load always equals the
//! service rate — saturation behaviour, the regime where HAMS's hardware
//! automation is supposed to beat the software stacks, is invisible. The
//! open-loop driver here decouples the two: an
//! [`ArrivalGenerator`](hams_workloads::ArrivalGenerator) schedules when
//! requests *arrive*, an [`AdmissionQueue`] of configurable depth holds them
//! at the platform boundary (dropping or back-pressuring when full), and the
//! platform serves FIFO batches through the same
//! [`Platform::serve_batch_into`] hot path as closed-loop replay. Each served
//! request records arrival → enqueue → dispatch → finish timestamps, and the
//! sojourn time (finish − arrival) feeds a [`Histogram`] for p50/p99/p999
//! reporting.
//!
//! Multi-tenant serving ([`run_tenant_set_open_loop`]) feeds the *same*
//! engine a [`TenantSet`]'s merged, time-ordered request stream
//! ([`TenantSource`](hams_workloads::TenantSource)): N independent clients,
//! each with its own workload, arrival process and QoS weight, share one
//! admission queue and one platform — the harness for noisy-neighbour
//! interference studies (`fig25`). The tenant id is threaded through
//! [`OpenLoopRecord`] and every request is additionally accounted to its
//! tenant's own sojourn histogram and arrival/served/dropped counters.
//!
//! The engine is pinned to the rest of the test tower by two degenerate
//! contracts (`tests/openloop_equivalence.rs`,
//! `tests/tenant_equivalence.rs`):
//!
//! * at arrival-rate → ∞ ([`ArrivalProcess::Saturate`]) with a depth-1
//!   blocking queue and batch size 1, every dispatch instant equals the
//!   previous finish — exactly the closed-loop serial schedule — so
//!   [`run_workload_open_loop`] must produce [`RunMetrics`] byte-identical
//!   to [`crate::run_workload_serial`];
//! * a single-tenant [`TenantSet`] must produce [`OpenLoopMetrics`]
//!   byte-identical to [`run_workload_open_loop`] (tenant 0 seeds from the
//!   base seed, the merge of one stream is the stream), and per-tenant
//!   counters must always sum exactly to the merged totals.

use hams_sim::{Histogram, Nanos};
use hams_telemetry::{Layer, RunTelemetry, Span, TelemetrySink, TraceSink};
use hams_workloads::{
    Access, ArrivalGenerator, ArrivalProcess, TenantSet, TenantSource, TraceGenerator, WorkloadSpec,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::iter::Peekable;

use crate::platform::{BatchOutcome, BatchRequest, Platform};
use crate::runner::{
    drain_platform_spans, sample_platform_gauges, MetricsFold, RunMetrics, ScaleProfile,
    DEFAULT_BATCH_SIZE,
};

/// What the admission queue does with an arrival that finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the request; it is counted in
    /// [`OpenLoopMetrics::dropped`] and never reaches the platform.
    Drop,
    /// Hold the request at the door until a slot frees (the client blocks);
    /// its enqueue timestamp becomes the instant the slot freed.
    Block,
}

/// Configuration of one open-loop run: the arrival process plus the
/// admission-queue and histogram knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// When requests arrive. Ignored by [`run_tenant_set_open_loop`], where
    /// each tenant's own [`ArrivalProcess`] drives its stream.
    pub arrivals: ArrivalProcess,
    /// Maximum number of requests waiting at the platform boundary.
    pub queue_depth: usize,
    /// What happens to an arrival that finds the queue full.
    pub policy: AdmissionPolicy,
    /// Requests dispatched to [`Platform::serve_batch_into`] per call
    /// (capped by what is queued; `0` is treated as `1`).
    pub batch_size: usize,
    /// Bucket width of the sojourn-time histogram.
    pub sojourn_bucket: Nanos,
    /// Bucket count of the sojourn-time histogram.
    pub sojourn_buckets: usize,
    /// Whether per-request [`OpenLoopRecord`]s are retained in
    /// [`OpenLoopMetrics::records`]. The sojourn histogram (and every
    /// derived percentile) is exact either way; wall-clock harnesses over
    /// millions of arrivals turn this off to keep the run allocation-light.
    pub keep_records: bool,
}

impl OpenLoopConfig {
    /// A Poisson run at `rate_per_sec` with production-flavoured defaults:
    /// a deep dropping queue and a 256 ns × 65 536-bucket sojourn histogram
    /// (~16.8 ms of range before the overflow bucket's true-max tracking
    /// takes over).
    #[must_use]
    pub fn poisson(rate_per_sec: f64) -> Self {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            queue_depth: 4096,
            policy: AdmissionPolicy::Drop,
            batch_size: DEFAULT_BATCH_SIZE,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 65_536,
            keep_records: true,
        }
    }

    /// The degenerate configuration that reproduces closed-loop serial
    /// serving: all arrivals at t = 0, one slot, blocking admission, batch
    /// size 1. Pinned byte-identical to [`crate::run_workload_serial`].
    #[must_use]
    pub fn degenerate_serial() -> Self {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 1,
            policy: AdmissionPolicy::Block,
            batch_size: 1,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 65_536,
            keep_records: true,
        }
    }

    /// Returns a copy with a different arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Returns a copy with a different queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns a copy with a different admission policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with per-request record retention switched on or off.
    #[must_use]
    pub fn with_records(mut self, keep: bool) -> Self {
        self.keep_records = keep;
        self
    }
}

/// The life of one served request, as the four instants the engine records,
/// tagged with the tenant that issued it (0 for single-tenant runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenLoopRecord {
    /// Index of the issuing tenant in its [`TenantSet`] (always 0 for
    /// [`run_workload_open_loop`]).
    pub tenant: usize,
    /// When the request arrived at the platform boundary.
    pub arrival: Nanos,
    /// When it entered the admission queue (equals `arrival` unless a
    /// blocking queue held it at the door).
    pub enqueued: Nanos,
    /// When the platform started serving it.
    pub started: Nanos,
    /// When its outcome completed.
    pub finished: Nanos,
}

impl OpenLoopRecord {
    /// Total time in the system: queueing plus service.
    #[must_use]
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.arrival)
    }

    /// Service time alone (dispatch to completion).
    #[must_use]
    pub fn service(&self) -> Nanos {
        self.finished.saturating_sub(self.started)
    }

    /// Time spent waiting before dispatch (door plus queue).
    #[must_use]
    pub fn queue_wait(&self) -> Nanos {
        self.started.saturating_sub(self.arrival)
    }
}

/// Everything one open-loop run reports: the closed-loop-compatible
/// [`RunMetrics`] plus arrival/drop accounting and the sojourn distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopMetrics {
    /// The same per-run metrics closed-loop replay produces (timing folded
    /// over served requests only).
    pub run: RunMetrics,
    /// Mean offered arrival rate (requests per second; infinite for
    /// [`ArrivalProcess::Saturate`]).
    pub offered_rate_per_sec: f64,
    /// Requests the arrival process generated.
    pub arrivals: u64,
    /// Requests actually served.
    pub served: u64,
    /// Requests rejected by a full [`AdmissionPolicy::Drop`] queue.
    pub dropped: u64,
    /// Arrival instant of the first request the arrival process produced
    /// (zero when nothing arrived).
    pub first_arrival: Nanos,
    /// Completion instant of the last served request (zero when nothing was
    /// served).
    pub last_finish: Nanos,
    /// Sojourn-time (queueing + service) distribution over served requests.
    pub sojourn: Histogram,
    /// Per-request timestamp records, in service order. Empty when
    /// [`OpenLoopConfig::keep_records`] is off — the histogram above stays
    /// exact either way.
    pub records: Vec<OpenLoopRecord>,
}

impl OpenLoopMetrics {
    /// The simulated wall-clock span of the run: first arrival → last
    /// finish. This — not the metric fold's busy time — is the denominator
    /// of [`OpenLoopMetrics::achieved_per_sec`]: under light load the
    /// server idles between arrivals, and under a late-starting arrival
    /// schedule the fold's span-from-zero would understate the rate.
    #[must_use]
    pub fn wall_span(&self) -> Nanos {
        self.last_finish.saturating_sub(self.first_arrival)
    }

    /// Achieved throughput in served requests per second of simulated
    /// wall-clock time ([`OpenLoopMetrics::wall_span`]).
    #[must_use]
    pub fn achieved_per_sec(&self) -> f64 {
        self.served as f64 / self.wall_span().as_secs_f64().max(1e-12)
    }

    /// Fraction of arrivals that were dropped.
    #[must_use]
    pub fn drop_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrivals as f64
        }
    }

    /// The sojourn percentiles the paper-style tail report uses:
    /// (p50, p99, p999). `None` entries mean no request was served.
    #[must_use]
    pub fn sojourn_p50_p99_p999(&self) -> [Option<Nanos>; 3] {
        let ps = self.sojourn.percentiles(&[50.0, 99.0, 99.9]);
        [ps[0], ps[1], ps[2]]
    }
}

/// One tenant's share of a multi-tenant open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant index in the [`TenantSet`].
    pub tenant: usize,
    /// Tenant name.
    pub name: String,
    /// QoS weight (fairness normalizes achieved rates by this).
    pub weight: f64,
    /// The tenant's mean offered arrival rate.
    pub offered_rate_per_sec: f64,
    /// Requests this tenant's arrival process generated.
    pub arrivals: u64,
    /// Requests of this tenant actually served.
    pub served: u64,
    /// Requests of this tenant rejected by a full dropping queue.
    pub dropped: u64,
    /// Arrival instant of this tenant's first request (zero when none).
    pub first_arrival: Nanos,
    /// Completion instant of this tenant's last served request.
    pub last_finish: Nanos,
    /// Sojourn distribution over this tenant's served requests.
    pub sojourn: Histogram,
}

impl TenantMetrics {
    /// This tenant's achieved throughput over its own simulated wall span
    /// (its first arrival → its last finish).
    #[must_use]
    pub fn achieved_per_sec(&self) -> f64 {
        let span = self.last_finish.saturating_sub(self.first_arrival);
        self.served as f64 / span.as_secs_f64().max(1e-12)
    }

    /// Fraction of this tenant's arrivals that were dropped.
    #[must_use]
    pub fn drop_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrivals as f64
        }
    }

    /// This tenant's (p50, p99, p999) sojourn percentiles.
    #[must_use]
    pub fn sojourn_p50_p99_p999(&self) -> [Option<Nanos>; 3] {
        let ps = self.sojourn.percentiles(&[50.0, 99.0, 99.9]);
        [ps[0], ps[1], ps[2]]
    }
}

/// A multi-tenant open-loop run: the merged-stream metrics plus one
/// [`TenantMetrics`] per tenant. Per-tenant arrivals/served/dropped always
/// sum exactly to the merged totals (pinned in
/// `tests/tenant_equivalence.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantMetrics {
    /// Metrics of the merged stream, exactly as a single-tenant run reports
    /// them. For sets of more than one tenant the workload label is the
    /// tenants' workload names joined with `+`, and `run.pages_per_sec`
    /// reflects the byte mix actually served.
    pub merged: OpenLoopMetrics,
    /// Per-tenant accounting, in [`TenantSet`] order.
    pub tenants: Vec<TenantMetrics>,
}

impl MultiTenantMetrics {
    /// Jain's fairness index over weight-normalized achieved rates:
    /// `(Σx)² / (n · Σx²)` with `x_i = achieved_i / weight_i`. 1.0 means
    /// every tenant got throughput proportional to its weight; `1/n` means
    /// one tenant got everything. Returns 1.0 for the vacuous cases (a
    /// single tenant, or nothing served at all).
    #[must_use]
    pub fn fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.achieved_per_sec() / t.weight)
            .collect();
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq <= 0.0 {
            return 1.0;
        }
        (sum * sum) / (n * sum_sq)
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantMetrics> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

/// One request waiting at the platform boundary.
#[derive(Debug, Clone, Copy)]
struct Queued {
    tenant: usize,
    access: Access,
    arrival: Nanos,
    enqueued: Nanos,
}

/// The bounded FIFO between the arrival streams and the platform.
///
/// `door` models [`AdmissionPolicy::Block`]: the one client the full queue is
/// back-pressuring. While it is occupied no later arrival can be admitted
/// (open-loop clients are independent, but admission is a single FIFO door),
/// which is exactly the head-of-line blocking a bounded listen queue shows.
/// Arrival, drop and first-arrival accounting is kept per tenant; merged
/// totals are the exact sums.
#[derive(Debug)]
struct AdmissionQueue {
    depth: usize,
    policy: AdmissionPolicy,
    queue: VecDeque<Queued>,
    door: Option<(usize, Access, Nanos)>,
    /// Per-tenant count of requests pulled off the arrival streams.
    arrivals: Vec<u64>,
    /// Per-tenant count of requests rejected by a full dropping queue.
    dropped: Vec<u64>,
    /// Per-tenant first arrival instant.
    first_arrival: Vec<Option<Nanos>>,
    /// The instant the most recent blocked client got its slot; later
    /// arrivals cannot have enqueued before it.
    unblocked_at: Nanos,
}

impl AdmissionQueue {
    fn new(depth: usize, policy: AdmissionPolicy, tenant_count: usize) -> Self {
        AdmissionQueue {
            depth: depth.max(1),
            policy,
            queue: VecDeque::with_capacity(depth.max(1)),
            door: None,
            arrivals: vec![0; tenant_count],
            dropped: vec![0; tenant_count],
            first_arrival: vec![None; tenant_count],
            unblocked_at: Nanos::ZERO,
        }
    }

    /// Admits every arrival with instant ≤ `t`, in arrival order, applying
    /// the overflow policy. The blocked door client (if any) is first in
    /// line and enqueues at `t` itself — the moment its slot freed. Callers
    /// must therefore invoke this at every instant a slot *actually* frees
    /// (in particular at batch dispatch, when `pop_front` empties slots),
    /// not only when the server goes idle.
    fn admit_until<I>(&mut self, source: &mut Peekable<I>, t: Nanos)
    where
        I: Iterator<Item = (usize, Access, Nanos)>,
    {
        loop {
            let (item, from_door) = if let Some(blocked) = self.door.take() {
                (blocked, true)
            } else if source.peek().is_some_and(|&(_, _, arrival)| arrival <= t) {
                let item = source.next().expect("peeked");
                let (tenant, _, arrival) = item;
                self.arrivals[tenant] += 1;
                self.first_arrival[tenant].get_or_insert(arrival);
                (item, false)
            } else {
                return;
            };
            let (tenant, access, arrival) = item;
            if self.queue.len() < self.depth {
                if from_door {
                    self.unblocked_at = t;
                }
                self.queue.push_back(Queued {
                    tenant,
                    access,
                    arrival,
                    enqueued: arrival.max(self.unblocked_at),
                });
            } else {
                match self.policy {
                    AdmissionPolicy::Drop => self.dropped[tenant] += 1,
                    AdmissionPolicy::Block => {
                        self.door = Some(item);
                        return;
                    }
                }
            }
        }
    }
}

/// Everything the engine core needs beyond the platform and the stream.
struct CoreSetup<'a> {
    /// Number of tenants feeding the stream (1 for single-tenant runs).
    tenant_count: usize,
    /// Unscaled spec used for the merged run's labels.
    spec: WorkloadSpec,
    /// Scaled spec used for the merged run's byte accounting.
    scaled: WorkloadSpec,
    /// Total requests the stream will offer (capacity hint).
    expected: usize,
    /// Mean offered rate reported in the metrics.
    offered_rate_per_sec: f64,
    config: &'a OpenLoopConfig,
}

/// Per-tenant accumulators the serving loop maintains.
struct TenantAccum {
    served: u64,
    last_finish: Nanos,
    sojourn: Histogram,
}

/// What the core hands back: merged metrics plus the per-tenant ledgers.
struct CoreOut {
    metrics: OpenLoopMetrics,
    tenants: Vec<TenantAccum>,
    arrivals: Vec<u64>,
    dropped: Vec<u64>,
    first_arrivals: Vec<Option<Nanos>>,
}

/// The open-loop serving loop, generic over any time-ordered
/// `(tenant, access, arrival)` stream. Single- and multi-tenant runs are
/// the *same* engine: the single-tenant entry point wraps its zipped
/// trace × arrival stream with tenant id 0, which is also exactly what a
/// one-tenant [`TenantSource`] yields — the degenerate equivalence the
/// tenant tier pins.
fn run_open_loop_core<I>(
    platform: &mut dyn Platform,
    source: I,
    setup: CoreSetup<'_>,
    mut telemetry: Option<&mut RunTelemetry>,
) -> CoreOut
where
    I: Iterator<Item = (usize, Access, Nanos)>,
{
    let config = setup.config;
    let batch_size = config.batch_size.max(1);
    // Telemetry is observation only: everything behind these Options records
    // already-computed instants and never feeds back into the schedule, so
    // traced and untraced runs stay byte-identical
    // (`tests/telemetry_equivalence.rs`).
    if let Some(t) = telemetry.as_deref_mut() {
        platform.configure_trace(TelemetrySink::recording(t.recorder.capacity()));
    }
    let drop_series: Vec<String> = if telemetry.is_some() {
        (0..setup.tenant_count)
            .map(|t| format!("tenant{t}_dropped"))
            .collect()
    } else {
        Vec::new()
    };
    let mut gauge_scratch: Vec<(&'static str, f64)> = Vec::new();
    let mut fold = MetricsFold::new();
    let buckets = config.sojourn_buckets.max(1);
    let mut sojourn = Histogram::new(config.sojourn_bucket, buckets);
    let mut tenants: Vec<TenantAccum> = (0..setup.tenant_count)
        .map(|_| TenantAccum {
            served: 0,
            last_finish: Nanos::ZERO,
            sojourn: Histogram::new(config.sojourn_bucket, buckets),
        })
        .collect();
    let mut records = Vec::with_capacity(if config.keep_records {
        setup.expected
    } else {
        0
    });
    let mut served = 0u64;
    let mut last_finish = Nanos::ZERO;

    let mut source = source.peekable();
    let mut queue = AdmissionQueue::new(config.queue_depth, config.policy, setup.tenant_count);

    let cap = batch_size.min(setup.expected.max(1));
    let mut batch: Vec<BatchRequest> = Vec::with_capacity(cap);
    let mut meta: Vec<(usize, Nanos, Nanos)> = Vec::with_capacity(cap);
    let mut out = BatchOutcome::with_capacity(cap);
    // The instant the platform finished its last dispatched batch; it sits
    // idle from here until the next dispatch.
    let mut server_free = Nanos::ZERO;

    loop {
        // Catch the queue up to the server's clock, then — if it is idle and
        // empty — jump it forward to the next arrival.
        queue.admit_until(&mut source, server_free);
        if queue.queue.is_empty() {
            debug_assert!(
                queue.door.is_none(),
                "a blocked client implies a full queue"
            );
            let Some(&(_, _, next_arrival)) = source.peek() else {
                break;
            };
            queue.admit_until(&mut source, server_free.max(next_arrival));
        }

        // FIFO dispatch: the batch starts when the server is free and its
        // head request is in the queue.
        let head_enqueued = queue.queue.front().expect("non-empty").enqueued;
        let start = server_free.max(head_enqueued);

        batch.clear();
        meta.clear();
        while batch.len() < batch_size {
            let Some(q) = queue.queue.pop_front() else {
                break;
            };
            // Compute phases are priced in dispatch order, which is trace
            // order (FIFO admission of a zipped stream), so the CPU model
            // sees exactly the closed-loop instruction sequence.
            let compute = fold.cpu.retire(q.access.compute_instructions + 1);
            batch.push(BatchRequest {
                access: q.access,
                compute,
            });
            meta.push((q.tenant, q.arrival, q.enqueued));
        }
        // Dispatch freed queue slots *now*: a blocked door client gets its
        // slot — and its enqueue timestamp — at the dispatch instant, not
        // at the end of the batch it had to wait out. (Dispatch instants
        // are unaffected: `start` only ever grows past `server_free`, so
        // this earlier admission changes `enqueued` bookkeeping, never the
        // schedule.)
        queue.admit_until(&mut source, start);

        platform.serve_batch_into(&batch, start, &mut out);
        assert_eq!(
            out.outcomes.len(),
            batch.len(),
            "{} returned {} outcomes for an open-loop batch of {}",
            platform.name(),
            out.outcomes.len(),
            batch.len()
        );

        let mut ready = start;
        for ((request, outcome), &(tenant, arrival, enqueued)) in
            batch.iter().zip(&out.outcomes).zip(&meta)
        {
            fold.fold_from(ready, request.compute, outcome);
            let record = OpenLoopRecord {
                tenant,
                arrival,
                enqueued,
                started: ready,
                finished: outcome.finished_at,
            };
            sojourn.record(record.sojourn());
            served += 1;
            last_finish = last_finish.max(record.finished);
            let acc = &mut tenants[tenant];
            acc.served += 1;
            acc.last_finish = acc.last_finish.max(record.finished);
            acc.sojourn.record(record.sojourn());
            if let Some(t) = telemetry.as_deref_mut() {
                let page = request.access.addr / 4096;
                let tenant_tag = tenant as u16;
                t.recorder.record(
                    Span::new(Layer::Request, "sojourn", arrival, record.finished)
                        .with_tenant(tenant_tag)
                        .with_request(page),
                );
                if enqueued > arrival {
                    t.recorder.record(
                        Span::new(Layer::Admission, "door_block", arrival, enqueued)
                            .with_tenant(tenant_tag)
                            .with_request(page),
                    );
                }
                t.recorder.record(
                    Span::new(Layer::Admission, "queue_wait", enqueued, record.started)
                        .with_tenant(tenant_tag)
                        .with_request(page),
                );
            }
            if config.keep_records {
                records.push(record);
            }
            ready = outcome.finished_at;
        }
        server_free = out.finished_at(start);
        if let Some(t) = telemetry.as_deref_mut() {
            t.registry.gauge(
                "admission_queue_depth",
                server_free,
                queue.queue.len() as f64,
            );
            t.registry
                .counter("requests_served", server_free, served as f64);
            for (name, count) in drop_series.iter().zip(&queue.dropped) {
                t.registry.counter(name, server_free, *count as f64);
            }
            sample_platform_gauges(platform, server_free, &mut gauge_scratch, &mut t.registry);
        }
    }

    let AdmissionQueue {
        arrivals,
        dropped,
        first_arrival,
        ..
    } = queue;
    let arrivals_total: u64 = arrivals.iter().sum();
    let dropped_total: u64 = dropped.iter().sum();
    debug_assert_eq!(arrivals_total, served + dropped_total);
    let first_arrival_merged = first_arrival
        .iter()
        .flatten()
        .copied()
        .min()
        .unwrap_or(Nanos::ZERO);
    if let Some(t) = telemetry {
        drain_platform_spans(platform, t);
    }
    let run = fold.finish(platform, setup.spec, setup.scaled);
    CoreOut {
        metrics: OpenLoopMetrics {
            run,
            offered_rate_per_sec: setup.offered_rate_per_sec,
            arrivals: arrivals_total,
            served,
            dropped: dropped_total,
            first_arrival: first_arrival_merged,
            last_finish,
            sojourn,
            records,
        },
        tenants,
        arrivals,
        dropped,
        first_arrivals: first_arrival,
    }
}

/// Runs one workload through the open-loop engine on one platform.
///
/// The trace and arrival streams are zipped (request *i* of the trace
/// arrives at instant *i* of the arrival schedule), so open-loop and
/// closed-loop runs of the same [`ScaleProfile`] serve exactly the same
/// accesses in the same FIFO order — only the dispatch instants differ.
///
/// # Panics
///
/// Panics when the platform violates the batch contract (wrong outcome
/// count) or the config fails
/// [`ArrivalProcess::validate`](hams_workloads::ArrivalProcess::validate).
pub fn run_workload_open_loop(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
) -> OpenLoopMetrics {
    run_workload_open_loop_inner(platform, spec, scale, config, None)
}

/// [`run_workload_open_loop`] with telemetry collection: per-request
/// [`Layer::Request`] sojourn and [`Layer::Admission`] wait spans, a
/// recording sink on the platform for the controller-side layers, and
/// per-batch registry samples (admission queue depth, served/dropped
/// counters, platform gauges). Observation only — the returned metrics are
/// byte-identical to the untraced run.
pub fn run_workload_open_loop_traced(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
    telemetry: &mut RunTelemetry,
) -> OpenLoopMetrics {
    run_workload_open_loop_inner(platform, spec, scale, config, Some(telemetry))
}

fn run_workload_open_loop_inner(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
    telemetry: Option<&mut RunTelemetry>,
) -> OpenLoopMetrics {
    let scaled = scale.scale_spec(spec);
    let trace = TraceGenerator::new(scaled, scale.seed, scale.accesses);
    let arrivals = ArrivalGenerator::new(config.arrivals, scale.seed, scale.accesses);
    let source = trace.zip(arrivals).map(|(access, t)| (0usize, access, t));
    run_open_loop_core(
        platform,
        source,
        CoreSetup {
            tenant_count: 1,
            spec,
            scaled,
            expected: scale.accesses,
            offered_rate_per_sec: config.arrivals.mean_rate_per_sec(),
            config,
        },
        telemetry,
    )
    .metrics
}

/// Runs a [`TenantSet`] through the open-loop engine on one platform: the
/// tenants' seeded arrival streams are merged into one time-ordered source
/// (ties broken by tenant index) feeding the same bounded admission queue
/// and FIFO batch dispatch as [`run_workload_open_loop`].
///
/// `config.arrivals` is ignored — each tenant's own [`ArrivalProcess`]
/// drives its stream; the queue, batch and histogram knobs apply to the
/// shared platform boundary.
///
/// Pinned contracts: a single-tenant set produces [`OpenLoopMetrics`]
/// byte-identical to [`run_workload_open_loop`] with the same workload,
/// process and scale, and per-tenant counters always sum exactly to the
/// merged totals (`tests/tenant_equivalence.rs`).
///
/// # Panics
///
/// Panics when the set fails [`TenantSet::validate`] or the platform
/// violates the batch contract.
pub fn run_tenant_set_open_loop(
    platform: &mut dyn Platform,
    set: &TenantSet,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
) -> MultiTenantMetrics {
    run_tenant_set_open_loop_inner(platform, set, scale, config, None)
}

/// [`run_tenant_set_open_loop`] with telemetry collection — the
/// multi-tenant analogue of [`run_workload_open_loop_traced`]. Spans carry
/// the issuing tenant's index and the registry gains one
/// `tenant{i}_dropped` counter per tenant. Observation only.
pub fn run_tenant_set_open_loop_traced(
    platform: &mut dyn Platform,
    set: &TenantSet,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
    telemetry: &mut RunTelemetry,
) -> MultiTenantMetrics {
    run_tenant_set_open_loop_inner(platform, set, scale, config, Some(telemetry))
}

fn run_tenant_set_open_loop_inner(
    platform: &mut dyn Platform,
    set: &TenantSet,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
    telemetry: Option<&mut RunTelemetry>,
) -> MultiTenantMetrics {
    set.validate();
    let scaled: Vec<WorkloadSpec> = set
        .tenants
        .iter()
        .map(|t| scale.scale_spec(t.spec))
        .collect();
    let source = TenantSource::new(set, &scaled, scale.seed, scale.accesses);
    let out = run_open_loop_core(
        platform,
        source,
        CoreSetup {
            tenant_count: set.len(),
            spec: set.tenants[0].spec,
            scaled: scaled[0],
            expected: set.total_accesses(scale.accesses),
            offered_rate_per_sec: set.offered_rate_per_sec(),
            config,
        },
        telemetry,
    );
    let CoreOut {
        mut metrics,
        tenants: accums,
        arrivals,
        dropped,
        first_arrivals,
    } = out;
    if set.len() > 1 {
        // The core labelled and byte-accounted the merged run with tenant
        // 0's spec (which is exact for the degenerate single-tenant pin);
        // for a mixed set, re-derive both from what was actually served.
        metrics.run.workload = set.workload_label();
        let secs = metrics.run.total_time.as_secs_f64().max(1e-12);
        let bytes: u64 = accums
            .iter()
            .zip(&scaled)
            .map(|(acc, s)| acc.served * s.access_bytes)
            .sum();
        metrics.run.pages_per_sec = bytes as f64 / 4096.0 / secs;
    }
    let tenants = set
        .tenants
        .iter()
        .zip(accums)
        .enumerate()
        .map(|(i, (t, acc))| TenantMetrics {
            tenant: i,
            name: t.name.clone(),
            weight: t.weight,
            offered_rate_per_sec: t.arrivals.mean_rate_per_sec(),
            arrivals: arrivals[i],
            served: acc.served,
            dropped: dropped[i],
            first_arrival: first_arrivals[i].unwrap_or(Nanos::ZERO),
            last_finish: acc.last_finish,
            sojourn: acc.sojourn,
        })
        .collect();
    MultiTenantMetrics {
        merged: metrics,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_workload_serial, PlatformKind};
    use hams_workloads::TenantSpec;

    fn tiny_scale() -> ScaleProfile {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 1_200,
            seed: 17,
        }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::by_name("rndRd").unwrap()
    }

    #[test]
    fn degenerate_open_loop_matches_serial_on_hams_te() {
        let scale = tiny_scale();
        let mut serial = PlatformKind::HamsTE.build(&scale);
        let mut open = PlatformKind::HamsTE.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec(), &scale);
        let ol = run_workload_open_loop(
            open.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::degenerate_serial(),
        );
        assert_eq!(ol.run, reference);
        assert_eq!(ol.served, scale.accesses as u64);
        assert_eq!(ol.dropped, 0);
    }

    #[test]
    fn drop_policy_accounts_every_arrival() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Mmap.build(&scale);
        // Saturate + a shallow dropping queue: nearly everything past the
        // first window is rejected.
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 8,
            policy: AdmissionPolicy::Drop,
            batch_size: 4,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 1024,
            keep_records: true,
        };
        let m = run_workload_open_loop(p.as_mut(), spec(), &scale, &config);
        assert_eq!(m.arrivals, scale.accesses as u64);
        assert_eq!(m.arrivals, m.served + m.dropped);
        assert!(m.dropped > 0, "a full dropping queue must drop");
        assert_eq!(m.served, m.records.len() as u64);
        assert_eq!(m.sojourn.count(), m.served);
    }

    #[test]
    fn block_policy_never_drops() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Mmap.build(&scale);
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 3,
            policy: AdmissionPolicy::Block,
            batch_size: 2,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 1024,
            keep_records: true,
        };
        let m = run_workload_open_loop(p.as_mut(), spec(), &scale, &config);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.served, scale.accesses as u64);
    }

    #[test]
    fn blocked_door_client_enqueues_at_the_dispatch_that_freed_its_slot() {
        // Saturate + Block with depth 2 and batch 2: requests 0 and 1 fill
        // the queue at t = 0 and request 2 blocks at the door. Its slot
        // frees when batch [0, 1] is *dispatched* (popped) at t = 0 — the
        // old engine only admitted it at the next admit_until(server_free),
        // the end of that batch, inflating its queue wait by one batch
        // service time.
        let scale = ScaleProfile {
            capacity_divisor: 2048,
            accesses: 6,
            seed: 5,
        };
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 2,
            policy: AdmissionPolicy::Block,
            batch_size: 2,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 1024,
            keep_records: true,
        };
        for kind in [PlatformKind::Oracle, PlatformKind::HamsTE] {
            let mut p = kind.build(&scale);
            let m = run_workload_open_loop(p.as_mut(), spec(), &scale, &config);
            assert_eq!(m.served, 6);
            let r = &m.records;
            // The door client of the first batch enqueues at that batch's
            // dispatch instant (t = 0 under saturation)...
            assert_eq!(
                r[2].enqueued,
                r[0].started,
                "{}: door client enqueued at {:?}, batch dispatched at {:?}",
                kind.label(),
                r[2].enqueued,
                r[0].started
            );
            // ...which is strictly before the batch finishes — the old
            // engine's (buggy) enqueue instant.
            assert!(
                r[2].enqueued < r[1].finished,
                "{}: door client's enqueue was deferred to the end of the batch",
                kind.label()
            );
            // Same for the door client displaced by the second batch.
            assert_eq!(r[4].enqueued, r[2].started, "{}", kind.label());
        }
    }

    #[test]
    fn record_retention_is_opt_in_with_an_exact_histogram_either_way() {
        let scale = tiny_scale();
        let config = OpenLoopConfig::poisson(2_000_000.0);
        let mut with = PlatformKind::HamsTE.build(&scale);
        let mut without = PlatformKind::HamsTE.build(&scale);
        let kept = run_workload_open_loop(with.as_mut(), spec(), &scale, &config);
        let dropped = run_workload_open_loop(
            without.as_mut(),
            spec(),
            &scale,
            &config.with_records(false),
        );
        assert!(!kept.records.is_empty());
        assert!(dropped.records.is_empty());
        assert_eq!(kept.run, dropped.run);
        assert_eq!(kept.sojourn, dropped.sojourn);
        assert_eq!(kept.served, dropped.served);
        assert_eq!(kept.sojourn.count(), kept.served);
        assert_eq!(kept.first_arrival, dropped.first_arrival);
        assert_eq!(kept.last_finish, dropped.last_finish);
        assert!((kept.achieved_per_sec() - dropped.achieved_per_sec()).abs() < 1e-9);
    }

    #[test]
    fn achieved_rate_uses_the_simulated_wall_span() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Oracle.build(&scale);
        let m = run_workload_open_loop(
            p.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::poisson(1_000_000.0),
        );
        // Poisson arrivals start after the first exponential gap, so the
        // wall span is strictly inside the fold's span-from-zero.
        assert!(!m.first_arrival.is_zero());
        assert_eq!(m.last_finish, m.run.total_time);
        assert_eq!(m.wall_span(), m.last_finish.saturating_sub(m.first_arrival));
        let expected = m.served as f64 / m.wall_span().as_secs_f64();
        assert!((m.achieved_per_sec() - expected).abs() < 1e-6);
    }

    #[test]
    fn sojourn_decomposes_into_wait_plus_service() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Oracle.build(&scale);
        let m = run_workload_open_loop(
            p.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::poisson(2_000_000.0),
        );
        for r in &m.records {
            assert!(r.arrival <= r.enqueued);
            assert!(r.enqueued <= r.started);
            assert!(r.started <= r.finished);
            assert_eq!(r.sojourn(), r.queue_wait() + r.service());
            assert_eq!(r.tenant, 0);
        }
    }

    #[test]
    fn deeper_queue_drops_no_more() {
        let scale = tiny_scale();
        let base = OpenLoopConfig::poisson(50_000_000.0).with_queue_depth(4);
        let mut shallow = PlatformKind::Mmap.build(&scale);
        let mut deep = PlatformKind::Mmap.build(&scale);
        let s = run_workload_open_loop(shallow.as_mut(), spec(), &scale, &base);
        let d = run_workload_open_loop(deep.as_mut(), spec(), &scale, &base.with_queue_depth(4096));
        assert!(
            d.dropped <= s.dropped,
            "deepening the queue added drops ({} -> {})",
            s.dropped,
            d.dropped
        );
    }

    #[test]
    fn light_load_leaves_the_server_idle_between_arrivals() {
        let scale = ScaleProfile {
            capacity_divisor: 2048,
            accesses: 300,
            seed: 9,
        };
        // 1000 req/s against a microsecond-scale service time: every request
        // should find an empty queue and wait for nothing.
        let mut p = PlatformKind::Oracle.build(&scale);
        let m = run_workload_open_loop(
            p.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::poisson(1_000.0),
        );
        assert_eq!(m.dropped, 0);
        let waited = m
            .records
            .iter()
            .filter(|r| !r.queue_wait().is_zero())
            .count();
        assert!(
            waited * 10 < m.records.len(),
            "{waited} of {} underloaded requests queued",
            m.records.len()
        );
        // Total time spans the arrival schedule, not just the service time.
        assert!(m.run.total_time >= m.records.last().unwrap().arrival);
    }

    #[test]
    fn traced_open_loop_is_byte_identical_and_covers_the_admission_layer() {
        let scale = tiny_scale();
        let config = OpenLoopConfig::poisson(2_000_000.0);
        let mut plain = PlatformKind::HamsTE.build(&scale);
        let mut traced = PlatformKind::HamsTE.build(&scale);
        let reference = run_workload_open_loop(plain.as_mut(), spec(), &scale, &config);
        let mut telemetry = RunTelemetry::new();
        let m =
            run_workload_open_loop_traced(traced.as_mut(), spec(), &scale, &config, &mut telemetry);
        assert_eq!(reference, m, "tracing changed the open-loop metrics");
        let counts = telemetry.layer_counts();
        assert_eq!(counts[Layer::Request.index()], m.served);
        assert!(counts[Layer::Admission.index()] >= m.served);
        assert!(counts[Layer::Controller.index()] > 0);
        assert!(telemetry.registry.get("admission_queue_depth").is_some());
        assert!(telemetry.registry.get("tenant0_dropped").is_some());
        let served = telemetry.registry.get("requests_served").unwrap();
        assert_eq!(served.last_value(), Some(m.served as f64));
    }

    #[test]
    fn traced_tenant_set_tags_spans_and_counts_per_tenant_drops() {
        let scale = tiny_scale();
        let set = TenantSet::new(vec![
            TenantSpec::new(
                "a",
                spec(),
                ArrivalProcess::Poisson {
                    rate_per_sec: 500_000.0,
                },
            ),
            TenantSpec::new(
                "b",
                WorkloadSpec::by_name("update").unwrap(),
                ArrivalProcess::Poisson {
                    rate_per_sec: 5_000_000.0,
                },
            ),
        ]);
        let config = OpenLoopConfig::poisson(1.0).with_queue_depth(64);
        let mut plain = PlatformKind::HamsTE.build(&scale);
        let mut traced = PlatformKind::HamsTE.build(&scale);
        let reference = run_tenant_set_open_loop(plain.as_mut(), &set, &scale, &config);
        let mut telemetry = RunTelemetry::new();
        let m =
            run_tenant_set_open_loop_traced(traced.as_mut(), &set, &scale, &config, &mut telemetry);
        assert_eq!(reference, m, "tracing changed the multi-tenant metrics");
        let tagged: Vec<u16> = telemetry
            .recorder
            .spans()
            .filter(|s| s.layer == Layer::Request)
            .filter_map(|s| s.tenant)
            .collect();
        assert!(tagged.contains(&0) && tagged.contains(&1));
        assert!(telemetry.registry.get("tenant0_dropped").is_some());
        assert!(telemetry.registry.get("tenant1_dropped").is_some());
        let d1 = telemetry.registry.get("tenant1_dropped").unwrap();
        assert_eq!(d1.last_value(), Some(m.tenants[1].dropped as f64));
    }

    #[test]
    fn two_tenant_accounting_closes_and_fairness_is_bounded() {
        let scale = tiny_scale();
        let set = TenantSet::new(vec![
            TenantSpec::new(
                "victim",
                spec(),
                ArrivalProcess::Poisson {
                    rate_per_sec: 500_000.0,
                },
            ),
            TenantSpec::new(
                "antagonist",
                WorkloadSpec::by_name("update").unwrap(),
                ArrivalProcess::Poisson {
                    rate_per_sec: 5_000_000.0,
                },
            )
            .with_weight(2.0),
        ]);
        let mut p = PlatformKind::HamsTE.build(&scale);
        let config = OpenLoopConfig::poisson(1.0).with_queue_depth(64);
        let m = run_tenant_set_open_loop(p.as_mut(), &set, &scale, &config);
        assert_eq!(m.tenants.len(), 2);
        let sum = |f: fn(&TenantMetrics) -> u64| m.tenants.iter().map(f).sum::<u64>();
        assert_eq!(sum(|t| t.arrivals), m.merged.arrivals);
        assert_eq!(sum(|t| t.served), m.merged.served);
        assert_eq!(sum(|t| t.dropped), m.merged.dropped);
        for t in &m.tenants {
            assert_eq!(t.arrivals, t.served + t.dropped);
            assert_eq!(t.arrivals, scale.accesses as u64);
            assert_eq!(t.sojourn.count(), t.served);
        }
        let fairness = m.fairness();
        assert!(fairness > 0.0 && fairness <= 1.0 + 1e-12);
        assert_eq!(m.merged.run.workload, "rndRd+update");
        assert!(m.tenant("victim").is_some());
        assert!(m.tenant("nobody").is_none());
        // Records carry the issuing tenant.
        assert!(m.merged.records.iter().any(|r| r.tenant == 1));
    }
}
