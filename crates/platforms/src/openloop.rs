//! Open-loop serving: a bounded admission queue between an arrival process
//! and the platform, with sojourn-time (queueing + service) accounting.
//!
//! The closed-loop runner ([`crate::run_workload`]) issues the next access
//! when the previous one finishes, so the offered load always equals the
//! service rate — saturation behaviour, the regime where HAMS's hardware
//! automation is supposed to beat the software stacks, is invisible. The
//! open-loop driver here decouples the two: an
//! [`ArrivalGenerator`](hams_workloads::ArrivalGenerator) schedules when
//! requests *arrive*, an [`AdmissionQueue`] of configurable depth holds them
//! at the platform boundary (dropping or back-pressuring when full), and the
//! platform serves FIFO batches through the same
//! [`Platform::serve_batch_into`] hot path as closed-loop replay. Each served
//! request records arrival → enqueue → dispatch → finish timestamps, and the
//! sojourn time (finish − arrival) feeds a [`Histogram`] for p50/p99/p999
//! reporting.
//!
//! The engine is pinned to the rest of the test tower by a degenerate
//! contract: at arrival-rate → ∞ ([`ArrivalProcess::Saturate`]) with a
//! depth-1 blocking queue and batch size 1, every dispatch instant equals the
//! previous finish, which is exactly the closed-loop serial schedule —
//! [`run_workload_open_loop`] must then produce [`RunMetrics`] byte-identical
//! to [`crate::run_workload_serial`] (`tests/openloop_equivalence.rs`).

use hams_sim::{Histogram, Nanos};
use hams_workloads::{Access, ArrivalGenerator, ArrivalProcess, TraceGenerator, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::iter::Peekable;

use crate::platform::{BatchOutcome, BatchRequest, Platform};
use crate::runner::{MetricsFold, RunMetrics, ScaleProfile, DEFAULT_BATCH_SIZE};

/// What the admission queue does with an arrival that finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the request; it is counted in
    /// [`OpenLoopMetrics::dropped`] and never reaches the platform.
    Drop,
    /// Hold the request at the door until a slot frees (the client blocks);
    /// its enqueue timestamp becomes the instant the slot freed.
    Block,
}

/// Configuration of one open-loop run: the arrival process plus the
/// admission-queue and histogram knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// When requests arrive.
    pub arrivals: ArrivalProcess,
    /// Maximum number of requests waiting at the platform boundary.
    pub queue_depth: usize,
    /// What happens to an arrival that finds the queue full.
    pub policy: AdmissionPolicy,
    /// Requests dispatched to [`Platform::serve_batch_into`] per call
    /// (capped by what is queued; `0` is treated as `1`).
    pub batch_size: usize,
    /// Bucket width of the sojourn-time histogram.
    pub sojourn_bucket: Nanos,
    /// Bucket count of the sojourn-time histogram.
    pub sojourn_buckets: usize,
}

impl OpenLoopConfig {
    /// A Poisson run at `rate_per_sec` with production-flavoured defaults:
    /// a deep dropping queue and a 256 ns × 65 536-bucket sojourn histogram
    /// (~16.8 ms of range before the overflow bucket's true-max tracking
    /// takes over).
    #[must_use]
    pub fn poisson(rate_per_sec: f64) -> Self {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            queue_depth: 4096,
            policy: AdmissionPolicy::Drop,
            batch_size: DEFAULT_BATCH_SIZE,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 65_536,
        }
    }

    /// The degenerate configuration that reproduces closed-loop serial
    /// serving: all arrivals at t = 0, one slot, blocking admission, batch
    /// size 1. Pinned byte-identical to [`crate::run_workload_serial`].
    #[must_use]
    pub fn degenerate_serial() -> Self {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 1,
            policy: AdmissionPolicy::Block,
            batch_size: 1,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 65_536,
        }
    }

    /// Returns a copy with a different arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Returns a copy with a different queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns a copy with a different admission policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The life of one served request, as the four instants the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenLoopRecord {
    /// When the request arrived at the platform boundary.
    pub arrival: Nanos,
    /// When it entered the admission queue (equals `arrival` unless a
    /// blocking queue held it at the door).
    pub enqueued: Nanos,
    /// When the platform started serving it.
    pub started: Nanos,
    /// When its outcome completed.
    pub finished: Nanos,
}

impl OpenLoopRecord {
    /// Total time in the system: queueing plus service.
    #[must_use]
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.arrival)
    }

    /// Service time alone (dispatch to completion).
    #[must_use]
    pub fn service(&self) -> Nanos {
        self.finished.saturating_sub(self.started)
    }

    /// Time spent waiting before dispatch (door plus queue).
    #[must_use]
    pub fn queue_wait(&self) -> Nanos {
        self.started.saturating_sub(self.arrival)
    }
}

/// Everything one open-loop run reports: the closed-loop-compatible
/// [`RunMetrics`] plus arrival/drop accounting and the sojourn distribution.
#[derive(Debug)]
pub struct OpenLoopMetrics {
    /// The same per-run metrics closed-loop replay produces (timing folded
    /// over served requests only).
    pub run: RunMetrics,
    /// Mean offered arrival rate (requests per second; infinite for
    /// [`ArrivalProcess::Saturate`]).
    pub offered_rate_per_sec: f64,
    /// Requests the arrival process generated.
    pub arrivals: u64,
    /// Requests actually served.
    pub served: u64,
    /// Requests rejected by a full [`AdmissionPolicy::Drop`] queue.
    pub dropped: u64,
    /// Sojourn-time (queueing + service) distribution over served requests.
    pub sojourn: Histogram,
    /// Per-request timestamp records, in service order.
    pub records: Vec<OpenLoopRecord>,
}

impl OpenLoopMetrics {
    /// Achieved throughput in served requests per second of simulated time.
    #[must_use]
    pub fn achieved_per_sec(&self) -> f64 {
        self.served as f64 / self.run.total_time.as_secs_f64().max(1e-12)
    }

    /// Fraction of arrivals that were dropped.
    #[must_use]
    pub fn drop_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrivals as f64
        }
    }

    /// The sojourn percentiles the paper-style tail report uses:
    /// (p50, p99, p999). `None` entries mean no request was served.
    #[must_use]
    pub fn sojourn_p50_p99_p999(&self) -> [Option<Nanos>; 3] {
        let ps = self.sojourn.percentiles(&[50.0, 99.0, 99.9]);
        [ps[0], ps[1], ps[2]]
    }
}

/// One request waiting at the platform boundary.
#[derive(Debug, Clone, Copy)]
struct Queued {
    access: Access,
    arrival: Nanos,
    enqueued: Nanos,
}

/// The bounded FIFO between the arrival process and the platform.
///
/// `door` models [`AdmissionPolicy::Block`]: the one client the full queue is
/// back-pressuring. While it is occupied no later arrival can be admitted
/// (open-loop clients are independent, but admission is a single FIFO door),
/// which is exactly the head-of-line blocking a bounded listen queue shows.
#[derive(Debug)]
struct AdmissionQueue {
    depth: usize,
    policy: AdmissionPolicy,
    queue: VecDeque<Queued>,
    door: Option<(Access, Nanos)>,
    dropped: u64,
    /// The instant the most recent blocked client got its slot; later
    /// arrivals cannot have enqueued before it.
    unblocked_at: Nanos,
}

impl AdmissionQueue {
    fn new(depth: usize, policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            depth: depth.max(1),
            policy,
            queue: VecDeque::with_capacity(depth.max(1)),
            door: None,
            dropped: 0,
            unblocked_at: Nanos::ZERO,
        }
    }

    /// Admits every arrival with instant ≤ `t`, in arrival order, applying
    /// the overflow policy. The blocked door client (if any) is first in
    /// line and enqueues at `t` itself — the moment its slot freed.
    fn admit_until<I>(&mut self, source: &mut Peekable<I>, t: Nanos)
    where
        I: Iterator<Item = (Access, Nanos)>,
    {
        loop {
            let (item, from_door) = if let Some(blocked) = self.door.take() {
                (blocked, true)
            } else if source.peek().is_some_and(|&(_, arrival)| arrival <= t) {
                (source.next().expect("peeked"), false)
            } else {
                return;
            };
            let (access, arrival) = item;
            if self.queue.len() < self.depth {
                if from_door {
                    self.unblocked_at = t;
                }
                self.queue.push_back(Queued {
                    access,
                    arrival,
                    enqueued: arrival.max(self.unblocked_at),
                });
            } else {
                match self.policy {
                    AdmissionPolicy::Drop => self.dropped += 1,
                    AdmissionPolicy::Block => {
                        self.door = Some((access, arrival));
                        return;
                    }
                }
            }
        }
    }
}

/// Runs one workload through the open-loop engine on one platform.
///
/// The trace and arrival streams are zipped (request *i* of the trace
/// arrives at instant *i* of the arrival schedule), so open-loop and
/// closed-loop runs of the same [`ScaleProfile`] serve exactly the same
/// accesses in the same FIFO order — only the dispatch instants differ.
///
/// # Panics
///
/// Panics when the platform violates the batch contract (wrong outcome
/// count) or the config fails
/// [`ArrivalProcess::validate`](hams_workloads::ArrivalProcess::validate).
pub fn run_workload_open_loop(
    platform: &mut dyn Platform,
    spec: WorkloadSpec,
    scale: &ScaleProfile,
    config: &OpenLoopConfig,
) -> OpenLoopMetrics {
    let batch_size = config.batch_size.max(1);
    let scaled = scale.scale_spec(spec);
    let mut fold = MetricsFold::new();
    let mut sojourn = Histogram::new(config.sojourn_bucket, config.sojourn_buckets.max(1));
    let mut records = Vec::with_capacity(scale.accesses);

    let trace = TraceGenerator::new(scaled, scale.seed, scale.accesses);
    let arrivals = ArrivalGenerator::new(config.arrivals, scale.seed, scale.accesses);
    let mut source = trace.zip(arrivals).peekable();
    let mut queue = AdmissionQueue::new(config.queue_depth, config.policy);

    let mut batch: Vec<BatchRequest> = Vec::with_capacity(batch_size.min(scale.accesses.max(1)));
    let mut meta: Vec<(Nanos, Nanos)> = Vec::with_capacity(batch_size.min(scale.accesses.max(1)));
    let mut out = BatchOutcome::with_capacity(batch_size.min(scale.accesses.max(1)));
    // The instant the platform finished its last dispatched batch; it sits
    // idle from here until the next dispatch.
    let mut server_free = Nanos::ZERO;

    loop {
        // Catch the queue up to the server's clock, then — if it is idle and
        // empty — jump it forward to the next arrival.
        queue.admit_until(&mut source, server_free);
        if queue.queue.is_empty() {
            debug_assert!(
                queue.door.is_none(),
                "a blocked client implies a full queue"
            );
            let Some(&(_, next_arrival)) = source.peek() else {
                break;
            };
            queue.admit_until(&mut source, server_free.max(next_arrival));
        }

        // FIFO dispatch: the batch starts when the server is free and its
        // head request is in the queue.
        let head_enqueued = queue.queue.front().expect("non-empty").enqueued;
        let start = server_free.max(head_enqueued);

        batch.clear();
        meta.clear();
        while batch.len() < batch_size {
            let Some(q) = queue.queue.pop_front() else {
                break;
            };
            // Compute phases are priced in dispatch order, which is trace
            // order (FIFO admission of a zipped stream), so the CPU model
            // sees exactly the closed-loop instruction sequence.
            let compute = fold.cpu.retire(q.access.compute_instructions + 1);
            batch.push(BatchRequest {
                access: q.access,
                compute,
            });
            meta.push((q.arrival, q.enqueued));
        }

        platform.serve_batch_into(&batch, start, &mut out);
        assert_eq!(
            out.outcomes.len(),
            batch.len(),
            "{} returned {} outcomes for an open-loop batch of {}",
            platform.name(),
            out.outcomes.len(),
            batch.len()
        );

        let mut ready = start;
        for ((request, outcome), &(arrival, enqueued)) in batch.iter().zip(&out.outcomes).zip(&meta)
        {
            fold.fold_from(ready, request.compute, outcome);
            let record = OpenLoopRecord {
                arrival,
                enqueued,
                started: ready,
                finished: outcome.finished_at,
            };
            sojourn.record(record.sojourn());
            records.push(record);
            ready = outcome.finished_at;
        }
        server_free = out.finished_at(start);
    }

    let served = records.len() as u64;
    let dropped = queue.dropped;
    let run = fold.finish(platform, spec, scaled);
    OpenLoopMetrics {
        run,
        offered_rate_per_sec: config.arrivals.mean_rate_per_sec(),
        arrivals: served + dropped,
        served,
        dropped,
        sojourn,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_workload_serial, PlatformKind};

    fn tiny_scale() -> ScaleProfile {
        ScaleProfile {
            capacity_divisor: 2048,
            accesses: 1_200,
            seed: 17,
        }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::by_name("rndRd").unwrap()
    }

    #[test]
    fn degenerate_open_loop_matches_serial_on_hams_te() {
        let scale = tiny_scale();
        let mut serial = PlatformKind::HamsTE.build(&scale);
        let mut open = PlatformKind::HamsTE.build(&scale);
        let reference = run_workload_serial(serial.as_mut(), spec(), &scale);
        let ol = run_workload_open_loop(
            open.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::degenerate_serial(),
        );
        assert_eq!(ol.run, reference);
        assert_eq!(ol.served, scale.accesses as u64);
        assert_eq!(ol.dropped, 0);
    }

    #[test]
    fn drop_policy_accounts_every_arrival() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Mmap.build(&scale);
        // Saturate + a shallow dropping queue: nearly everything past the
        // first window is rejected.
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 8,
            policy: AdmissionPolicy::Drop,
            batch_size: 4,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 1024,
        };
        let m = run_workload_open_loop(p.as_mut(), spec(), &scale, &config);
        assert_eq!(m.arrivals, scale.accesses as u64);
        assert_eq!(m.arrivals, m.served + m.dropped);
        assert!(m.dropped > 0, "a full dropping queue must drop");
        assert_eq!(m.served, m.records.len() as u64);
        assert_eq!(m.sojourn.count(), m.served);
    }

    #[test]
    fn block_policy_never_drops() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Mmap.build(&scale);
        let config = OpenLoopConfig {
            arrivals: ArrivalProcess::Saturate,
            queue_depth: 3,
            policy: AdmissionPolicy::Block,
            batch_size: 2,
            sojourn_bucket: Nanos::from_nanos(256),
            sojourn_buckets: 1024,
        };
        let m = run_workload_open_loop(p.as_mut(), spec(), &scale, &config);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.served, scale.accesses as u64);
    }

    #[test]
    fn sojourn_decomposes_into_wait_plus_service() {
        let scale = tiny_scale();
        let mut p = PlatformKind::Oracle.build(&scale);
        let m = run_workload_open_loop(
            p.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::poisson(2_000_000.0),
        );
        for r in &m.records {
            assert!(r.arrival <= r.enqueued);
            assert!(r.enqueued <= r.started);
            assert!(r.started <= r.finished);
            assert_eq!(r.sojourn(), r.queue_wait() + r.service());
        }
    }

    #[test]
    fn deeper_queue_drops_no_more() {
        let scale = tiny_scale();
        let base = OpenLoopConfig::poisson(50_000_000.0).with_queue_depth(4);
        let mut shallow = PlatformKind::Mmap.build(&scale);
        let mut deep = PlatformKind::Mmap.build(&scale);
        let s = run_workload_open_loop(shallow.as_mut(), spec(), &scale, &base);
        let d = run_workload_open_loop(deep.as_mut(), spec(), &scale, &base.with_queue_depth(4096));
        assert!(
            d.dropped <= s.dropped,
            "deepening the queue added drops ({} -> {})",
            s.dropped,
            d.dropped
        );
    }

    #[test]
    fn light_load_leaves_the_server_idle_between_arrivals() {
        let scale = ScaleProfile {
            capacity_divisor: 2048,
            accesses: 300,
            seed: 9,
        };
        // 1000 req/s against a microsecond-scale service time: every request
        // should find an empty queue and wait for nothing.
        let mut p = PlatformKind::Oracle.build(&scale);
        let m = run_workload_open_loop(
            p.as_mut(),
            spec(),
            &scale,
            &OpenLoopConfig::poisson(1_000.0),
        );
        assert_eq!(m.dropped, 0);
        let waited = m
            .records
            .iter()
            .filter(|r| !r.queue_wait().is_zero())
            .count();
        assert!(
            waited * 10 < m.records.len(),
            "{waited} of {} underloaded requests queued",
            m.records.len()
        );
        // Total time spans the arrival schedule, not just the service time.
        assert!(m.run.total_time >= m.records.last().unwrap().arrival);
    }
}
