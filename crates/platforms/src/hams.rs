//! The four HAMS platforms (`hams-LP`, `hams-LE`, `hams-TP`, `hams-TE`)
//! wrapped behind the [`Platform`] trait.

use hams_core::{
    AttachMode, BackendTopology, CellPlan, FaultPlan, HamsConfig, HamsController, PersistMode,
    ShardConfig,
};
use hams_energy::{EnergyAccount, PowerParams};
use hams_nvdimm::{NvdimmConfig, PinnedRegionLayout};
use hams_nvme::QueueConfig;
use hams_sim::{LatencyVector, Nanos};
use hams_telemetry::{Span, TelemetrySink};
use hams_workloads::Access;

use crate::platform::{AccessOutcome, BatchOutcome, BatchRequest, Platform};

/// MoS page size of the default scaled registry entries (`hams-LP/LE/TP/TE`
/// and the `hams-TE-s{n}` shard sweep): 8 KB — two LBAs, so striped fills
/// no longer degenerate to a single stripe on the standard scaled profiles
/// (the `hams-TE-q{n}` / `hams-TE-d{n}` sweeps keep their larger 32 KB
/// page). Chosen as the largest multi-LBA page that preserves the paper's
/// headline orderings at scaled-down capacity: the 4 KB-access random
/// workloads pay whole-page clones and fills on every conflict miss, so
/// page size trades fill striping against eviction traffic exactly as
/// Fig. 20a describes — at 16 KB and above, loosely-coupled HAMS already
/// loses its rndWr margin over `mmap` to PCIe eviction traffic.
pub const SCALED_MOS_PAGE_BYTES: u64 = 8 * 1024;

/// NVMe queue pairs of the default scaled registry entries: one per LBA of
/// the [`SCALED_MOS_PAGE_BYTES`] page, so extend-mode fills stripe the whole
/// page across pairs (persist mode keeps its single outstanding command
/// regardless). Multi-LBA pages without striped queues would serialize each
/// fill into one multi-LBA command and hand the scaled profiles a page-size
/// penalty the full-scale system does not pay.
pub const SCALED_QUEUE_PAIRS: u16 = 2;

/// A HAMS system under test.
///
/// # Example
///
/// ```
/// use hams_core::{AttachMode, PersistMode};
/// use hams_platforms::{HamsPlatform, Platform};
/// use hams_sim::Nanos;
/// use hams_workloads::Access;
///
/// let mut te = HamsPlatform::scaled(AttachMode::Tight, PersistMode::Extend, 8 << 20);
/// let access = Access { addr: 0, size: 64, is_write: true, compute_instructions: 0 };
/// let outcome = te.access(&access, Nanos::ZERO);
/// assert_eq!(outcome.os_time, Nanos::ZERO); // no OS involvement, ever
/// ```
#[derive(Debug)]
pub struct HamsPlatform {
    name: String,
    controller: HamsController,
    power: PowerParams,
    /// Cell-parallel serving: `Some(workers)` routes batches through the
    /// plan/commit split ([`Self::serve_batch_cell`]) with that many scoped
    /// workers (`0` = the `HAMS_CELL_THREADS` default); `None` keeps the
    /// fully serial batch path.
    cell_threads: Option<usize>,
    /// Reused plan scratch for the cell path (empty while serial).
    cell_plan: CellPlan,
    /// Reused `(addr, is_write)` routing buffer for the cell path.
    cell_accesses: Vec<(u64, bool)>,
}

impl HamsPlatform {
    /// Builds a platform from an explicit HAMS configuration.
    #[must_use]
    pub fn from_config(config: HamsConfig) -> Self {
        let name = Self::paper_name(config.attach, config.persist);
        HamsPlatform {
            name,
            controller: HamsController::new(config),
            power: PowerParams::paper_default(),
            cell_threads: None,
            cell_plan: CellPlan::new(),
            cell_accesses: Vec::new(),
        }
    }

    /// The paper's full-scale configuration for the given modes.
    #[must_use]
    pub fn paper(attach: AttachMode, persist: PersistMode) -> Self {
        let config = match attach {
            AttachMode::Loose => HamsConfig::loose(persist),
            AttachMode::Tight => HamsConfig::tight(persist),
        };
        Self::from_config(config)
    }

    /// A capacity-scaled configuration: `nvdimm_bytes` of NVDIMM cache with a
    /// proportionally small pinned region and multi-LBA
    /// ([`SCALED_MOS_PAGE_BYTES`]) MoS pages, so scaled-down datasets exhibit
    /// the same hit/miss behaviour as the full-scale system and striped
    /// fills have stripes to split.
    #[must_use]
    pub fn scaled(attach: AttachMode, persist: PersistMode, nvdimm_bytes: u64) -> Self {
        Self::scaled_with(
            attach,
            persist,
            nvdimm_bytes,
            SCALED_MOS_PAGE_BYTES,
            QueueConfig::striped(SCALED_QUEUE_PAIRS),
        )
    }

    /// [`Self::scaled`] with an explicit MoS page size and NVMe queue shape —
    /// the constructor behind the multi-queue registry entries. Striped
    /// fills only pay off on pages spanning several LBAs, so the queue-count
    /// sweep pairs a multi-LBA `mos_page_size` with a multi-queue
    /// [`QueueConfig`].
    ///
    /// The tag-directory shard shape defaults to the `HAMS_SHARDS`
    /// environment override (the CI matrix lever) or a single bank, and the
    /// archive backend to the `HAMS_DEVICES` override or a single device.
    /// The shard override can never change metrics (shard-invariance
    /// contract); the device override legitimately can, which is why the
    /// golden suites keep one snapshot per device count. Use
    /// [`Self::scaled_with_shards`] / [`Self::scaled_with_backend`] to pin
    /// an explicit shape (the `hams-TE-s{n}` / `hams-TE-d{n}` sweep entries
    /// do).
    #[must_use]
    pub fn scaled_with(
        attach: AttachMode,
        persist: PersistMode,
        nvdimm_bytes: u64,
        mos_page_size: u64,
        queues: QueueConfig,
    ) -> Self {
        Self::scaled_full(
            attach,
            persist,
            nvdimm_bytes,
            mos_page_size,
            queues,
            ShardConfig::from_env().unwrap_or_else(ShardConfig::single),
            BackendTopology::from_env().unwrap_or_else(BackendTopology::single),
        )
    }

    /// [`Self::scaled_with`] with an explicit tag-directory shard shape —
    /// the constructor behind the `hams-TE-s{n}` registry entries. The
    /// backend still follows the `HAMS_DEVICES` environment override.
    #[must_use]
    pub fn scaled_with_shards(
        attach: AttachMode,
        persist: PersistMode,
        nvdimm_bytes: u64,
        mos_page_size: u64,
        queues: QueueConfig,
        shards: ShardConfig,
    ) -> Self {
        Self::scaled_full(
            attach,
            persist,
            nvdimm_bytes,
            mos_page_size,
            queues,
            shards,
            BackendTopology::from_env().unwrap_or_else(BackendTopology::single),
        )
    }

    /// [`Self::scaled_with`] with an explicit archive backend — the
    /// constructor behind the `hams-TE-d{n}` RAID sweep and `hams-TE-cxl`
    /// registry entries. The shard shape still follows the `HAMS_SHARDS`
    /// environment override (it is metrics-neutral by contract).
    #[must_use]
    pub fn scaled_with_backend(
        attach: AttachMode,
        persist: PersistMode,
        nvdimm_bytes: u64,
        mos_page_size: u64,
        queues: QueueConfig,
        backend: BackendTopology,
    ) -> Self {
        Self::scaled_full(
            attach,
            persist,
            nvdimm_bytes,
            mos_page_size,
            queues,
            ShardConfig::from_env().unwrap_or_else(ShardConfig::single),
            backend,
        )
    }

    /// The fully-explicit scaled constructor: every shape pinned, no
    /// environment override applies.
    #[must_use]
    pub fn scaled_full(
        attach: AttachMode,
        persist: PersistMode,
        nvdimm_bytes: u64,
        mos_page_size: u64,
        queues: QueueConfig,
        shards: ShardConfig,
        backend: BackendTopology,
    ) -> Self {
        let base = match attach {
            AttachMode::Loose => HamsConfig::loose(persist),
            AttachMode::Tight => HamsConfig::tight(persist),
        };
        let mut ssd = base.ssd;
        if ssd.dram_capacity_bytes > 0 {
            // Keep the paper's 512 MB : 8 GB ratio between the SSD-internal
            // DRAM and the NVDIMM cache at the scaled-down capacity.
            ssd.dram_capacity_bytes = (nvdimm_bytes / 16).max(64 * 4096);
        }
        let config = HamsConfig {
            nvdimm: NvdimmConfig {
                capacity_bytes: nvdimm_bytes,
                ..NvdimmConfig::hpe_8gb()
            },
            pinned: PinnedRegionLayout::tiny_for_tests(),
            ssd,
            ..base
        }
        .with_mos_page_size(mos_page_size)
        .with_queues(queues)
        .with_shards(shards)
        .with_backend(backend);
        Self::from_config(config)
    }

    fn paper_name(attach: AttachMode, persist: PersistMode) -> String {
        let a = match attach {
            AttachMode::Loose => "L",
            AttachMode::Tight => "T",
        };
        let p = match persist {
            PersistMode::Persist => "P",
            PersistMode::Extend => "E",
        };
        format!("hams-{a}{p}")
    }

    /// Read access to the wrapped controller.
    #[must_use]
    pub fn controller(&self) -> &HamsController {
        &self.controller
    }

    /// The cell-parallel batch path: plan, then commit.
    ///
    /// Accesses are time-chained — each issues when the previous one
    /// finishes — so their *timing* is inherently serial. What is not serial
    /// is classification: whether an access hits, and which victim it
    /// replaces, depends only on the access sequence per directory bank. So
    /// the batch is partitioned by owning bank and each bank's sub-batch is
    /// classified concurrently on scoped threads
    /// ([`HamsController::plan_batch`]), then the commit loop replays the
    /// timing serially in original batch order from the planned
    /// classifications ([`HamsController::commit_planned_into`]) —
    /// byte-identical to the serial batch path at any worker count, with the
    /// persist gate (inside the controller) remaining the only cross-bank
    /// synchronization point.
    fn serve_batch_cell(
        &mut self,
        batch: &[BatchRequest],
        start: Nanos,
        out: &mut BatchOutcome,
        workers: usize,
    ) {
        out.outcomes.clear();
        let capacity = self.controller.mos_capacity_bytes().max(1);
        self.cell_accesses.clear();
        self.cell_accesses.extend(
            batch
                .iter()
                .map(|r| (r.access.addr % capacity, r.access.is_write)),
        );
        self.controller
            .plan_batch(&self.cell_accesses, workers, &mut self.cell_plan);

        let mut scratch = LatencyVector::new();
        let mut t = start;
        for (k, request) in batch.iter().enumerate() {
            let issued_at = t + request.compute;
            let (addr, is_write) = self.cell_accesses[k];
            let (finished_at, _hit) = self.controller.commit_planned_into(
                addr,
                is_write,
                request.access.size,
                self.cell_plan.planned(k),
                issued_at,
                &mut scratch,
            );
            out.outcomes.push(AccessOutcome {
                finished_at,
                os_time: Nanos::ZERO,
                ssd_time: Nanos::ZERO,
                memory_time: finished_at - issued_at,
            });
            t = finished_at;
        }
        self.controller.merge_delay(&scratch);
    }

    /// Mutable access to the wrapped controller (power-failure experiments).
    pub fn controller_mut(&mut self) -> &mut HamsController {
        &mut self.controller
    }
}

impl Platform for HamsPlatform {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, access: &Access, now: Nanos) -> AccessOutcome {
        let capacity = self.controller.mos_capacity_bytes();
        let addr = access.addr % capacity.max(1);
        let result = self
            .controller
            .access(addr, access.is_write, access.size, now);
        AccessOutcome {
            finished_at: result.finished_at,
            os_time: Nanos::ZERO,
            ssd_time: Nanos::ZERO,
            memory_time: result.finished_at - now,
        }
    }

    /// Hardware-automated batch path: the MoS capacity lookup and the
    /// delay-accumulator scratch are established once per batch, the caller
    /// reuses one outcome buffer across every batch, and the per-access
    /// breakdowns of [`HamsController::access`] (plus their per-access merge
    /// into the aggregate stats) collapse into a single batch-end merge.
    /// Nothing on the per-access path touches the heap: the scratch
    /// [`LatencyVector`] is a fixed slot array the controller adds into by
    /// pre-interned component id. Simulated timing is identical to the
    /// per-access path by the [`Platform::serve_batch`] contract.
    fn serve_batch_into(&mut self, batch: &[BatchRequest], start: Nanos, out: &mut BatchOutcome) {
        if let Some(workers) = self.cell_threads {
            self.serve_batch_cell(batch, start, out, workers);
            return;
        }
        out.outcomes.clear();
        let capacity = self.controller.mos_capacity_bytes().max(1);
        let mut scratch = LatencyVector::new();
        let mut t = start;
        for request in batch {
            let issued_at = t + request.compute;
            let addr = request.access.addr % capacity;
            let (finished_at, _hit) = self.controller.access_into(
                addr,
                request.access.is_write,
                request.access.size,
                issued_at,
                &mut scratch,
            );
            out.outcomes.push(AccessOutcome {
                finished_at,
                os_time: Nanos::ZERO,
                ssd_time: Nanos::ZERO,
                memory_time: finished_at - issued_at,
            });
            t = finished_at;
        }
        self.controller.merge_delay(&scratch);
    }

    /// HAMS owns its NVMe engine, so every variant honours the queue shape.
    /// Note that persist mode still serializes commands (one outstanding),
    /// so striped fills only speed up the extend-mode variants.
    fn configure_queues(&mut self, queues: QueueConfig) -> bool {
        self.controller.set_queue_config(queues);
        true
    }

    /// HAMS owns the MoS tag directory, so every variant honours the shard
    /// shape. Repartitioning rebuilds the directory cold; by the
    /// shard-invariance contract it can never change metrics.
    fn configure_shards(&mut self, shards: ShardConfig) -> bool {
        self.controller.set_shard_config(shards);
        true
    }

    /// HAMS owns the banked tag directory, so every variant honours the
    /// cell-parallel serving shape. Like the shard shape, the worker count
    /// can never change metrics: classification is sequence-determined and
    /// the commit replay is serial (`tests/cell_parallel_equivalence.rs`).
    fn configure_cell_threads(&mut self, workers: usize) -> bool {
        self.cell_threads = Some(workers);
        true
    }

    /// HAMS owns the in-controller archive, so every variant honours the
    /// backend topology. Re-shaping rebuilds the archive set cold;
    /// [`BackendTopology::single`] restores the original single-archive
    /// engine byte for byte, multi-device shapes trade the extra archives'
    /// capacity for device-level parallelism.
    fn configure_backend(&mut self, topology: BackendTopology) -> bool {
        self.controller.set_backend_topology(topology);
        true
    }

    /// HAMS owns the fault-injectable archive, so every variant honours a
    /// fault plan — provided the parity backend is configured first
    /// ([`Self::configure_backend`] with [`BackendTopology::Raid5`]), since
    /// re-shaping rebuilds the archive cold and a non-parity array cannot
    /// reconstruct a lost device.
    fn configure_faults(&mut self, plan: &FaultPlan) -> bool {
        self.controller.set_fault_plan(plan.clone());
        true
    }

    fn advance_faults(&mut self, now: Nanos) {
        self.controller.advance_faults(now);
    }

    /// HAMS owns the instrumented controller, so every variant honours the
    /// trace sink: controller access/commit, tag-array, NVMe submit, MSI
    /// delivery and archive service spans all come from inside the spine.
    /// Observation-only — enabling the sink can never change metrics.
    fn configure_trace(&mut self, sink: TelemetrySink) -> bool {
        self.controller.set_trace_sink(sink);
        true
    }

    fn take_trace_spans(&mut self, out: &mut Vec<Span>) {
        self.controller.take_trace_spans(out);
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        let stats = self.controller.stats();
        let engine = self.controller.engine();
        let msi = engine.coalescer_stats();
        let archive = self.controller.archive();
        out.push(("nvme_inflight", engine.outstanding() as f64));
        out.push(("journal_writes", engine.stats().writes_issued as f64));
        out.push(("msi_interrupts", msi.interrupts as f64));
        out.push(("msi_max_burst", msi.max_burst as f64));
        out.push(("msi_mean_burst", msi.mean_burst()));
        out.push((
            "dram_dirty_evictions",
            archive.dram_stats().dirty_evictions as f64,
        ));
        out.push(("archive_commands", archive.stats().total_commands() as f64));
        out.push(("evictions", stats.evictions as f64));
        out.push(("wait_stalls", stats.wait_stalls as f64));
        // Fault gauges appear only once a plan is installed, so fault-free
        // telemetry output is byte-identical to the pre-fault-injection
        // layer.
        if let Some(fault) = archive.fault() {
            out.push(("array_state", fault.state().as_gauge()));
            out.push(("rebuild_progress", fault.rebuild_progress()));
            let stats = fault.stats();
            out.push(("degraded_reads", stats.degraded_reads as f64));
            out.push(("reconstruction_reads", stats.reconstruction_reads as f64));
            out.push((
                "parity_absorbed_writes",
                stats.parity_absorbed_writes as f64,
            ));
            out.push(("rebuild_rows_done", stats.rebuild_rows_done as f64));
            out.push(("rebuild_rows_total", stats.rebuild_rows_total as f64));
        }
    }

    fn memory_delay(&self) -> LatencyVector {
        self.controller.stats().delay.clone()
    }

    fn device_energy(&self, elapsed: Nanos) -> EnergyAccount {
        let mut e = EnergyAccount::new();
        let nv = self.controller.nvdimm().stats();
        e.add_power("nvdimm", self.power.nvdimm_background_watts, elapsed);
        e.add(
            "nvdimm",
            (nv.bytes_read + nv.bytes_written) as f64 * self.power.nvdimm_access_nj_per_byte / 1e9,
        );
        // Device-side energy aggregates across the whole archive set: every
        // device pays its background power, and the access energy follows
        // the summed per-device counters. A single-device backend reduces to
        // the original accounting exactly.
        let archive = self.controller.archive();
        let devices = f64::from(archive.num_devices());
        if archive.has_internal_dram() {
            e.add_power(
                "internal_dram",
                self.power.ssd_dram_background_watts * devices,
                elapsed,
            );
            e.add(
                "internal_dram",
                (archive.dram_stats().accesses * 4096) as f64
                    * self.power.ssd_dram_access_nj_per_byte
                    / 1e9,
            );
        }
        let flash = archive.stats();
        e.add(
            "znand",
            (flash.page_reads as f64 * self.power.znand_read_page_nj
                + flash.page_programs as f64 * self.power.znand_program_page_nj)
                / 1e9,
        );
        e
    }

    fn hit_rate(&self) -> Option<f64> {
        Some(self.controller.stats().hit_rate())
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, is_write: bool) -> Access {
        Access {
            addr,
            size: 64,
            is_write,
            compute_instructions: 0,
        }
    }

    #[test]
    fn names_follow_the_papers_convention() {
        assert_eq!(
            HamsPlatform::scaled(AttachMode::Loose, PersistMode::Persist, 8 << 20).name(),
            "hams-LP"
        );
        assert_eq!(
            HamsPlatform::scaled(AttachMode::Tight, PersistMode::Extend, 8 << 20).name(),
            "hams-TE"
        );
    }

    #[test]
    fn hams_never_reports_os_time() {
        let mut p = HamsPlatform::scaled(AttachMode::Loose, PersistMode::Extend, 8 << 20);
        let mut t = Nanos::ZERO;
        for i in 0..64u64 {
            let o = p.access(&acc(i * 8192, i % 2 == 0), t);
            assert_eq!(o.os_time, Nanos::ZERO);
            assert_eq!(o.ssd_time, Nanos::ZERO);
            t = o.finished_at;
        }
        assert!(p.hit_rate().is_some());
        assert!(p.is_persistent());
    }

    #[test]
    fn memory_delay_breakdown_is_populated_after_misses() {
        let mut p = HamsPlatform::scaled(AttachMode::Loose, PersistMode::Extend, 4 << 20);
        let mut t = Nanos::ZERO;
        for i in 0..512u64 {
            t = p.access(&acc(i * 4096, false), t).finished_at;
        }
        let d = p.memory_delay();
        assert!(d.component("nvdimm") > Nanos::ZERO);
        assert!(d.component("ssd") > Nanos::ZERO);
    }

    #[test]
    fn batch_override_matches_per_access_path_including_delay_stats() {
        let batch: Vec<BatchRequest> = (0..256u64)
            .map(|i| BatchRequest {
                access: acc(i * 4096 % (64 * 4096), i % 3 == 0),
                compute: Nanos::from_nanos(i % 11 * 7),
            })
            .collect();
        let start = Nanos::from_micros(1);

        let mut reference = HamsPlatform::scaled(AttachMode::Loose, PersistMode::Persist, 4 << 20);
        let mut expected = Vec::new();
        let mut t = start;
        for request in &batch {
            let o = reference.access(&request.access, t + request.compute);
            t = o.finished_at;
            expected.push(o);
        }

        let mut batched = HamsPlatform::scaled(AttachMode::Loose, PersistMode::Persist, 4 << 20);
        let result = batched.serve_batch(&batch, start);

        assert_eq!(result.outcomes, expected);
        assert_eq!(batched.memory_delay(), reference.memory_delay());
        assert_eq!(
            batched.controller().stats().hits,
            reference.controller().stats().hits
        );
        assert_eq!(
            batched.controller().stats().misses,
            reference.controller().stats().misses
        );
    }

    #[test]
    fn multi_queue_batch_override_matches_the_per_access_path() {
        let batch: Vec<BatchRequest> = (0..256u64)
            .map(|i| BatchRequest {
                access: acc(i * 32 * 1024 % (96 * 32 * 1024), i % 3 == 0),
                compute: Nanos::from_nanos(i % 13 * 5),
            })
            .collect();
        let start = Nanos::from_micros(1);
        let build = || {
            HamsPlatform::scaled_with(
                AttachMode::Tight,
                PersistMode::Extend,
                4 << 20,
                32 * 1024,
                QueueConfig::striped(4),
            )
        };

        let mut reference = build();
        let mut expected = Vec::new();
        let mut t = start;
        for request in &batch {
            let o = reference.access(&request.access, t + request.compute);
            t = o.finished_at;
            expected.push(o);
        }

        let mut batched = build();
        let result = batched.serve_batch(&batch, start);
        assert_eq!(result.outcomes, expected);
        assert_eq!(batched.memory_delay(), reference.memory_delay());
    }

    #[test]
    fn configure_queues_is_honoured_and_speeds_up_cold_reads() {
        let single = HamsPlatform::scaled_with(
            AttachMode::Tight,
            PersistMode::Extend,
            4 << 20,
            32 * 1024,
            QueueConfig::single(),
        );
        let mut striped = HamsPlatform::scaled_with(
            AttachMode::Tight,
            PersistMode::Extend,
            4 << 20,
            32 * 1024,
            QueueConfig::single(),
        );
        assert!(striped.configure_queues(QueueConfig::striped(4)));
        let mut single = single;
        let mut t_s = Nanos::ZERO;
        let mut t_m = Nanos::ZERO;
        for i in 0..128u64 {
            let a = acc(i * 32 * 1024, true);
            t_s = single.access(&a, t_s).finished_at;
            t_m = striped.access(&a, t_m).finished_at;
        }
        for i in 0..256u64 {
            let a = acc(i % 160 * 32 * 1024, false);
            t_s = single.access(&a, t_s).finished_at;
            t_m = striped.access(&a, t_m).finished_at;
        }
        assert!(
            t_m < t_s,
            "multi-queue ({t_m}) must finish the miss stream before single queue ({t_s})"
        );
    }

    #[test]
    fn configure_shards_is_honoured_and_metrics_neutral() {
        let build = || HamsPlatform::scaled(AttachMode::Tight, PersistMode::Extend, 4 << 20);
        let mut single = build();
        let mut sharded = build();
        assert!(sharded.configure_shards(ShardConfig::interleaved(8)));
        assert_eq!(sharded.controller().num_shards(), 8);
        let mut t_s = Nanos::ZERO;
        let mut t_m = Nanos::ZERO;
        for i in 0..512u64 {
            let a = acc(i * 7 % 1600 * 4096, i % 3 == 0);
            let s = single.access(&a, t_s);
            let m = sharded.access(&a, t_m);
            assert_eq!(s, m, "shard shape changed an access outcome");
            t_s = s.finished_at;
            t_m = m.finished_at;
        }
        assert_eq!(single.memory_delay(), sharded.memory_delay());
        assert_eq!(single.hit_rate(), sharded.hit_rate());
    }

    #[test]
    fn configure_backend_is_honoured_and_raid_speeds_up_cold_reads() {
        use hams_flash::LBA_SIZE;
        let build = || {
            HamsPlatform::scaled_full(
                AttachMode::Tight,
                PersistMode::Extend,
                4 << 20,
                32 * 1024,
                QueueConfig::striped(8),
                ShardConfig::single(),
                BackendTopology::single(),
            )
        };
        let mut single = build();
        let mut raid = build();
        assert!(raid.configure_backend(BackendTopology::raid0_striped(4, LBA_SIZE)));
        assert_eq!(raid.controller().num_devices(), 4);
        let mut t_s = Nanos::ZERO;
        let mut t_r = Nanos::ZERO;
        for i in 0..96u64 {
            let a = acc(i * 32 * 1024, true);
            t_s = single.access(&a, t_s).finished_at;
            t_r = raid.access(&a, t_r).finished_at;
        }
        for i in 0..256u64 {
            let a = acc(i % 160 * 32 * 1024, false);
            t_s = single.access(&a, t_s).finished_at;
            t_r = raid.access(&a, t_r).finished_at;
        }
        assert!(
            t_r < t_s,
            "4-device RAID-0 ({t_r}) must finish the miss stream before one device ({t_s})"
        );
    }

    #[test]
    fn single_backend_configuration_is_metrics_neutral() {
        let build = || HamsPlatform::scaled(AttachMode::Loose, PersistMode::Extend, 4 << 20);
        let mut plain = build();
        let mut configured = build();
        assert!(configured.configure_backend(BackendTopology::single()));
        let mut t_a = Nanos::ZERO;
        let mut t_b = Nanos::ZERO;
        for i in 0..256u64 {
            let a = acc(i * 13 % 400 * 4096, i % 3 == 0);
            let x = plain.access(&a, t_a);
            let y = configured.access(&a, t_b);
            assert_eq!(x, y, "BackendTopology::single() must be a no-op");
            t_a = x.finished_at;
            t_b = y.finished_at;
        }
        assert_eq!(plain.memory_delay(), configured.memory_delay());
    }

    #[test]
    fn scaled_with_shards_pins_the_directory_shape() {
        let p = HamsPlatform::scaled_with_shards(
            AttachMode::Tight,
            PersistMode::Extend,
            4 << 20,
            4096,
            QueueConfig::single(),
            ShardConfig::blocked(3),
        );
        assert_eq!(p.controller().shard_config(), ShardConfig::blocked(3));
        assert_eq!(p.controller().num_shards(), 3);
    }

    #[test]
    fn tight_platform_without_ssd_dram_reports_no_dram_energy() {
        let mut p = HamsPlatform::scaled(AttachMode::Tight, PersistMode::Extend, 4 << 20);
        let mut t = Nanos::ZERO;
        for i in 0..256u64 {
            t = p.access(&acc(i * 4096, true), t).finished_at;
        }
        let e = p.device_energy(t);
        assert_eq!(e.component_joules("internal_dram"), 0.0);
        assert!(e.component_joules("nvdimm") > 0.0);
    }
}
