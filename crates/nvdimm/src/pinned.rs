//! The pinned, MMU-invisible NVDIMM region that holds the NVMe metadata.
//!
//! HAMS maps the NVMe data structures — SQ/CQ ring buffers, the PRP pool used
//! for hazard-avoidance page clones, and the MSI table — into the top of the
//! NVDIMM and hides that region from the MMU (Fig. 9). Because the region
//! lives in NVDIMM it survives power failures, which is what makes the
//! journal-tag recovery scan of §V-C possible.

use serde::{Deserialize, Serialize};

/// Layout of the pinned region, expressed as sizes; the region occupies the
/// top `total_bytes()` of the NVDIMM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinnedRegionLayout {
    /// Bytes reserved for submission-queue ring buffers.
    pub sq_bytes: u64,
    /// Bytes reserved for completion-queue ring buffers.
    pub cq_bytes: u64,
    /// Bytes reserved for the PRP pool (clone targets for in-flight evictions).
    pub prp_pool_bytes: u64,
    /// Bytes reserved for the MSI table.
    pub msi_table_bytes: u64,
    /// Bytes reserved for the wait queue added by the hazard-avoidance logic.
    pub wait_queue_bytes: u64,
}

impl PinnedRegionLayout {
    /// The layout of Fig. 9: 32 KB of SQ, 8 KB of CQ, a 512 MB PRP pool,
    /// ~1 KB of MSI table, plus a small wait queue.
    #[must_use]
    pub fn paper_default() -> Self {
        PinnedRegionLayout {
            sq_bytes: 32 * 1024,
            cq_bytes: 8 * 1024,
            prp_pool_bytes: 512 * 1024 * 1024,
            msi_table_bytes: 1024,
            wait_queue_bytes: 64 * 1024,
        }
    }

    /// A scaled-down layout for unit tests (keeps the same proportions but a
    /// 1 MB PRP pool).
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        PinnedRegionLayout {
            sq_bytes: 4 * 1024,
            cq_bytes: 1024,
            prp_pool_bytes: 1024 * 1024,
            msi_table_bytes: 256,
            wait_queue_bytes: 4 * 1024,
        }
    }

    /// Total bytes the pinned region occupies.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.sq_bytes
            + self.cq_bytes
            + self.prp_pool_bytes
            + self.msi_table_bytes
            + self.wait_queue_bytes
    }

    /// Number of page-sized clone slots available in the PRP pool.
    #[must_use]
    pub fn prp_pool_slots(&self, page_size: u64) -> u64 {
        if page_size == 0 {
            return 0;
        }
        self.prp_pool_bytes / page_size
    }
}

/// The pinned region placed at the top of a specific NVDIMM capacity.
///
/// # Example
///
/// ```
/// use hams_nvdimm::{PinnedRegion, PinnedRegionLayout};
///
/// let region = PinnedRegion::at_top_of(8 << 30, PinnedRegionLayout::paper_default());
/// // An address in the bottom of the NVDIMM is cacheable MoS space…
/// assert!(!region.contains(0x1000));
/// // …but the very last byte belongs to the pinned metadata.
/// assert!(region.contains((8u64 << 30) - 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinnedRegion {
    base: u64,
    layout: PinnedRegionLayout,
}

impl PinnedRegion {
    /// Places the layout at the top of an NVDIMM of `nvdimm_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not fit in the NVDIMM.
    #[must_use]
    pub fn at_top_of(nvdimm_capacity: u64, layout: PinnedRegionLayout) -> Self {
        assert!(
            layout.total_bytes() < nvdimm_capacity,
            "pinned region larger than the NVDIMM"
        );
        PinnedRegion {
            base: nvdimm_capacity - layout.total_bytes(),
            layout,
        }
    }

    /// First byte of the pinned region. Everything below is MoS cache space.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The layout placed here.
    #[must_use]
    pub fn layout(&self) -> &PinnedRegionLayout {
        &self.layout
    }

    /// Bytes of NVDIMM left below the pinned region for the MoS cache.
    #[must_use]
    pub fn cacheable_bytes(&self) -> u64 {
        self.base
    }

    /// Returns `true` if `addr` (an NVDIMM-relative byte address) falls
    /// inside the pinned region.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.layout.total_bytes()
    }

    /// NVDIMM address of PRP-pool clone slot `slot` for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range.
    #[must_use]
    pub fn prp_slot_address(&self, slot: u64, page_size: u64) -> u64 {
        assert!(
            slot < self.layout.prp_pool_slots(page_size),
            "PRP pool slot {slot} out of range"
        );
        // PRP pool sits after the SQ and CQ areas.
        self.base + self.layout.sq_bytes + self.layout.cq_bytes + slot * page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_is_roughly_half_a_gigabyte() {
        let l = PinnedRegionLayout::paper_default();
        let mb = l.total_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 500.0 && mb < 560.0, "pinned region is {mb} MB");
    }

    #[test]
    fn region_sits_at_the_top() {
        let cap = 8u64 << 30;
        let r = PinnedRegion::at_top_of(cap, PinnedRegionLayout::paper_default());
        assert_eq!(r.base() + r.layout().total_bytes(), cap);
        assert_eq!(r.cacheable_bytes(), r.base());
        assert!(r.contains(cap - 1));
        assert!(!r.contains(r.base() - 1));
    }

    #[test]
    fn prp_slots_are_within_the_region_and_distinct() {
        let r = PinnedRegion::at_top_of(64 << 20, PinnedRegionLayout::tiny_for_tests());
        let page = 4096;
        let slots = r.layout().prp_pool_slots(page);
        assert!(slots >= 2);
        let a = r.prp_slot_address(0, page);
        let b = r.prp_slot_address(1, page);
        assert_ne!(a, b);
        assert!(r.contains(a) && r.contains(b));
    }

    #[test]
    fn prp_pool_slots_handles_zero_page_size() {
        assert_eq!(PinnedRegionLayout::paper_default().prp_pool_slots(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let r = PinnedRegion::at_top_of(64 << 20, PinnedRegionLayout::tiny_for_tests());
        let _ = r.prp_slot_address(1_000_000, 4096);
    }

    #[test]
    #[should_panic(expected = "larger than the NVDIMM")]
    fn oversized_layout_panics() {
        let _ = PinnedRegion::at_top_of(1024, PinnedRegionLayout::paper_default());
    }
}
