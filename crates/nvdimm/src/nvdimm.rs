//! The NVDIMM-N device model.
//!
//! NVDIMM-N (JEDEC standard) is DRAM plus an equal-sized backup flash, a
//! supercapacitor and multiplexers: the host sees ordinary DRAM timing, and on
//! power failure an on-DIMM controller streams the DRAM contents into the
//! backup flash (taking tens of seconds), restoring them on the next boot
//! (§II-A). This module models the DRAM array timing, the backup/restore
//! procedure and the capacity accounting HAMS builds on.

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Configuration of one NVDIMM-N module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvdimmConfig {
    /// DRAM (and therefore backup-flash) capacity in bytes.
    pub capacity_bytes: u64,
    /// Array access latency for the first beat of a row (tRCD + tCL).
    pub array_latency: Nanos,
    /// Internal bandwidth when streaming a whole row/page, bytes per second.
    pub array_bandwidth_bytes_per_sec: f64,
    /// Bandwidth of the backup path from DRAM into the on-DIMM flash.
    pub backup_bandwidth_bytes_per_sec: f64,
    /// Bandwidth of the restore path from on-DIMM flash back to DRAM.
    pub restore_bandwidth_bytes_per_sec: f64,
}

impl NvdimmConfig {
    /// The 8 GB DDR4-2133 NVDIMM used by the paper's testbed (Table II,
    /// HPE 8 GB NVDIMM single-rank ×4).
    #[must_use]
    pub fn hpe_8gb() -> Self {
        NvdimmConfig {
            capacity_bytes: 8 * 1024 * 1024 * 1024,
            array_latency: Nanos::from_nanos(30),
            array_bandwidth_bytes_per_sec: 17.0e9,
            // Backing up 8 GB in "tens of seconds" implies a few hundred MB/s.
            backup_bandwidth_bytes_per_sec: 400.0e6,
            restore_bandwidth_bytes_per_sec: 800.0e6,
        }
    }

    /// The hypothetical 512 GB NVDIMM of the paper's `oracle` platform.
    #[must_use]
    pub fn oracle_512gb() -> Self {
        NvdimmConfig {
            capacity_bytes: 512 * 1024 * 1024 * 1024,
            ..Self::hpe_8gb()
        }
    }

    /// A small module for unit tests (64 MB).
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        NvdimmConfig {
            capacity_bytes: 64 * 1024 * 1024,
            ..Self::hpe_8gb()
        }
    }
}

/// Accounting counters for an NVDIMM module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvdimmStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Backup operations performed (power failures survived).
    pub backups: u64,
    /// Restore operations performed.
    pub restores: u64,
}

/// Power state of the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NvdimmPowerState {
    /// Normal operation; DRAM contents live.
    Operational,
    /// Power lost; contents parked in the on-DIMM backup flash.
    BackedUp,
}

/// An NVDIMM-N module.
///
/// # Example
///
/// ```
/// use hams_nvdimm::{Nvdimm, NvdimmConfig};
///
/// let mut dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
/// let read = dimm.read(4096);
/// assert!(read.as_nanos() > 0);
/// // A power failure triggers the supercapacitor-powered backup, which takes
/// // tens of seconds for 8 GB, and the data survives.
/// let backup = dimm.power_fail();
/// assert!(backup.as_secs_f64() > 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nvdimm {
    config: NvdimmConfig,
    state: NvdimmPowerState,
    stats: NvdimmStats,
    /// Rolling memo of the last access sizes' array latencies. The serving
    /// path reads/writes the same one or two sizes (the CPU granule and the
    /// MoS page) millions of times per run, and the `f64` bandwidth division
    /// in [`Self::access_latency`] dominated the per-access bookkeeping. The
    /// memo caches the exact `access_latency` result per byte count, so
    /// timing stays byte-identical. The default entries map 0 bytes to zero
    /// time — exactly `access_latency(0)` — so a cold memo is valid.
    #[serde(skip)]
    latency_memo: [(u64, Nanos); 2],
}

impl Nvdimm {
    /// Creates an operational module.
    #[must_use]
    pub fn new(config: NvdimmConfig) -> Self {
        Nvdimm {
            config,
            state: NvdimmPowerState::Operational,
            stats: NvdimmStats::default(),
            latency_memo: [(0, Nanos::ZERO); 2],
        }
    }

    /// The module configuration.
    #[must_use]
    pub fn config(&self) -> &NvdimmConfig {
        &self.config
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    /// Current power state.
    #[must_use]
    pub fn power_state(&self) -> NvdimmPowerState {
        self.state
    }

    /// Accounting counters.
    #[must_use]
    pub fn stats(&self) -> &NvdimmStats {
        &self.stats
    }

    /// Array-side latency of an access of `bytes` (excludes the DDR4 bus,
    /// which the interconnect crate charges separately).
    #[must_use]
    pub fn access_latency(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let stream =
            Nanos::from_nanos_f64(bytes as f64 / self.config.array_bandwidth_bytes_per_sec * 1e9);
        self.config.array_latency + stream
    }

    /// [`Self::access_latency`] through the rolling memo (hot-path form).
    #[inline]
    fn memoized_latency(&mut self, bytes: u64) -> Nanos {
        if self.latency_memo[0].0 == bytes {
            return self.latency_memo[0].1;
        }
        if self.latency_memo[1].0 == bytes {
            self.latency_memo.swap(0, 1);
            return self.latency_memo[0].1;
        }
        let latency = self.access_latency(bytes);
        self.latency_memo[1] = self.latency_memo[0];
        self.latency_memo[0] = (bytes, latency);
        latency
    }

    /// Records a read of `bytes` and returns its array latency.
    pub fn read(&mut self, bytes: u64) -> Nanos {
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
        self.memoized_latency(bytes)
    }

    /// Records a write of `bytes` and returns its array latency.
    pub fn write(&mut self, bytes: u64) -> Nanos {
        self.stats.writes += 1;
        self.stats.bytes_written += bytes;
        self.memoized_latency(bytes)
    }

    /// Duration of a full backup of the DRAM contents to the on-DIMM flash.
    #[must_use]
    pub fn backup_duration(&self) -> Nanos {
        Nanos::from_nanos_f64(
            self.config.capacity_bytes as f64 / self.config.backup_bandwidth_bytes_per_sec * 1e9,
        )
    }

    /// Duration of a full restore from the on-DIMM flash to DRAM.
    #[must_use]
    pub fn restore_duration(&self) -> Nanos {
        Nanos::from_nanos_f64(
            self.config.capacity_bytes as f64 / self.config.restore_bandwidth_bytes_per_sec * 1e9,
        )
    }

    /// Injects a power failure: the supercapacitor powers a backup of the
    /// DRAM into the on-DIMM flash. Returns the backup duration. Contents are
    /// preserved (that is the point of NVDIMM-N).
    pub fn power_fail(&mut self) -> Nanos {
        self.state = NvdimmPowerState::BackedUp;
        self.stats.backups += 1;
        self.backup_duration()
    }

    /// Restores the module after power returns. Returns the restore duration.
    ///
    /// # Panics
    ///
    /// Panics if the module is already operational (restoring a live module
    /// indicates a platform sequencing bug).
    pub fn power_restore(&mut self) -> Nanos {
        assert!(
            self.state == NvdimmPowerState::BackedUp,
            "power_restore called on an operational NVDIMM"
        );
        self.state = NvdimmPowerState::Operational;
        self.stats.restores += 1;
        self.restore_duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latency_scales_with_size() {
        let dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
        let small = dimm.access_latency(64);
        let page = dimm.access_latency(4096);
        assert!(page > small);
        // 4 KB at 17 GB/s is ~240 ns plus 30 ns array latency.
        assert!(
            page > Nanos::from_nanos(200) && page < Nanos::from_nanos(400),
            "{page}"
        );
        assert_eq!(dimm.access_latency(0), Nanos::ZERO);
    }

    #[test]
    fn dram_4kb_access_is_much_faster_than_z_nand_read() {
        let dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
        // Z-NAND read is 3 µs; the paper quotes ULL 4 KB read as 3.3× a DDR4
        // access. The array-side figure must stay well under 3 µs.
        assert!(dimm.access_latency(4096) < Nanos::from_micros(3));
    }

    #[test]
    fn reads_and_writes_are_accounted() {
        let mut dimm = Nvdimm::new(NvdimmConfig::tiny_for_tests());
        dimm.read(4096);
        dimm.write(64);
        dimm.write(64);
        let s = dimm.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.bytes_written, 128);
    }

    #[test]
    fn memoized_accesses_match_access_latency_for_alternating_sizes() {
        let mut dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
        let reference = Nvdimm::new(NvdimmConfig::hpe_8gb());
        // Alternate three sizes so the two-entry memo keeps evicting; every
        // recorded access must still equal the uncached computation.
        for i in 0..64u64 {
            let bytes = [64u64, 8192, 65, 0][i as usize % 4];
            let got = if i % 2 == 0 {
                dimm.read(bytes)
            } else {
                dimm.write(bytes)
            };
            assert_eq!(got, reference.access_latency(bytes), "bytes={bytes}");
        }
    }

    #[test]
    fn backup_takes_tens_of_seconds_for_8gb() {
        let mut dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
        let backup = dimm.power_fail();
        assert!(
            backup.as_secs_f64() > 10.0 && backup.as_secs_f64() < 60.0,
            "{backup}"
        );
        assert_eq!(dimm.power_state(), NvdimmPowerState::BackedUp);
        let restore = dimm.power_restore();
        assert!(restore < backup);
        assert_eq!(dimm.power_state(), NvdimmPowerState::Operational);
        assert_eq!(dimm.stats().backups, 1);
        assert_eq!(dimm.stats().restores, 1);
    }

    #[test]
    #[should_panic(expected = "operational")]
    fn restoring_live_module_panics() {
        let mut dimm = Nvdimm::new(NvdimmConfig::tiny_for_tests());
        let _ = dimm.power_restore();
    }

    #[test]
    fn oracle_config_is_512gb() {
        let c = NvdimmConfig::oracle_512gb();
        assert_eq!(c.capacity_bytes, 512 * 1024 * 1024 * 1024);
    }
}
