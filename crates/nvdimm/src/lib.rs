//! NVDIMM-N device model: DRAM-speed byte-addressable persistent memory with
//! supercapacitor-powered backup/restore, plus the pinned metadata region
//! HAMS carves out of it.
//!
//! # Example
//!
//! ```
//! use hams_nvdimm::{Nvdimm, NvdimmConfig, PinnedRegion, PinnedRegionLayout};
//!
//! let dimm = Nvdimm::new(NvdimmConfig::hpe_8gb());
//! let pinned = PinnedRegion::at_top_of(dimm.capacity_bytes(), PinnedRegionLayout::paper_default());
//! // Most of the module is available to the MoS cache.
//! assert!(pinned.cacheable_bytes() > dimm.capacity_bytes() * 9 / 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod nvdimm;
pub mod pinned;

pub use nvdimm::{Nvdimm, NvdimmConfig, NvdimmPowerState, NvdimmStats};
pub use pinned::{PinnedRegion, PinnedRegionLayout};
