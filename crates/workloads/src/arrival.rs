//! Open-loop arrival processes.
//!
//! Closed-loop replay (the runner's default) issues the next access when the
//! previous one finishes, so the offered load always equals the service rate
//! and saturation behaviour is invisible. Production serving is *open-loop*:
//! requests arrive on their own schedule regardless of how the platform is
//! doing. This module generates those arrival schedules — deterministic,
//! seeded streams of arrival instants that the platform-boundary admission
//! queue (in `hams-platforms`) consumes.
//!
//! Three stochastic processes cover the paper's serving story plus the two
//! shapes production traffic actually takes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant rate,
//!   the canonical open-loop load model.
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2): a base rate with exponentially-dwelling bursts at a
//!   multiple of it.
//! * [`ArrivalProcess::Diurnal`] — a non-homogeneous Poisson process whose
//!   rate ramps between a trough and a peak on a triangle wave, sampled by
//!   thinning.
//!
//! [`ArrivalProcess::Saturate`] is the degenerate limit (arrival rate → ∞):
//! every request arrives at t = 0. Combined with a depth-1 blocking queue it
//! reproduces the closed-loop serial contract byte for byte, which is how the
//! open-loop engine is pinned against the rest of the test tower.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use hams_sim::rng::{derived_rng, exponential_nanos};
use hams_sim::Nanos;

/// An open-loop arrival process: how request arrival instants are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a fixed mean rate (exponential inter-arrival
    /// gaps).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// Two-state Markov-modulated Poisson process: `base_rate_per_sec` in the
    /// calm state, `base_rate_per_sec * burst_multiplier` inside bursts, with
    /// exponentially distributed dwell times in each state.
    Bursty {
        /// Calm-state arrival rate in requests per second.
        base_rate_per_sec: f64,
        /// Burst-state rate as a multiple of the base rate (≥ 1).
        burst_multiplier: f64,
        /// Mean dwell time in the burst state.
        mean_burst: Nanos,
        /// Mean dwell time in the calm state.
        mean_calm: Nanos,
    },
    /// Non-homogeneous Poisson arrivals whose instantaneous rate follows a
    /// triangle wave from `trough_rate_per_sec` up to `peak_rate_per_sec`
    /// and back over each `period` (a compressed day), sampled by thinning.
    Diurnal {
        /// Rate at the bottom of the ramp, requests per second.
        trough_rate_per_sec: f64,
        /// Rate at the top of the ramp, requests per second.
        peak_rate_per_sec: f64,
        /// Length of one trough→peak→trough cycle.
        period: Nanos,
    },
    /// The rate → ∞ limit: every request arrives at t = 0. Degenerates the
    /// open-loop driver to closed-loop serving order.
    Saturate,
}

impl ArrivalProcess {
    /// The time-averaged arrival rate in requests per second
    /// (`f64::INFINITY` for [`ArrivalProcess::Saturate`]).
    #[must_use]
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst_multiplier,
                mean_burst,
                mean_calm,
            } => {
                let calm = mean_calm.as_nanos() as f64;
                let burst = mean_burst.as_nanos() as f64;
                let weighted =
                    base_rate_per_sec * calm + base_rate_per_sec * burst_multiplier * burst;
                weighted / (calm + burst)
            }
            ArrivalProcess::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                ..
            } => (trough_rate_per_sec + peak_rate_per_sec) / 2.0,
            ArrivalProcess::Saturate => f64::INFINITY,
        }
    }

    /// Checks the process parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive rates, a burst multiplier below
    /// 1, a zero dwell time, a zero period, or a peak below the trough.
    pub fn validate(&self) {
        let finite_positive = |what: &str, r: f64| {
            assert!(
                r.is_finite() && r > 0.0,
                "arrival process: {what} ({r}) must be finite and positive"
            );
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                finite_positive("rate_per_sec", rate_per_sec);
            }
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst_multiplier,
                mean_burst,
                mean_calm,
            } => {
                finite_positive("base_rate_per_sec", base_rate_per_sec);
                assert!(
                    burst_multiplier.is_finite() && burst_multiplier >= 1.0,
                    "arrival process: burst_multiplier ({burst_multiplier}) must be >= 1"
                );
                assert!(
                    !mean_burst.is_zero() && !mean_calm.is_zero(),
                    "arrival process: burst/calm dwell times must be non-zero"
                );
            }
            ArrivalProcess::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                period,
            } => {
                finite_positive("trough_rate_per_sec", trough_rate_per_sec);
                finite_positive("peak_rate_per_sec", peak_rate_per_sec);
                assert!(
                    peak_rate_per_sec >= trough_rate_per_sec,
                    "arrival process: peak rate ({peak_rate_per_sec}) below trough \
                     ({trough_rate_per_sec})"
                );
                assert!(
                    !period.is_zero(),
                    "arrival process: diurnal period must be non-zero"
                );
            }
            ArrivalProcess::Saturate => {}
        }
    }
}

/// Nanoseconds per second, as a float, for rate → mean-gap conversion.
const NANOS_PER_SEC: f64 = 1e9;

fn mean_gap_nanos(rate_per_sec: f64) -> f64 {
    NANOS_PER_SEC / rate_per_sec
}

/// Deterministic generator of `count` non-decreasing arrival instants for one
/// [`ArrivalProcess`], seeded like every other stochastic stream in the
/// reproduction (via [`derived_rng`], so arrivals never share a stream with
/// the trace generator even under the same experiment seed).
///
/// # Example
///
/// ```
/// use hams_sim::Nanos;
/// use hams_workloads::{ArrivalGenerator, ArrivalProcess};
///
/// let process = ArrivalProcess::Poisson { rate_per_sec: 1_000_000.0 };
/// let arrivals: Vec<Nanos> = ArrivalGenerator::new(process, 42, 100).collect();
/// assert_eq!(arrivals.len(), 100);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug)]
pub struct ArrivalGenerator {
    process: ArrivalProcess,
    rng: StdRng,
    now: Nanos,
    remaining: usize,
    /// MMPP state: currently inside a burst?
    in_burst: bool,
    /// MMPP state: the instant the current dwell ends.
    state_end: Nanos,
}

impl ArrivalGenerator {
    /// Creates a generator of `count` arrivals, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the process fails [`ArrivalProcess::validate`].
    #[must_use]
    pub fn new(process: ArrivalProcess, seed: u64, count: usize) -> Self {
        process.validate();
        let mut rng = derived_rng(seed, "open-loop-arrivals");
        let state_end = if let ArrivalProcess::Bursty { mean_calm, .. } = process {
            // Start in the calm state with a freshly sampled dwell.
            Nanos::from_nanos(exponential_nanos(&mut rng, mean_calm.as_nanos() as f64))
        } else {
            Nanos::ZERO
        };
        ArrivalGenerator {
            process,
            rng,
            now: Nanos::ZERO,
            remaining: count,
            in_burst: false,
            state_end,
        }
    }

    /// The process this generator samples.
    #[must_use]
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    fn next_instant(&mut self) -> Nanos {
        match self.process {
            ArrivalProcess::Saturate => Nanos::ZERO,
            ArrivalProcess::Poisson { rate_per_sec } => {
                let gap = exponential_nanos(&mut self.rng, mean_gap_nanos(rate_per_sec));
                self.now = self.now.saturating_add(Nanos::from_nanos(gap));
                self.now
            }
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst_multiplier,
                mean_burst,
                mean_calm,
            } => {
                // Exact MMPP sampling: a gap drawn at the current state's
                // rate counts only if it lands before the state boundary;
                // otherwise advance to the boundary, toggle state and — by
                // the exponential's memorylessness — resample from scratch.
                loop {
                    let rate = if self.in_burst {
                        base_rate_per_sec * burst_multiplier
                    } else {
                        base_rate_per_sec
                    };
                    let gap = exponential_nanos(&mut self.rng, mean_gap_nanos(rate));
                    let candidate = self.now.saturating_add(Nanos::from_nanos(gap));
                    if candidate <= self.state_end {
                        self.now = candidate;
                        return self.now;
                    }
                    self.now = self.state_end;
                    self.in_burst = !self.in_burst;
                    let dwell = if self.in_burst { mean_burst } else { mean_calm };
                    let dwell = exponential_nanos(&mut self.rng, dwell.as_nanos() as f64);
                    self.state_end = self.now.saturating_add(Nanos::from_nanos(dwell));
                }
            }
            ArrivalProcess::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                period,
            } => {
                // Thinning (Lewis–Shedler): sample at the peak rate, accept
                // each candidate with probability rate(t) / peak.
                loop {
                    let gap = exponential_nanos(&mut self.rng, mean_gap_nanos(peak_rate_per_sec));
                    self.now = self.now.saturating_add(Nanos::from_nanos(gap));
                    let phase =
                        (self.now.as_nanos() % period.as_nanos()) as f64 / period.as_nanos() as f64;
                    // Triangle wave: trough at phase 0 and 1, peak at 0.5.
                    let ramp = 1.0 - (2.0 * phase - 1.0).abs();
                    let rate =
                        trough_rate_per_sec + (peak_rate_per_sec - trough_rate_per_sec) * ramp;
                    if self
                        .rng
                        .gen_bool((rate / peak_rate_per_sec).clamp(0.0, 1.0))
                    {
                        return self.now;
                    }
                }
            }
        }
    }
}

impl Iterator for ArrivalGenerator {
    type Item = Nanos;

    fn next(&mut self) -> Option<Nanos> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.next_instant())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ArrivalGenerator {}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(process: ArrivalProcess, seed: u64, count: usize) -> Vec<Nanos> {
        ArrivalGenerator::new(process, seed, count).collect()
    }

    #[test]
    fn arrivals_are_reproducible_and_seed_dependent() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 500_000.0,
        };
        let a = collect(p, 7, 400);
        let b = collect(p, 7, 400);
        let c = collect(p, 8, 400);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 400);
    }

    #[test]
    fn arrivals_are_non_decreasing_for_every_process() {
        let processes = [
            ArrivalProcess::Poisson { rate_per_sec: 1e6 },
            ArrivalProcess::Bursty {
                base_rate_per_sec: 2e5,
                burst_multiplier: 8.0,
                mean_burst: Nanos::from_micros(50),
                mean_calm: Nanos::from_micros(200),
            },
            ArrivalProcess::Diurnal {
                trough_rate_per_sec: 1e5,
                peak_rate_per_sec: 1e6,
                period: Nanos::from_millis(1),
            },
            ArrivalProcess::Saturate,
        ];
        for p in processes {
            let arrivals = collect(p, 13, 1_000);
            assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{p:?} produced a decreasing arrival"
            );
        }
    }

    #[test]
    fn poisson_empirical_rate_matches() {
        let rate = 1_000_000.0; // one arrival per microsecond
        let n = 20_000;
        let arrivals = collect(ArrivalProcess::Poisson { rate_per_sec: rate }, 21, n);
        let span = arrivals.last().unwrap().as_secs_f64();
        let observed = n as f64 / span;
        assert!(
            (observed - rate).abs() < rate * 0.1,
            "observed rate {observed} too far from {rate}"
        );
    }

    #[test]
    fn saturate_pins_every_arrival_to_zero() {
        let arrivals = collect(ArrivalProcess::Saturate, 3, 64);
        assert!(arrivals.iter().all(|t| t.is_zero()));
        assert_eq!(ArrivalProcess::Saturate.mean_rate_per_sec(), f64::INFINITY);
    }

    #[test]
    fn bursty_rate_sits_between_base_and_burst() {
        let base = 200_000.0;
        let mult = 10.0;
        let p = ArrivalProcess::Bursty {
            base_rate_per_sec: base,
            burst_multiplier: mult,
            mean_burst: Nanos::from_micros(100),
            mean_calm: Nanos::from_micros(100),
        };
        let n = 30_000;
        let arrivals = collect(p, 5, n);
        let span = arrivals.last().unwrap().as_secs_f64();
        let observed = n as f64 / span;
        assert!(
            observed > base * 1.2 && observed < base * mult,
            "observed rate {observed} not between base {base} and burst {}",
            base * mult
        );
        // Equal dwells → the analytic mean is the midpoint.
        let analytic = p.mean_rate_per_sec();
        assert!((analytic - base * (1.0 + mult) / 2.0).abs() < 1e-6);
        assert!(
            (observed - analytic).abs() < analytic * 0.2,
            "observed {observed} too far from analytic {analytic}"
        );
    }

    #[test]
    fn diurnal_rate_averages_between_trough_and_peak() {
        let p = ArrivalProcess::Diurnal {
            trough_rate_per_sec: 2e5,
            peak_rate_per_sec: 1e6,
            period: Nanos::from_millis(2),
        };
        let n = 30_000;
        let arrivals = collect(p, 9, n);
        let span = arrivals.last().unwrap().as_secs_f64();
        let observed = n as f64 / span;
        assert!(
            observed > 2e5 && observed < 1e6,
            "observed rate {observed} outside the trough–peak band"
        );
    }

    #[test]
    fn generator_reports_exact_length() {
        let g = ArrivalGenerator::new(ArrivalProcess::Poisson { rate_per_sec: 1e6 }, 1, 321);
        assert_eq!(g.len(), 321);
        assert_eq!(g.count(), 321);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_rate_is_rejected() {
        let _ = ArrivalGenerator::new(ArrivalProcess::Poisson { rate_per_sec: 0.0 }, 1, 1);
    }

    #[test]
    #[should_panic(expected = "burst_multiplier")]
    fn sub_unit_burst_multiplier_is_rejected() {
        ArrivalProcess::Bursty {
            base_rate_per_sec: 1e5,
            burst_multiplier: 0.5,
            mean_burst: Nanos::from_micros(10),
            mean_calm: Nanos::from_micros(10),
        }
        .validate();
    }
}
