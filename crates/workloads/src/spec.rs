//! Workload specifications and the memory-access trace generator.
//!
//! Table III of the paper characterises twelve workloads (four
//! mmap-microbenchmark kernels, five SQLite operations, three Rodinia
//! kernels) by instruction count, load/store ratios and dataset size. The
//! memory system only observes the resulting stream of
//! address/size/read-write/compute-gap tuples, so the reproduction generates
//! synthetic traces with those statistics: same dataset footprint, same
//! memory-instruction mix, same coarse- vs fine-grained access granularity,
//! and an access pattern matching the workload's nature (sequential scans,
//! uniform random, or hot-spot skewed).

use rand::Rng;
use serde::{Deserialize, Serialize};

use hams_sim::rng::derived_rng;

/// One memory access observed by the memory system, plus the number of
/// non-memory instructions the core executes before issuing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Byte address within the workload's dataset.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Non-memory instructions executed since the previous access.
    pub compute_instructions: u64,
}

/// Spatial pattern of a workload's accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Monotonically increasing addresses with a fixed stride.
    Sequential,
    /// Uniformly random addresses over the dataset.
    Random,
    /// Skewed accesses: `hot_access_fraction` of accesses fall in the first
    /// `hot_fraction` of the dataset (database-style locality).
    Hotspot {
        /// Fraction of the dataset that is hot.
        hot_fraction: f64,
        /// Fraction of accesses that touch the hot region.
        hot_access_fraction: f64,
    },
}

/// Which benchmark suite a workload belongs to (Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// mmap-benchmark microbenchmarks (page-granular, memory intensive).
    Microbench,
    /// SQLite/LevelDB benchmark operations (fine-grained, DBMS computation).
    Sqlite,
    /// Rodinia kernels (fine-grained, computation heavy).
    Rodinia,
}

/// The static characteristics of one workload (one column of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name as used in the paper's figures.
    pub name: &'static str,
    /// Benchmark suite.
    pub class: WorkloadClass,
    /// Total dynamic instruction count (Table III, "# of inst.").
    pub total_instructions: u64,
    /// Fraction of instructions that are loads.
    pub load_ratio: f64,
    /// Fraction of instructions that are stores.
    pub store_ratio: f64,
    /// Dataset footprint in bytes.
    pub dataset_bytes: u64,
    /// Size of one memory access issued to the MoS space.
    pub access_bytes: u64,
    /// Spatial pattern.
    pub pattern: AccessPattern,
}

impl WorkloadSpec {
    /// Checks the load/store ratio accounting and returns the spec with any
    /// floating-point epsilon overshoot normalized away.
    ///
    /// Every instruction is either a load, a store, or compute, so
    /// `load_ratio + store_ratio` must not exceed 1.0. A sum within a tiny
    /// epsilon above 1.0 (rounded table data) is rescaled so the ratios sum
    /// to exactly 1.0; anything larger is a construction error.
    ///
    /// # Panics
    ///
    /// Panics when either ratio is non-finite or negative, or when the sum
    /// exceeds 1.0 beyond floating-point noise.
    #[must_use]
    pub fn validated(mut self) -> Self {
        assert!(
            self.load_ratio.is_finite() && self.load_ratio >= 0.0,
            "workload {}: load_ratio {} must be finite and non-negative",
            self.name,
            self.load_ratio
        );
        assert!(
            self.store_ratio.is_finite() && self.store_ratio >= 0.0,
            "workload {}: store_ratio {} must be finite and non-negative",
            self.name,
            self.store_ratio
        );
        let sum = self.load_ratio + self.store_ratio;
        assert!(
            sum <= 1.0 + 1e-9,
            "workload {}: load_ratio {} + store_ratio {} = {sum} exceeds 1.0",
            self.name,
            self.load_ratio,
            self.store_ratio
        );
        if sum > 1.0 {
            self.load_ratio /= sum;
            self.store_ratio /= sum;
        }
        self
    }

    /// Fraction of instructions that reference memory.
    #[must_use]
    pub fn memory_ratio(&self) -> f64 {
        self.load_ratio + self.store_ratio
    }

    /// Fraction of memory accesses that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        let m = self.memory_ratio();
        if m <= 0.0 {
            0.0
        } else {
            self.store_ratio / m
        }
    }

    /// Total number of memory accesses the full workload performs.
    ///
    /// Rounds to nearest (not truncation) so that every consumer — the
    /// closed-loop replay, the open-loop arrival generator, and capacity
    /// planning — derives the same count from the same spec.
    #[must_use]
    pub fn total_memory_accesses(&self) -> u64 {
        (self.total_instructions as f64 * self.memory_ratio()).round() as u64
    }

    /// Average non-memory instructions between consecutive memory accesses.
    #[must_use]
    pub fn compute_per_access(&self) -> u64 {
        let m = self.memory_ratio();
        if m <= 0.0 {
            return 0;
        }
        ((1.0 - m) / m).round() as u64
    }

    /// The four mmap-benchmark microbenchmarks (Table III).
    #[must_use]
    pub fn microbench() -> Vec<WorkloadSpec> {
        let gb = 1024 * 1024 * 1024;
        let spec = |name, inst: u64, load, store, pattern| {
            WorkloadSpec {
                name,
                class: WorkloadClass::Microbench,
                total_instructions: inst,
                load_ratio: load,
                store_ratio: store,
                dataset_bytes: 16 * gb,
                access_bytes: 4096,
                pattern,
            }
            .validated()
        };
        vec![
            spec(
                "seqRd",
                67_000_000_000,
                0.28,
                0.43,
                AccessPattern::Sequential,
            ),
            spec("rndRd", 69_000_000_000, 0.27, 0.37, AccessPattern::Random),
            spec(
                "seqWr",
                67_000_000_000,
                0.28,
                0.43,
                AccessPattern::Sequential,
            ),
            spec("rndWr", 69_000_000_000, 0.27, 0.37, AccessPattern::Random),
        ]
    }

    /// The five SQLite benchmark operations (Table III).
    #[must_use]
    pub fn sqlite() -> Vec<WorkloadSpec> {
        let gb = 1024 * 1024 * 1024;
        let hotspot = AccessPattern::Hotspot {
            hot_fraction: 0.2,
            hot_access_fraction: 0.85,
        };
        let spec = |name, inst: u64, load, store, pattern| {
            WorkloadSpec {
                name,
                class: WorkloadClass::Sqlite,
                total_instructions: inst,
                load_ratio: load,
                store_ratio: store,
                dataset_bytes: 11 * gb,
                access_bytes: 64,
                pattern,
            }
            .validated()
        };
        vec![
            spec(
                "seqSel",
                213_000_000_000,
                0.26,
                0.20,
                AccessPattern::Sequential,
            ),
            spec("rndSel", 213_000_000_000, 0.26, 0.20, hotspot),
            spec(
                "seqIns",
                40_000_000_000,
                0.25,
                0.21,
                AccessPattern::Sequential,
            ),
            spec("rndIns", 44_000_000_000, 0.25, 0.21, hotspot),
            spec("update", 244_000_000_000, 0.26, 0.20, hotspot),
        ]
    }

    /// The three Rodinia kernels (Table III).
    #[must_use]
    pub fn rodinia() -> Vec<WorkloadSpec> {
        let gb = 1024 * 1024 * 1024;
        vec![
            WorkloadSpec {
                name: "BFS",
                class: WorkloadClass::Rodinia,
                total_instructions: 192_000_000_000,
                load_ratio: 0.21,
                store_ratio: 0.04,
                dataset_bytes: 9 * gb,
                access_bytes: 64,
                pattern: AccessPattern::Random,
            }
            .validated(),
            WorkloadSpec {
                name: "KMN",
                class: WorkloadClass::Rodinia,
                total_instructions: 38_000_000_000,
                load_ratio: 0.27,
                store_ratio: 0.03,
                dataset_bytes: 5 * gb,
                access_bytes: 64,
                pattern: AccessPattern::Sequential,
            }
            .validated(),
            WorkloadSpec {
                name: "NN",
                class: WorkloadClass::Rodinia,
                total_instructions: 145_000_000_000,
                load_ratio: 0.16,
                store_ratio: 0.05,
                dataset_bytes: 7 * gb,
                access_bytes: 64,
                pattern: AccessPattern::Sequential,
            }
            .validated(),
        ]
    }

    /// Every workload of Table III, in the order the figures list them.
    #[must_use]
    pub fn table3() -> Vec<WorkloadSpec> {
        let mut all = Self::microbench();
        all.extend(Self::rodinia());
        all.extend(Self::sqlite());
        all
    }

    /// Looks a workload up by its paper name (case-sensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::table3().into_iter().find(|w| w.name == name)
    }

    /// Returns a copy of this spec with its dataset scaled to `bytes`
    /// (used by the Fig. 20b large-footprint stress test and by the
    /// scaled-down unit tests).
    #[must_use]
    pub fn with_dataset_bytes(mut self, bytes: u64) -> Self {
        self.dataset_bytes = bytes;
        self
    }
}

/// Deterministic generator of a workload's memory-access trace.
///
/// The generator produces `count` accesses whose statistics follow the spec;
/// `count` is typically a scaled-down sample of
/// [`WorkloadSpec::total_memory_accesses`] so that experiments finish in
/// seconds while preserving ratios.
///
/// # Example
///
/// ```
/// use hams_workloads::{TraceGenerator, WorkloadSpec};
///
/// let spec = WorkloadSpec::by_name("rndWr").unwrap().with_dataset_bytes(1 << 20);
/// let trace: Vec<_> = TraceGenerator::new(spec, 42, 1000).collect();
/// assert_eq!(trace.len(), 1000);
/// let writes = trace.iter().filter(|a| a.is_write).count();
/// assert!(writes > 400 && writes < 800); // store-heavy microbenchmark
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: rand::rngs::StdRng,
    remaining: usize,
    next_sequential: u64,
}

impl TraceGenerator {
    /// Creates a generator for `count` accesses of `spec`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`WorkloadSpec::validated`] (ratio
    /// accounting broken at construction).
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64, count: usize) -> Self {
        let spec = spec.validated();
        TraceGenerator {
            spec,
            rng: derived_rng(seed, spec.name),
            remaining: count,
            next_sequential: 0,
        }
    }

    /// The spec this generator follows.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_addr(&mut self) -> u64 {
        let span = self.spec.dataset_bytes.max(self.spec.access_bytes);
        let slots = (span / self.spec.access_bytes).max(1);
        match self.spec.pattern {
            AccessPattern::Sequential => {
                let slot = self.next_sequential % slots;
                self.next_sequential += 1;
                slot * self.spec.access_bytes
            }
            AccessPattern::Random => self.rng.gen_range(0..slots) * self.spec.access_bytes,
            AccessPattern::Hotspot {
                hot_fraction,
                hot_access_fraction,
            } => {
                let hot_slots = ((slots as f64 * hot_fraction).ceil() as u64).max(1);
                if self.rng.gen_bool(hot_access_fraction.clamp(0.0, 1.0)) {
                    self.rng.gen_range(0..hot_slots) * self.spec.access_bytes
                } else {
                    self.rng.gen_range(0..slots) * self.spec.access_bytes
                }
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.next_addr();
        let is_write = self
            .rng
            .gen_bool(self.spec.write_fraction().clamp(0.0, 1.0));
        Some(Access {
            addr,
            size: self.spec.access_bytes,
            is_write,
            compute_instructions: self.spec.compute_per_access(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lists_all_twelve_workloads() {
        let all = WorkloadSpec::table3();
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        for expected in [
            "seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN", "seqSel", "rndSel", "seqIns",
            "rndIns", "update",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadSpec::by_name("update").is_some());
        assert!(WorkloadSpec::by_name("doom").is_none());
    }

    #[test]
    fn ratios_match_table3() {
        let bfs = WorkloadSpec::by_name("BFS").unwrap();
        assert!((bfs.load_ratio - 0.21).abs() < 1e-9);
        assert!((bfs.store_ratio - 0.04).abs() < 1e-9);
        assert_eq!(bfs.dataset_bytes, 9 * 1024 * 1024 * 1024);
        assert!(bfs.write_fraction() < 0.2);

        let seq_wr = WorkloadSpec::by_name("seqWr").unwrap();
        assert!(seq_wr.write_fraction() > 0.5, "seqWr is store heavy");
    }

    #[test]
    fn compute_per_access_reflects_memory_intensity() {
        let micro = WorkloadSpec::by_name("seqRd").unwrap();
        let rodinia = WorkloadSpec::by_name("NN").unwrap();
        assert!(
            rodinia.compute_per_access() > micro.compute_per_access(),
            "Rodinia is computation heavy"
        );
    }

    #[test]
    fn sequential_trace_is_monotonic_with_wraparound() {
        let spec = WorkloadSpec::by_name("seqRd")
            .unwrap()
            .with_dataset_bytes(64 * 4096);
        let trace: Vec<Access> = TraceGenerator::new(spec, 1, 64).collect();
        for pair in trace.windows(2) {
            assert!(pair[1].addr > pair[0].addr || pair[1].addr == 0);
        }
    }

    #[test]
    fn traces_are_reproducible_per_seed() {
        let spec = WorkloadSpec::by_name("rndRd")
            .unwrap()
            .with_dataset_bytes(1 << 22);
        let a: Vec<Access> = TraceGenerator::new(spec, 7, 500).collect();
        let b: Vec<Access> = TraceGenerator::new(spec, 7, 500).collect();
        let c: Vec<Access> = TraceGenerator::new(spec, 8, 500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_within_the_dataset() {
        for spec in WorkloadSpec::table3() {
            let spec = spec.with_dataset_bytes(1 << 24);
            for access in TraceGenerator::new(spec, 3, 2000) {
                assert!(access.addr + access.size <= spec.dataset_bytes.max(spec.access_bytes));
            }
        }
    }

    #[test]
    fn hotspot_pattern_concentrates_accesses() {
        let spec = WorkloadSpec::by_name("rndSel")
            .unwrap()
            .with_dataset_bytes(1 << 24);
        let trace: Vec<Access> = TraceGenerator::new(spec, 11, 5000).collect();
        let hot_boundary = (spec.dataset_bytes as f64 * 0.2) as u64;
        let hot = trace.iter().filter(|a| a.addr < hot_boundary).count();
        assert!(
            hot as f64 > 0.7 * trace.len() as f64,
            "only {hot} of {} accesses were hot",
            trace.len()
        );
    }

    #[test]
    fn generator_reports_exact_length() {
        let spec = WorkloadSpec::by_name("KMN")
            .unwrap()
            .with_dataset_bytes(1 << 20);
        let g = TraceGenerator::new(spec, 5, 123);
        assert_eq!(g.len(), 123);
        assert_eq!(g.count(), 123);
    }

    #[test]
    #[should_panic(expected = "exceeds 1.0")]
    fn validated_rejects_ratio_sum_above_one() {
        let mut spec = WorkloadSpec::by_name("rndRd").unwrap();
        spec.load_ratio = 0.8;
        spec.store_ratio = 0.4;
        let _ = spec.validated();
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn validated_rejects_negative_ratio() {
        let mut spec = WorkloadSpec::by_name("rndRd").unwrap();
        spec.store_ratio = -0.1;
        let _ = spec.validated();
    }

    #[test]
    fn validated_normalizes_epsilon_overshoot() {
        let mut spec = WorkloadSpec::by_name("rndRd").unwrap();
        // Rounded table data can overshoot by floating-point noise; the sum
        // must come back as exactly 1.0 with the load/store mix preserved.
        spec.load_ratio = 0.6 + 4e-10;
        spec.store_ratio = 0.4 + 4e-10;
        let fixed = spec.validated();
        assert!(fixed.memory_ratio() <= 1.0);
        assert!((fixed.memory_ratio() - 1.0).abs() < 1e-9);
        assert!((fixed.write_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn total_memory_accesses_rounds_to_nearest() {
        let mut spec = WorkloadSpec::by_name("rndRd").unwrap();
        spec.total_instructions = 1_001;
        spec.load_ratio = 0.4995;
        spec.store_ratio = 0.0;
        // 1_001 * 0.4995 = 500.0495: rounds down, same as truncation.
        assert_eq!(spec.total_memory_accesses(), 500);
        spec.load_ratio = 0.4999;
        spec.store_ratio = 0.0006;
        // 1_001 * 0.5005 = 500.9505: truncation used to report 500; rounding
        // gives the 501 every consumer (replay, arrivals) now agrees on.
        assert_eq!(spec.total_memory_accesses(), 501);
    }

    #[test]
    fn write_fraction_of_zero_memory_ratio_is_zero() {
        let mut spec = WorkloadSpec::by_name("KMN").unwrap();
        spec.load_ratio = 0.0;
        spec.store_ratio = 0.0;
        assert_eq!(spec.write_fraction(), 0.0);
        assert_eq!(spec.compute_per_access(), 0);
    }
}
