//! fio-style block-level workload generator for the device characterisation
//! of Fig. 5 (ULL-Flash vs NVMe SSD latency and bandwidth versus I/O depth).

use rand::Rng;
use serde::{Deserialize, Serialize};

use hams_sim::rng::derived_rng;

/// One block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Byte offset within the device.
    pub offset: u64,
    /// Request size in bytes.
    pub bytes: u64,
    /// Whether the request is a write.
    pub is_write: bool,
}

/// Access pattern of a fio job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FioPattern {
    /// Sequential offsets.
    Sequential,
    /// Uniformly random 4 KB-aligned offsets.
    Random,
}

/// A fio job description: the four corners of Fig. 5 are
/// sequential/random × read/write, swept over I/O depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FioJob {
    /// Spatial pattern.
    pub pattern: FioPattern,
    /// Whether requests are writes.
    pub is_write: bool,
    /// Number of requests kept in flight.
    pub io_depth: usize,
    /// Request payload size (the paper uses the 4 KB NVMe packet payload).
    pub request_bytes: u64,
    /// Extent of the device region exercised, in bytes.
    pub span_bytes: u64,
}

impl FioJob {
    /// A 4 KB job over an 8 GiB span, matching the paper's fio setup.
    #[must_use]
    pub fn four_kib(pattern: FioPattern, is_write: bool, io_depth: usize) -> Self {
        FioJob {
            pattern,
            is_write,
            io_depth,
            request_bytes: 4096,
            span_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Short label used in figure output, e.g. `"Seq Read"`.
    #[must_use]
    pub fn label(&self) -> String {
        let p = match self.pattern {
            FioPattern::Sequential => "Seq",
            FioPattern::Random => "Rand",
        };
        let k = if self.is_write { "Write" } else { "Read" };
        format!("{p} {k}")
    }

    /// Generates `count` requests of this job, deterministically from `seed`.
    #[must_use]
    pub fn requests(&self, seed: u64, count: usize) -> Vec<IoRequest> {
        let mut out = Vec::with_capacity(count);
        self.requests_into(seed, count, &mut out);
        out
    }

    /// [`Self::requests`] writing into a caller-owned buffer — the
    /// allocation-free form for harnesses that replay many jobs back to
    /// back and reuse one request vector across them. The buffer is cleared
    /// first and holds exactly the same `count` requests `requests` returns
    /// for the same `seed`.
    pub fn requests_into(&self, seed: u64, count: usize, out: &mut Vec<IoRequest>) {
        out.clear();
        out.reserve(count);
        let mut rng = derived_rng(seed, &self.label());
        let slots = (self.span_bytes / self.request_bytes).max(1);
        for i in 0..count {
            let slot = match self.pattern {
                FioPattern::Sequential => i as u64 % slots,
                FioPattern::Random => rng.gen_range(0..slots),
            };
            out.push(IoRequest {
                offset: slot * self.request_bytes,
                bytes: self.request_bytes,
                is_write: self.is_write,
            });
        }
    }

    /// The four job corners of Fig. 5 at a given I/O depth.
    #[must_use]
    pub fn figure5_jobs(io_depth: usize) -> Vec<FioJob> {
        vec![
            FioJob::four_kib(FioPattern::Sequential, false, io_depth),
            FioJob::four_kib(FioPattern::Sequential, true, io_depth),
            FioJob::four_kib(FioPattern::Random, false, io_depth),
            FioJob::four_kib(FioPattern::Random, true, io_depth),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_corners() {
        let labels: Vec<String> = FioJob::figure5_jobs(1).iter().map(FioJob::label).collect();
        assert_eq!(
            labels,
            vec!["Seq Read", "Seq Write", "Rand Read", "Rand Write"]
        );
    }

    #[test]
    fn sequential_requests_advance_by_request_size() {
        let job = FioJob::four_kib(FioPattern::Sequential, false, 1);
        let reqs = job.requests(1, 8);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.offset, i as u64 * 4096);
            assert_eq!(r.bytes, 4096);
            assert!(!r.is_write);
        }
    }

    #[test]
    fn random_requests_stay_in_span_and_are_aligned() {
        let mut job = FioJob::four_kib(FioPattern::Random, true, 32);
        job.span_bytes = 1 << 20;
        for r in job.requests(9, 1000) {
            assert!(r.offset + r.bytes <= job.span_bytes);
            assert_eq!(r.offset % 4096, 0);
            assert!(r.is_write);
        }
    }

    #[test]
    fn requests_are_deterministic_per_seed() {
        let job = FioJob::four_kib(FioPattern::Random, false, 4);
        assert_eq!(job.requests(5, 100), job.requests(5, 100));
        assert_ne!(job.requests(5, 100), job.requests(6, 100));
    }

    #[test]
    fn requests_into_matches_requests_and_clears_the_buffer() {
        let job = FioJob::four_kib(FioPattern::Random, true, 8);
        let mut buffer = vec![
            IoRequest {
                offset: 99,
                bytes: 1,
                is_write: false,
            };
            3
        ];
        job.requests_into(11, 50, &mut buffer);
        assert_eq!(buffer, job.requests(11, 50));
        // Reuse with a different job: stale entries never leak through.
        let seq = FioJob::four_kib(FioPattern::Sequential, false, 1);
        seq.requests_into(11, 5, &mut buffer);
        assert_eq!(buffer, seq.requests(11, 5));
    }
}
