//! Workload generators reproducing the paper's evaluation inputs: the twelve
//! Table III workloads (mmap-benchmark, SQLite, Rodinia) as memory-access
//! traces, and fio-style block jobs for the device characterisation of Fig. 5.
//!
//! # Example
//!
//! ```
//! use hams_workloads::{TraceGenerator, WorkloadSpec};
//!
//! let update = WorkloadSpec::by_name("update").unwrap().with_dataset_bytes(1 << 22);
//! let accesses: Vec<_> = TraceGenerator::new(update, 1, 256).collect();
//! assert_eq!(accesses.len(), 256);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod fio;
pub mod spec;
pub mod tenant;

pub use arrival::{ArrivalGenerator, ArrivalProcess};
pub use fio::{FioJob, FioPattern, IoRequest};
pub use spec::{Access, AccessPattern, TraceGenerator, WorkloadClass, WorkloadSpec};
pub use tenant::{tenant_seed, TenantSet, TenantSource, TenantSpec};
