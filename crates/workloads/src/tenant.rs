//! Multi-tenant workload composition: several independent clients sharing
//! one platform.
//!
//! The paper's serving scenarios are single-tenant stand-ins for a shared
//! host. This module supplies the missing layer: a [`TenantSpec`] pairs a
//! Table III workload with its own open-loop [`ArrivalProcess`] (and an
//! optional QoS weight for fairness reporting), and a [`TenantSet`] merges
//! any number of such tenants into one time-ordered request stream — the
//! [`TenantSource`] — that the platform-boundary admission queue in
//! `hams-platforms` consumes exactly like a single-tenant stream.
//!
//! Determinism contract: tenant *i* draws its trace and arrival streams from
//! [`tenant_seed`]`(base, i)`, and tenant 0's seed **is** the base seed, so a
//! single-tenant set produces byte-for-byte the stream a plain open-loop run
//! would (the degenerate pin in `tests/tenant_equivalence.rs`). Merging is a
//! stable earliest-arrival scan with ties broken by tenant index, so the
//! merged order is a pure function of the seeds.

use serde::{Deserialize, Serialize};
use std::iter::{Peekable, Zip};

use hams_sim::Nanos;

use crate::arrival::{ArrivalGenerator, ArrivalProcess};
use crate::spec::{Access, TraceGenerator, WorkloadSpec};

/// Per-tenant seed stride (the 64-bit golden-ratio constant, as used by
/// splitmix-style sequence splitting): tenant `i` seeds its streams with
/// `base + i * STRIDE`, keeping tenant 0 byte-identical to a single-tenant
/// run while decorrelating the rest.
const TENANT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed tenant `tenant` derives its trace and arrival streams from.
/// `tenant_seed(base, 0) == base` — the degenerate single-tenant contract.
#[must_use]
pub fn tenant_seed(base: u64, tenant: usize) -> u64 {
    base.wrapping_add((tenant as u64).wrapping_mul(TENANT_SEED_STRIDE))
}

/// One tenant: a workload, its own arrival schedule, and a QoS weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name as used in figure legends and per-tenant reports.
    pub name: String,
    /// The workload this tenant replays.
    pub spec: WorkloadSpec,
    /// When this tenant's requests arrive.
    pub arrivals: ArrivalProcess,
    /// QoS weight for fairness reporting: achieved rates are normalized by
    /// weight before the fairness index is computed, so a weight-2 tenant is
    /// *entitled* to twice the throughput of a weight-1 tenant.
    pub weight: f64,
    /// Number of requests this tenant offers; `None` uses the run's
    /// `ScaleProfile::accesses` default.
    pub accesses: Option<usize>,
}

impl TenantSpec {
    /// A tenant with weight 1 offering the profile-default request count.
    #[must_use]
    pub fn new(name: impl Into<String>, spec: WorkloadSpec, arrivals: ArrivalProcess) -> Self {
        TenantSpec {
            name: name.into(),
            spec,
            arrivals,
            weight: 1.0,
            accesses: None,
        }
    }

    /// Returns a copy with a different QoS weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns a copy offering an explicit request count instead of the
    /// profile default.
    #[must_use]
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.accesses = Some(accesses);
        self
    }

    /// The request count this tenant offers given the profile default.
    #[must_use]
    pub fn accesses_or(&self, default: usize) -> usize {
        self.accesses.unwrap_or(default)
    }
}

/// An ordered set of tenants sharing one platform. Tenant index (position
/// in [`TenantSet::tenants`]) is the tenant id threaded through the
/// open-loop engine's records and per-tenant metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSet {
    /// The tenants, in id order.
    pub tenants: Vec<TenantSpec>,
}

impl TenantSet {
    /// Builds a validated set.
    ///
    /// # Panics
    ///
    /// Panics when `tenants` is empty, a weight is non-finite or
    /// non-positive, or an arrival process fails
    /// [`ArrivalProcess::validate`].
    #[must_use]
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        let set = TenantSet { tenants };
        set.validate();
        set
    }

    /// The degenerate single-tenant set, which must behave byte-identically
    /// to a plain open-loop run of the same workload and arrival process.
    #[must_use]
    pub fn single(name: impl Into<String>, spec: WorkloadSpec, arrivals: ArrivalProcess) -> Self {
        TenantSet::new(vec![TenantSpec::new(name, spec, arrivals)])
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the set has no tenants (never true for a validated set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Checks the set.
    ///
    /// # Panics
    ///
    /// Panics on an empty set, a non-finite or non-positive weight, or an
    /// invalid arrival process.
    pub fn validate(&self) {
        assert!(!self.tenants.is_empty(), "a tenant set needs >= 1 tenant");
        for t in &self.tenants {
            assert!(
                t.weight.is_finite() && t.weight > 0.0,
                "tenant {}: weight {} must be finite and positive",
                t.name,
                t.weight
            );
            t.arrivals.validate();
        }
    }

    /// Sum of the tenants' mean offered rates (infinite if any tenant
    /// saturates).
    #[must_use]
    pub fn offered_rate_per_sec(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.arrivals.mean_rate_per_sec())
            .sum()
    }

    /// Total requests the set offers given the profile default per tenant.
    #[must_use]
    pub fn total_accesses(&self, default: usize) -> usize {
        self.tenants.iter().map(|t| t.accesses_or(default)).sum()
    }

    /// The merged run's workload label: the tenants' workload names joined
    /// with `+`. A single-tenant set keeps exactly its workload's name.
    #[must_use]
    pub fn workload_label(&self) -> String {
        self.tenants
            .iter()
            .map(|t| t.spec.name)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// One per-tenant request stream: the zipped trace × arrival iterator.
type TenantStream = Peekable<Zip<TraceGenerator, ArrivalGenerator>>;

/// The merged, time-ordered request source of a [`TenantSet`]: yields
/// `(tenant, access, arrival)` tuples in non-decreasing arrival order, with
/// simultaneous arrivals ordered by tenant index. Each tenant's own stream
/// stays in its generator order, so per-tenant request sequences are
/// unchanged by the merge.
#[derive(Debug)]
pub struct TenantSource {
    streams: Vec<TenantStream>,
}

impl TenantSource {
    /// Builds the merged source. `scaled[i]` must be tenant *i*'s
    /// dataset-scaled workload spec (scaling lives in the caller because the
    /// scale profile does); `default_accesses` fills in for tenants without
    /// an explicit request count.
    ///
    /// # Panics
    ///
    /// Panics when `scaled` and the set disagree on length, or the set
    /// fails [`TenantSet::validate`].
    #[must_use]
    pub fn new(
        set: &TenantSet,
        scaled: &[WorkloadSpec],
        base_seed: u64,
        default_accesses: usize,
    ) -> Self {
        set.validate();
        assert_eq!(
            scaled.len(),
            set.tenants.len(),
            "one scaled spec per tenant"
        );
        let streams = set
            .tenants
            .iter()
            .zip(scaled)
            .enumerate()
            .map(|(i, (t, &spec))| {
                let count = t.accesses_or(default_accesses);
                let seed = tenant_seed(base_seed, i);
                TraceGenerator::new(spec, seed, count)
                    .zip(ArrivalGenerator::new(t.arrivals, seed, count))
                    .peekable()
            })
            .collect();
        TenantSource { streams }
    }
}

impl Iterator for TenantSource {
    type Item = (usize, Access, Nanos);

    fn next(&mut self) -> Option<Self::Item> {
        // Earliest-arrival scan; strict `<` keeps the lowest tenant index on
        // ties, so the merge order is deterministic.
        let mut best: Option<(usize, Nanos)> = None;
        for (i, stream) in self.streams.iter_mut().enumerate() {
            if let Some(&(_, arrival)) = stream.peek() {
                if best.is_none_or(|(_, t)| arrival < t) {
                    best = Some((i, arrival));
                }
            }
        }
        let (i, _) = best?;
        let (access, arrival) = self.streams[i].next().expect("peeked");
        Some((i, access, arrival))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let mut lower = 0usize;
        let mut upper = Some(0usize);
        for s in &self.streams {
            let (lo, hi) = s.size_hint();
            lower += lo;
            upper = upper.zip(hi).map(|(a, b)| a + b);
        }
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> WorkloadSpec {
        WorkloadSpec::by_name(name).unwrap()
    }

    fn poisson(rate: f64) -> ArrivalProcess {
        ArrivalProcess::Poisson { rate_per_sec: rate }
    }

    #[test]
    fn tenant_zero_uses_the_base_seed() {
        assert_eq!(tenant_seed(42, 0), 42);
        assert_ne!(tenant_seed(42, 1), 42);
        assert_ne!(tenant_seed(42, 1), tenant_seed(42, 2));
    }

    #[test]
    fn single_tenant_source_is_the_plain_zipped_stream() {
        let w = spec("rndRd");
        let set = TenantSet::single("only", w, poisson(1e6));
        let merged: Vec<_> = TenantSource::new(&set, &[w], 7, 300).collect();
        let reference: Vec<_> = TraceGenerator::new(w, 7, 300)
            .zip(ArrivalGenerator::new(poisson(1e6), 7, 300))
            .map(|(a, t)| (0usize, a, t))
            .collect();
        assert_eq!(merged, reference);
    }

    #[test]
    fn merged_source_is_time_ordered_and_conserves_per_tenant_counts() {
        let set = TenantSet::new(vec![
            TenantSpec::new("a", spec("rndRd"), poisson(2e6)),
            TenantSpec::new("b", spec("update"), poisson(5e5)).with_accesses(150),
            TenantSpec::new("c", spec("seqWr"), ArrivalProcess::Saturate).with_weight(2.0),
        ]);
        let scaled = [spec("rndRd"), spec("update"), spec("seqWr")];
        let merged: Vec<_> = TenantSource::new(&set, &scaled, 11, 400).collect();
        assert_eq!(merged.len(), 400 + 150 + 400);
        let mut counts = [0usize; 3];
        let mut last = Nanos::ZERO;
        for &(tenant, _, arrival) in &merged {
            assert!(arrival >= last, "merged stream went back in time");
            last = arrival;
            counts[tenant] += 1;
        }
        assert_eq!(counts, [400, 150, 400]);
        // The saturating tenant's arrivals are all at t = 0, tie-broken by
        // index: tenant 2 owns the head of the merged stream.
        assert!(merged[..400].iter().all(|&(t, _, a)| t == 2 && a.is_zero()));
    }

    #[test]
    fn offered_rate_sums_tenant_rates() {
        let set = TenantSet::new(vec![
            TenantSpec::new("a", spec("rndRd"), poisson(1e6)),
            TenantSpec::new("b", spec("update"), poisson(3e6)),
        ]);
        assert!((set.offered_rate_per_sec() - 4e6).abs() < 1e-3);
        assert_eq!(set.workload_label(), "rndRd+update");
        assert_eq!(set.total_accesses(100), 200);
        let sat = TenantSet::single("s", spec("rndRd"), ArrivalProcess::Saturate);
        assert_eq!(sat.offered_rate_per_sec(), f64::INFINITY);
        assert_eq!(sat.workload_label(), "rndRd");
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn non_positive_weight_is_rejected() {
        let _ = TenantSet::new(vec![
            TenantSpec::new("a", spec("rndRd"), poisson(1e6)).with_weight(0.0)
        ]);
    }

    #[test]
    #[should_panic(expected = ">= 1 tenant")]
    fn empty_set_is_rejected() {
        let _ = TenantSet::new(Vec::new());
    }
}
