//! Property-based tests for the flash substrate: FTL mapping invariants,
//! internal-DRAM bounds and device-level durability semantics.

use hams_flash::{FlashGeometry, Ftl, InternalDram, SsdConfig, SsdDevice};
use hams_nvme::{NvmeCommand, PrpList};
use hams_sim::Nanos;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any sequence of writes and trims, every mapped LPN resolves to a
    /// unique PPN within the device, and trimmed LPNs resolve to nothing.
    #[test]
    fn ftl_mapping_stays_consistent(ops in proptest::collection::vec((0u64..96, any::<bool>()), 1..400)) {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 0.25);
        let mut model: HashMap<u64, bool> = HashMap::new();
        for (lpn, is_trim) in ops {
            if is_trim {
                ftl.trim(lpn);
                model.insert(lpn, false);
            } else if ftl.write(lpn).is_ok() {
                model.insert(lpn, true);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (lpn, mapped) in &model {
            match ftl.lookup(*lpn) {
                Some(ppn) => {
                    prop_assert!(*mapped, "trimmed LPN {lpn} still mapped");
                    prop_assert!(ppn < ftl.geometry().total_pages());
                    prop_assert!(seen.insert(ppn), "PPN {ppn} mapped twice");
                }
                None => prop_assert!(!*mapped, "written LPN {lpn} lost its mapping"),
            }
        }
        // Write amplification is at least 1 whenever any host write happened.
        if ftl.stats().host_writes > 0 {
            prop_assert!(ftl.stats().write_amplification() >= 1.0);
        }
    }

    /// The internal DRAM never holds more pages than its capacity and its
    /// hit/miss counts always add up.
    #[test]
    fn internal_dram_respects_capacity(
        capacity in 1usize..64,
        ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..300),
    ) {
        let mut dram = InternalDram::new(capacity, Nanos::from_nanos(200));
        for (lpn, is_write) in &ops {
            if *is_write {
                dram.write(*lpn);
            } else {
                dram.read(*lpn);
            }
            prop_assert!(dram.resident_pages() <= capacity);
            prop_assert!(dram.dirty_pages() <= dram.resident_pages());
        }
        let s = dram.stats();
        prop_assert_eq!(s.hits + s.misses, ops.len() as u64);
    }

    /// Device-level: a flush makes every previously buffered write durable,
    /// and completion times never precede issue times.
    #[test]
    fn flush_durability_and_causality(lbas in proptest::collection::vec(0u64..64, 1..40)) {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let mut now = Nanos::ZERO;
        for lba in &lbas {
            let cmd = NvmeCommand::write(1, *lba, 4096, PrpList::single(0));
            let done = ssd.service(&cmd, now).unwrap();
            prop_assert!(done.finished_at >= now);
            now = done.finished_at;
        }
        let flush = ssd.service(&NvmeCommand::flush(1), now).unwrap();
        prop_assert!(flush.finished_at >= now);
        for lba in &lbas {
            prop_assert!(ssd.is_durable(*lba), "LBA {lba} not durable after flush");
        }
    }
}
