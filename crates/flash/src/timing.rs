//! NAND timing parameters.
//!
//! The paper's headline device numbers: Z-NAND reads in 3 µs and programs in
//! 100 µs — 15× and 7× faster than conventional V-NAND (§II-C) — and the
//! firmware/interface overhead brings user-visible 4 KB latency to 8 µs
//! (read) / 10 µs (write) at queue depth 1 (§III-A).

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Timing parameters of a flash medium plus its on-device firmware path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Array read time (tR): sensing a page into the plane register.
    pub read: Nanos,
    /// Array program time (tPROG): committing a page from the register.
    pub program: Nanos,
    /// Block erase time (tBERS).
    pub erase: Nanos,
    /// Time to move one flash page across the channel bus to/from the
    /// controller (ONFI/toggle transfer of `page_size` bytes).
    pub channel_transfer: Nanos,
    /// Firmware time spent in the host interface layer per command
    /// (NVMe parse, queue bookkeeping, sub-request split).
    pub hil_overhead: Nanos,
    /// Firmware time spent in the FTL per sub-request (mapping lookup/update).
    pub ftl_overhead: Nanos,
}

impl NandTiming {
    /// Z-NAND (single-level 3D V-NAND) timing: 3 µs read, 100 µs program.
    #[must_use]
    pub fn z_nand() -> Self {
        NandTiming {
            read: Nanos::from_micros(3),
            program: Nanos::from_micros(100),
            erase: Nanos::from_millis(1),
            channel_transfer: Nanos::from_nanos(3_300), // ~1.2 GB/s per channel for 4 KB
            hil_overhead: Nanos::from_nanos(1_500),
            ftl_overhead: Nanos::from_nanos(500),
        }
    }

    /// Conventional TLC V-NAND timing used by the Intel-750-class NVMe SSD:
    /// 15× slower read, 7× slower program than Z-NAND.
    #[must_use]
    pub fn vnand_tlc() -> Self {
        NandTiming {
            read: Nanos::from_micros(45),
            program: Nanos::from_micros(700),
            erase: Nanos::from_millis(5),
            channel_transfer: Nanos::from_nanos(6_600),
            hil_overhead: Nanos::from_micros(4),
            ftl_overhead: Nanos::from_micros(1),
        }
    }

    /// MLC NAND behind a SATA interface (low-end comparison device).
    #[must_use]
    pub fn sata_mlc() -> Self {
        NandTiming {
            read: Nanos::from_micros(60),
            program: Nanos::from_micros(900),
            erase: Nanos::from_millis(6),
            channel_transfer: Nanos::from_micros(10),
            hil_overhead: Nanos::from_micros(20),
            ftl_overhead: Nanos::from_micros(2),
        }
    }

    /// Time to service an array operation of the given kind, excluding
    /// channel transfer and firmware overheads.
    #[must_use]
    pub fn array_time(&self, op: FlashOp) -> Nanos {
        match op {
            FlashOp::Read => self.read,
            FlashOp::Program => self.program,
            FlashOp::Erase => self.erase,
        }
    }
}

/// The three primitive flash array operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashOp {
    /// Page read (array sense).
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_nand_matches_paper_numbers() {
        let t = NandTiming::z_nand();
        assert_eq!(t.read, Nanos::from_micros(3));
        assert_eq!(t.program, Nanos::from_micros(100));
    }

    #[test]
    fn z_nand_is_15x_and_7x_faster_than_vnand() {
        let z = NandTiming::z_nand();
        let v = NandTiming::vnand_tlc();
        let read_ratio = v.read.as_nanos() as f64 / z.read.as_nanos() as f64;
        let prog_ratio = v.program.as_nanos() as f64 / z.program.as_nanos() as f64;
        assert!((read_ratio - 15.0).abs() < 1.0, "read ratio {read_ratio}");
        assert!((prog_ratio - 7.0).abs() < 1.0, "program ratio {prog_ratio}");
    }

    #[test]
    fn array_time_dispatch() {
        let t = NandTiming::z_nand();
        assert_eq!(t.array_time(FlashOp::Read), t.read);
        assert_eq!(t.array_time(FlashOp::Program), t.program);
        assert_eq!(t.array_time(FlashOp::Erase), t.erase);
    }

    #[test]
    fn device_classes_are_ordered() {
        let z = NandTiming::z_nand();
        let v = NandTiming::vnand_tlc();
        let s = NandTiming::sata_mlc();
        assert!(z.read < v.read && v.read < s.read);
        assert!(z.hil_overhead < v.hil_overhead && v.hil_overhead < s.hil_overhead);
    }
}
