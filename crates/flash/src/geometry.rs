//! SSD physical geometry and physical page addressing.
//!
//! State-of-the-art SSDs spread requests across channels, packages, dies and
//! planes (paper Fig. 4a). The geometry type describes that hierarchy and
//! provides the address arithmetic the FTL and FIL use to map a physical page
//! number onto the hardware unit that serves it.

use serde::{Deserialize, Serialize};

/// The physical organisation of an SSD's flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Independent system buses connecting packages to the controller.
    pub channels: u32,
    /// Flash packages attached to each channel.
    pub packages_per_channel: u32,
    /// Dies stacked in each package.
    pub dies_per_package: u32,
    /// Planes per die (planes share the die but buffer independently).
    pub planes_per_die: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Program/read pages per erase block.
    pub pages_per_block: u32,
    /// Bytes per flash page.
    pub page_size: u32,
}

impl FlashGeometry {
    /// Geometry of the 800 GB Z-NAND ULL-Flash prototype used in the paper:
    /// 16 channels, wide die-level parallelism, 4 KB pages.
    #[must_use]
    pub fn ull_flash() -> Self {
        FlashGeometry {
            channels: 16,
            packages_per_channel: 4,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 768,
            page_size: 4096,
        }
    }

    /// Geometry of a conventional high-performance NVMe SSD (Intel 750-class):
    /// fewer channels, TLC-style large blocks.
    #[must_use]
    pub fn nvme_ssd() -> Self {
        FlashGeometry {
            channels: 8,
            packages_per_channel: 4,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 512,
            page_size: 4096,
        }
    }

    /// Geometry of a SATA SSD used as the low-end comparison point.
    #[must_use]
    pub fn sata_ssd() -> Self {
        FlashGeometry {
            channels: 4,
            packages_per_channel: 2,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 512,
            page_size: 4096,
        }
    }

    /// A deliberately tiny geometry for unit tests: fast to fill, easy to
    /// reason about (2 channels × 1 × 1 × 1 plane, 8 blocks × 16 pages).
    #[must_use]
    pub fn tiny() -> Self {
        FlashGeometry {
            channels: 2,
            packages_per_channel: 1,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_size: 4096,
        }
    }

    /// Total number of dies in the device.
    #[must_use]
    pub fn total_dies(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.packages_per_channel)
            * u64::from(self.dies_per_package)
    }

    /// Total number of planes in the device.
    #[must_use]
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * u64::from(self.planes_per_die)
    }

    /// Total number of erase blocks in the device.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() * u64::from(self.blocks_per_plane)
    }

    /// Total number of flash pages in the device.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * u64::from(self.pages_per_block)
    }

    /// Raw capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * u64::from(self.page_size)
    }

    /// Pages per plane.
    #[must_use]
    pub fn pages_per_plane(&self) -> u64 {
        u64::from(self.blocks_per_plane) * u64::from(self.pages_per_block)
    }

    /// Decomposes a physical page number into the hardware unit it lives on.
    /// Pages are interleaved across planes first (channel = ppn % channels,
    /// …), which is what gives sequential physical pages channel-level
    /// parallelism.
    #[must_use]
    pub fn decompose(&self, ppn: u64) -> PhysicalPageAddr {
        let channel = (ppn % u64::from(self.channels)) as u32;
        let mut rest = ppn / u64::from(self.channels);
        let package = (rest % u64::from(self.packages_per_channel)) as u32;
        rest /= u64::from(self.packages_per_channel);
        let die = (rest % u64::from(self.dies_per_package)) as u32;
        rest /= u64::from(self.dies_per_package);
        let plane = (rest % u64::from(self.planes_per_die)) as u32;
        rest /= u64::from(self.planes_per_die);
        let page = (rest % u64::from(self.pages_per_block)) as u32;
        rest /= u64::from(self.pages_per_block);
        let block = (rest % u64::from(self.blocks_per_plane)) as u32;
        PhysicalPageAddr {
            channel,
            package,
            die,
            plane,
            block,
            page,
        }
    }

    /// Flat die index (0 ..< total_dies) of a decomposed address, used to pick
    /// the die resource in the FIL.
    #[must_use]
    pub fn die_index(&self, addr: &PhysicalPageAddr) -> usize {
        ((u64::from(addr.channel) * u64::from(self.packages_per_channel) + u64::from(addr.package))
            * u64::from(self.dies_per_package)
            + u64::from(addr.die)) as usize
    }
}

/// A fully decomposed physical flash page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysicalPageAddr {
    /// Channel index.
    pub channel: u32,
    /// Package index within the channel.
    pub package: u32,
    /// Die index within the package.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Erase block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ull_flash_capacity_is_800gb_class() {
        let g = FlashGeometry::ull_flash();
        let gb = g.capacity_bytes() as f64 / 1e9;
        assert!(gb > 700.0 && gb < 900.0, "capacity was {gb} GB");
    }

    #[test]
    fn totals_multiply_out() {
        let g = FlashGeometry::tiny();
        assert_eq!(g.total_dies(), 2);
        assert_eq!(g.total_planes(), 2);
        assert_eq!(g.total_blocks(), 16);
        assert_eq!(g.total_pages(), 256);
        assert_eq!(g.capacity_bytes(), 256 * 4096);
        assert_eq!(g.pages_per_plane(), 128);
    }

    #[test]
    fn decompose_is_within_bounds_and_unique_per_unit() {
        let g = FlashGeometry::tiny();
        for ppn in 0..g.total_pages() {
            let a = g.decompose(ppn);
            assert!(a.channel < g.channels);
            assert!(a.package < g.packages_per_channel);
            assert!(a.die < g.dies_per_package);
            assert!(a.plane < g.planes_per_die);
            assert!(a.block < g.blocks_per_plane);
            assert!(a.page < g.pages_per_block);
            assert!(g.die_index(&a) < g.total_dies() as usize);
        }
    }

    #[test]
    fn sequential_pages_alternate_channels() {
        let g = FlashGeometry::tiny();
        assert_eq!(g.decompose(0).channel, 0);
        assert_eq!(g.decompose(1).channel, 1);
        assert_eq!(g.decompose(2).channel, 0);
    }

    #[test]
    fn presets_are_distinct() {
        assert!(FlashGeometry::ull_flash().channels > FlashGeometry::nvme_ssd().channels);
        assert!(FlashGeometry::nvme_ssd().channels > FlashGeometry::sata_ssd().channels);
    }
}
