//! Flash translation layer: logical-to-physical page mapping, allocation,
//! garbage collection and wear levelling.
//!
//! The FTL is page-mapped (the scheme SimpleSSD/Amber model for ULL-Flash):
//! each logical page maps to exactly one physical flash page, writes are
//! out-of-place, and a greedy garbage collector reclaims the block with the
//! fewest valid pages when the free-block pool runs low.

use std::collections::VecDeque;

use hams_sim::FastHashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::FlashGeometry;

/// Errors produced by FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtlError {
    /// The logical page number is beyond the exported capacity.
    LpnOutOfRange(u64),
    /// The device has no free space left even after garbage collection.
    OutOfSpace,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LpnOutOfRange(lpn) => write!(f, "logical page {lpn} out of range"),
            FtlError::OutOfSpace => write!(f, "no free flash blocks available"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Accounting counters maintained by the FTL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_writes: u64,
    /// Pages written to the flash array (host writes + GC relocations).
    pub flash_writes: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Garbage-collection invocations.
    pub gc_runs: u64,
}

impl FtlStats {
    /// Write amplification factor: flash writes per host write (1.0 when no
    /// GC traffic has occurred; 0.0 before any host write).
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.flash_writes as f64 / self.host_writes as f64
        }
    }
}

/// The work performed by one write, beyond the page program itself.
/// The FIL charges time for relocations and erases it contains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Physical page the host data was programmed to.
    pub ppn: u64,
    /// Pages relocated by GC triggered by this write.
    pub relocated: Vec<(u64, u64)>,
    /// Blocks erased by GC triggered by this write.
    pub erased_blocks: Vec<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BlockInfo {
    /// Flat block index.
    index: usize,
    /// Valid (mapped) pages currently in the block.
    valid: u32,
    /// Next free page offset within the block; `pages_per_block` when full.
    write_ptr: u32,
    /// Number of times this block has been erased (wear).
    erase_count: u32,
}

/// Page-mapped flash translation layer.
///
/// # Example
///
/// ```
/// use hams_flash::{Ftl, FlashGeometry};
///
/// let mut ftl = Ftl::new(FlashGeometry::tiny(), 0.10);
/// let out = ftl.write(3).unwrap();
/// assert_eq!(ftl.lookup(3), Some(out.ppn));
/// assert_eq!(ftl.lookup(4), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ftl {
    geometry: FlashGeometry,
    /// Fraction of blocks held back as over-provisioning (not exported).
    over_provisioning: f64,
    map: FastHashMap<u64, u64>,
    reverse: FastHashMap<u64, u64>,
    blocks: Vec<BlockInfo>,
    /// Per-plane pools of fully-erased blocks.
    free_blocks: Vec<VecDeque<usize>>,
    /// Per-plane block currently being filled, if any.
    active_blocks: Vec<Option<usize>>,
    /// Round-robin cursor used to stripe consecutive writes across planes
    /// (and therefore across channels and dies).
    plane_cursor: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL over `geometry`, reserving `over_provisioning`
    /// (a fraction in `[0, 0.5]`) of blocks as GC headroom.
    ///
    /// # Panics
    ///
    /// Panics if `over_provisioning` is outside `[0.0, 0.5]`.
    #[must_use]
    pub fn new(geometry: FlashGeometry, over_provisioning: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&over_provisioning),
            "over-provisioning fraction must be in [0, 0.5]"
        );
        let total_blocks = geometry.total_blocks() as usize;
        let blocks = (0..total_blocks)
            .map(|index| BlockInfo {
                index,
                valid: 0,
                write_ptr: 0,
                erase_count: 0,
            })
            .collect();
        let planes = geometry.total_planes() as usize;
        let bpp = geometry.blocks_per_plane as usize;
        let mut free_blocks = vec![VecDeque::new(); planes];
        for b in 0..total_blocks {
            free_blocks[b / bpp].push_back(b);
        }
        Ftl {
            geometry,
            over_provisioning,
            map: FastHashMap::default(),
            reverse: FastHashMap::default(),
            blocks,
            free_blocks,
            active_blocks: vec![None; planes],
            plane_cursor: 0,
            stats: FtlStats::default(),
        }
    }

    /// The geometry this FTL manages.
    #[must_use]
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Number of logical pages exported to the host (total pages minus
    /// over-provisioned space).
    #[must_use]
    pub fn exported_pages(&self) -> u64 {
        let total = self.geometry.total_pages() as f64;
        (total * (1.0 - self.over_provisioning)) as u64
    }

    /// Exported capacity in bytes.
    #[must_use]
    pub fn exported_capacity_bytes(&self) -> u64 {
        self.exported_pages() * u64::from(self.geometry.page_size)
    }

    /// Accounting counters.
    #[must_use]
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Number of blocks currently in the free pool.
    #[must_use]
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.iter().map(VecDeque::len).sum::<usize>()
            + self.active_blocks.iter().filter(|b| b.is_some()).count()
    }

    /// Total number of erased blocks available for allocation.
    fn free_pool_len(&self) -> usize {
        self.free_blocks.iter().map(VecDeque::len).sum()
    }

    /// Maximum erase count across all blocks (wear indicator).
    #[must_use]
    pub fn max_erase_count(&self) -> u32 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Looks up the physical page currently mapped to `lpn`.
    #[must_use]
    pub fn lookup(&self, lpn: u64) -> Option<u64> {
        self.map.get(&lpn).copied()
    }

    /// Writes logical page `lpn` out-of-place, returning the new physical
    /// page and any garbage-collection work the write triggered.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for addresses beyond the exported
    /// capacity and [`FtlError::OutOfSpace`] if no free block can be found
    /// even after garbage collection.
    pub fn write(&mut self, lpn: u64) -> Result<WriteOutcome, FtlError> {
        if lpn >= self.exported_pages() {
            return Err(FtlError::LpnOutOfRange(lpn));
        }
        let mut outcome = WriteOutcome::default();

        // Reclaim space first if the free pool is nearly exhausted.
        if self.free_pool_len() < 2 {
            self.collect_garbage(&mut outcome)?;
        }

        // Invalidate the previous location, if any.
        if let Some(old_ppn) = self.map.remove(&lpn) {
            self.reverse.remove(&old_ppn);
            let block = self.block_of(old_ppn);
            self.blocks[block].valid = self.blocks[block].valid.saturating_sub(1);
        }

        let ppn = self.allocate_page(&mut outcome)?;
        self.map.insert(lpn, ppn);
        self.reverse.insert(ppn, lpn);
        let block = self.block_of(ppn);
        self.blocks[block].valid += 1;
        self.stats.host_writes += 1;
        self.stats.flash_writes += 1;
        outcome.ppn = ppn;
        Ok(outcome)
    }

    /// Discards the mapping for `lpn` (TRIM). Returns `true` if a mapping
    /// existed.
    pub fn trim(&mut self, lpn: u64) -> bool {
        if let Some(ppn) = self.map.remove(&lpn) {
            self.reverse.remove(&ppn);
            let block = self.block_of(ppn);
            self.blocks[block].valid = self.blocks[block].valid.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Every logical page with a live mapping, ascending. The rebuild
    /// planner uses this to regenerate exactly the rows a failed device had
    /// durably stored (sorted so the walk is deterministic whatever the hash
    /// map's iteration order).
    #[must_use]
    pub fn mapped_lpns(&self) -> Vec<u64> {
        let mut lpns: Vec<u64> = self.map.keys().copied().collect();
        lpns.sort_unstable();
        lpns
    }

    /// Fraction of exported pages currently mapped.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.map.len() as f64 / self.exported_pages() as f64
    }

    fn block_of(&self, ppn: u64) -> usize {
        let addr = self.geometry.decompose(ppn);
        let planes_before = (u64::from(addr.channel)
            + u64::from(self.geometry.channels)
                * (u64::from(addr.package)
                    + u64::from(self.geometry.packages_per_channel)
                        * (u64::from(addr.die)
                            + u64::from(self.geometry.dies_per_package) * u64::from(addr.plane))))
            as usize;
        // Flat block index: plane-major then block, consistent with ppn_of.
        planes_before * self.geometry.blocks_per_plane as usize + addr.block as usize
    }

    fn ppn_of(&self, block_index: usize, page_in_block: u32) -> u64 {
        let bpp = self.geometry.blocks_per_plane as usize;
        let plane_flat = (block_index / bpp) as u64;
        let block_in_plane = (block_index % bpp) as u64;
        // Invert the decompose() interleave: ppn = ((block*pages + page)*planes.. ) etc.
        // decompose: channel = ppn % C; then package, die, plane, page, block.
        let c = u64::from(self.geometry.channels);
        let pk = u64::from(self.geometry.packages_per_channel);
        let d = u64::from(self.geometry.dies_per_package);
        let pl = u64::from(self.geometry.planes_per_die);
        let ppb = u64::from(self.geometry.pages_per_block);
        let channel = plane_flat % c;
        let package = (plane_flat / c) % pk;
        let die = (plane_flat / (c * pk)) % d;
        let plane = (plane_flat / (c * pk * d)) % pl;
        let rest = block_in_plane * ppb + u64::from(page_in_block);
        (((rest * pl + plane) * d + die) * pk + package) * c + channel
    }

    /// Allocates the next physical page, striping consecutive allocations
    /// across planes so that back-to-back programs exploit channel- and
    /// die-level parallelism (the multi-channel/multi-way behaviour of
    /// Fig. 4a).
    fn allocate_page(&mut self, outcome: &mut WriteOutcome) -> Result<u64, FtlError> {
        let planes = self.active_blocks.len();
        loop {
            for offset in 0..planes {
                let plane = (self.plane_cursor + offset) % planes;
                if self.active_blocks[plane].is_none() {
                    self.active_blocks[plane] = self.free_blocks[plane].pop_front();
                }
                let Some(block_idx) = self.active_blocks[plane] else {
                    continue;
                };
                let write_ptr = self.blocks[block_idx].write_ptr;
                if write_ptr >= self.geometry.pages_per_block {
                    // Block filled up; retire it and try to open a fresh one.
                    self.active_blocks[plane] = self.free_blocks[plane].pop_front();
                    let Some(fresh) = self.active_blocks[plane] else {
                        continue;
                    };
                    let ptr = self.blocks[fresh].write_ptr;
                    self.blocks[fresh].write_ptr += 1;
                    self.plane_cursor = (plane + 1) % planes;
                    return Ok(self.ppn_of(fresh, ptr));
                }
                self.blocks[block_idx].write_ptr += 1;
                self.plane_cursor = (plane + 1) % planes;
                return Ok(self.ppn_of(block_idx, write_ptr));
            }
            // Every plane is out of erased blocks: reclaim and retry.
            let free_before = self.free_pool_len();
            self.collect_garbage(outcome)?;
            if self.free_pool_len() == free_before {
                return Err(FtlError::OutOfSpace);
            }
        }
    }

    /// Greedy garbage collection: relocate the valid pages of the block with
    /// the fewest valid pages, then erase it.
    fn collect_garbage(&mut self, outcome: &mut WriteOutcome) -> Result<(), FtlError> {
        let victim = self
            .blocks
            .iter()
            .filter(|b| {
                b.write_ptr == self.geometry.pages_per_block // fully written
                    && !self.active_blocks.contains(&Some(b.index))
            })
            .min_by_key(|b| b.valid)
            .map(|b| b.index);
        let Some(victim) = victim else {
            return Ok(()); // nothing eligible yet
        };
        self.stats.gc_runs += 1;

        // Relocate valid pages.
        let ppb = self.geometry.pages_per_block;
        for page in 0..ppb {
            let ppn = self.ppn_of(victim, page);
            if let Some(lpn) = self.reverse.remove(&ppn) {
                self.map.remove(&lpn);
                self.blocks[victim].valid = self.blocks[victim].valid.saturating_sub(1);
                let new_ppn = self.allocate_page(outcome)?;
                self.map.insert(lpn, new_ppn);
                self.reverse.insert(new_ppn, lpn);
                let nb = self.block_of(new_ppn);
                self.blocks[nb].valid += 1;
                self.stats.flash_writes += 1;
                self.stats.gc_relocations += 1;
                outcome.relocated.push((ppn, new_ppn));
            }
        }

        // Erase and return to the owning plane's free pool.
        self.blocks[victim].valid = 0;
        self.blocks[victim].write_ptr = 0;
        self.blocks[victim].erase_count += 1;
        self.stats.erases += 1;
        let plane = victim / self.geometry.blocks_per_plane as usize;
        self.free_blocks[plane].push_back(victim);
        outcome.erased_blocks.push(victim);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ftl() -> Ftl {
        Ftl::new(FlashGeometry::tiny(), 0.25)
    }

    #[test]
    fn write_then_lookup_round_trips() {
        let mut ftl = tiny_ftl();
        let a = ftl.write(10).unwrap();
        let b = ftl.write(11).unwrap();
        assert_ne!(a.ppn, b.ppn);
        assert_eq!(ftl.lookup(10), Some(a.ppn));
        assert_eq!(ftl.lookup(11), Some(b.ppn));
        assert_eq!(ftl.lookup(12), None);
    }

    #[test]
    fn overwrite_remaps_and_keeps_single_mapping() {
        let mut ftl = tiny_ftl();
        let first = ftl.write(5).unwrap().ppn;
        let second = ftl.write(5).unwrap().ppn;
        assert_ne!(first, second);
        assert_eq!(ftl.lookup(5), Some(second));
        assert_eq!(ftl.stats().host_writes, 2);
    }

    #[test]
    fn out_of_range_write_is_rejected() {
        let mut ftl = tiny_ftl();
        let too_big = ftl.exported_pages();
        assert_eq!(ftl.write(too_big), Err(FtlError::LpnOutOfRange(too_big)));
    }

    #[test]
    fn trim_removes_mapping() {
        let mut ftl = tiny_ftl();
        ftl.write(1).unwrap();
        assert!(ftl.trim(1));
        assert!(!ftl.trim(1));
        assert_eq!(ftl.lookup(1), None);
    }

    #[test]
    fn ppn_of_and_block_of_are_inverse() {
        let ftl = tiny_ftl();
        let g = *ftl.geometry();
        for block in 0..g.total_blocks() as usize {
            for page in [0, 1, g.pages_per_block - 1] {
                let ppn = ftl.ppn_of(block, page);
                assert!(ppn < g.total_pages(), "ppn {ppn} out of range");
                assert_eq!(ftl.block_of(ppn), block);
                let addr = g.decompose(ppn);
                assert_eq!(addr.page, page);
            }
        }
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_never_lose_mappings() {
        let mut ftl = tiny_ftl();
        let working_set = ftl.exported_pages() / 2;
        // Write the working set several times over: forces GC on tiny geometry.
        for round in 0..6 {
            for lpn in 0..working_set {
                ftl.write(lpn)
                    .unwrap_or_else(|e| panic!("round {round} lpn {lpn}: {e}"));
            }
        }
        assert!(ftl.stats().gc_runs > 0, "expected GC to run");
        assert!(ftl.stats().write_amplification() >= 1.0);
        // All logical pages still resolve, to distinct physical pages.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..working_set {
            let ppn = ftl.lookup(lpn).expect("mapping lost after GC");
            assert!(seen.insert(ppn), "two LPNs share ppn {ppn}");
        }
    }

    #[test]
    fn filling_every_exported_page_succeeds() {
        let mut ftl = tiny_ftl();
        for lpn in 0..ftl.exported_pages() {
            ftl.write(lpn).unwrap();
        }
        assert!(ftl.occupancy() > 0.99);
    }

    #[test]
    fn consecutive_writes_stripe_across_channels() {
        let mut ftl = tiny_ftl();
        let g = *ftl.geometry();
        let a = ftl.write(0).unwrap().ppn;
        let b = ftl.write(1).unwrap().ppn;
        assert_ne!(
            g.decompose(a).channel,
            g.decompose(b).channel,
            "back-to-back writes must land on different channels"
        );
    }

    #[test]
    fn write_amplification_is_one_without_gc() {
        let mut ftl = tiny_ftl();
        for lpn in 0..8 {
            ftl.write(lpn).unwrap();
        }
        assert!((ftl.stats().write_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = FtlStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        assert_eq!(s.erases, 0);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn silly_over_provisioning_panics() {
        let _ = Ftl::new(FlashGeometry::tiny(), 0.9);
    }
}
