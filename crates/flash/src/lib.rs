//! Z-NAND ULL-Flash SSD model: geometry, timing, firmware layers (HIL, FTL,
//! FIL), internal DRAM buffer and the assembled device.
//!
//! The paper's HAMS design treats the SSD as a managed archive behind the
//! NVDIMM cache; this crate supplies that archive, faithful to the structure
//! described in §II-C of the paper:
//!
//! * multi-channel / multi-way geometry with die- and plane-level parallelism
//!   ([`geometry`]),
//! * Z-NAND timing (3 µs read / 100 µs program) and conventional-NAND
//!   comparison points ([`timing`]),
//! * a page-mapped flash translation layer with greedy garbage collection
//!   ([`ftl`]),
//! * a flash interface layer that schedules operations onto channel/die
//!   resources, including the ULL-Flash half-page dual-channel striping
//!   ([`fil`]),
//! * the SSD-internal DRAM buffer that advanced HAMS removes ([`dram`]),
//! * the assembled NVMe-command-serving device ([`device`]),
//! * the multi-device topology layer: N archives behind one
//!   capacity-unified address space — striped RAID-0 style, rotating-parity
//!   RAID-5 style, capacity-summing concatenation, or attached over CXL
//!   ([`archive`]),
//! * fault injection and degraded-mode serving: fail-stop / transient
//!   device faults, parity reconstruction and paced rebuild ([`fault`]).
//!
//! # Example
//!
//! ```
//! use hams_flash::{SsdConfig, SsdDevice};
//! use hams_nvme::{NvmeCommand, PrpList};
//! use hams_sim::Nanos;
//!
//! let mut ull = SsdDevice::new(SsdConfig::tiny_for_tests());
//! let cmd = NvmeCommand::write(1, 0, 4096, PrpList::single(0x0));
//! let completion = ull.service(&cmd, Nanos::ZERO).unwrap();
//! assert!(completion.finished_at > Nanos::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod archive;
pub mod device;
pub mod dram;
pub mod fault;
pub mod fil;
pub mod ftl;
pub mod geometry;
pub mod timing;

pub use archive::{ArchiveSet, BackendTopology};
pub use device::{
    IoCompletion, PowerLossReport, SsdConfig, SsdDevice, SsdError, SsdStats, LBA_SIZE,
};
pub use dram::{DramOutcome, DramStats, InternalDram};
pub use fault::{
    ArrayState, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, Raid5Layout,
    RebuildConfig, RebuildSpan,
};
pub use fil::{Fil, FilCompletion};
pub use ftl::{Ftl, FtlError, FtlStats, WriteOutcome};
pub use geometry::{FlashGeometry, PhysicalPageAddr};
pub use timing::{FlashOp, NandTiming};
