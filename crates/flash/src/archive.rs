//! Multi-device archive backends: the [`ArchiveSet`] topology layer.
//!
//! The paper models HAMS with a single ULL-Flash archive behind the NVDIMM
//! cache. Production-scale serving wants more: a RAID-0 fan-out of several
//! archives so independent fills land on independent flash arrays, and a
//! CXL-attached variant whose fills cross a CXL link instead of PCIe/DDR4.
//! [`ArchiveSet`] owns N [`SsdDevice`]s behind one capacity-unified address
//! space and routes every NVMe command to the device owning its stripe;
//! [`BackendTopology`] selects the shape.
//!
//! Two contracts shape the design (both pinned by
//! `tests/backend_equivalence.rs`):
//!
//! * **Single is the old engine, byte for byte.** [`BackendTopology::single`]
//!   (and `Raid0 { devices: 1 }`) delegates every call straight to one
//!   [`SsdDevice`] — no stripe arithmetic on the path — so a single-device
//!   archive set is indistinguishable from the pre-topology engine.
//! * **Striping is a partition of one address space.** The set exposes the
//!   exported capacity of *one* archive and stripes that fixed LBA space
//!   across the devices with identity local addressing (device `d` serves
//!   global LBA `l` as its own LBA `l`). Every command therefore lands on
//!   exactly the device its stripe owns, and the per-device *byte* totals
//!   of a RAID-0 run sum to what a single device would have served for the
//!   same command stream — what RAID-0 buys is device-level parallelism
//!   (independent channels, dies and firmware), not a different workload.
//!   (Command *counts* are per-segment: a command crossing stripe
//!   boundaries counts once per device it touches, and a flush counts once
//!   per device it broadcasts to.)
//!
//! Stripe granularity is configurable. At MoS-page granularity a page's
//! fills and evictions land wholly on its owning device — mirroring how the
//! page's directory state lives in one tag-array bank — while LBA
//! granularity fans a multi-queue striped fill out across devices for
//! intra-fill parallelism (the `hams-TE-d{n}` sweep entries do this).

use hams_nvme::{NvmeCommand, NvmeOpcode};
use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::device::{
    IoCompletion, PowerLossReport, SsdConfig, SsdDevice, SsdError, SsdStats, LBA_SIZE,
};
use crate::dram::DramStats;

/// Shape of the archive backend behind the HAMS controller.
///
/// `stripe_bytes` of `0` means "resolve to the controller's MoS page size"
/// (see [`BackendTopology::resolved`]), which aligns device ownership with
/// the tag directory: one page, one bank, one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendTopology {
    /// One ULL-Flash archive — the paper's configuration and the pre-topology
    /// engine, byte for byte.
    Single,
    /// RAID-0 over `devices` archives: the exported LBA space is cut into
    /// `stripe_bytes` units assigned round-robin, so independent stripes are
    /// served by independent devices.
    Raid0 {
        /// Number of archives in the set (at least 1; 1 is `Single`).
        devices: u16,
        /// Stripe unit in bytes (multiple of 4 KB); `0` resolves to the MoS
        /// page size.
        stripe_bytes: u64,
    },
    /// The RAID-0 fan-out attached over a CXL link instead of the PCIe /
    /// DDR4 register interface: same stripe routing, but the controller
    /// moves pages (and submits commands) across the `hams_interconnect`
    /// CXL link model.
    CxlAttached {
        /// Number of archives in the set (at least 1).
        devices: u16,
        /// Stripe unit in bytes (multiple of 4 KB); `0` resolves to the MoS
        /// page size.
        stripe_bytes: u64,
    },
}

impl BackendTopology {
    /// The single-archive backend — the original engine.
    #[must_use]
    pub fn single() -> Self {
        BackendTopology::Single
    }

    /// RAID-0 over `devices` archives with MoS-page stripe granularity.
    #[must_use]
    pub fn raid0(devices: u16) -> Self {
        BackendTopology::Raid0 {
            devices: devices.max(1),
            stripe_bytes: 0,
        }
    }

    /// RAID-0 over `devices` archives with an explicit stripe unit.
    #[must_use]
    pub fn raid0_striped(devices: u16, stripe_bytes: u64) -> Self {
        BackendTopology::Raid0 {
            devices: devices.max(1),
            stripe_bytes,
        }
    }

    /// CXL-attached fan-out over `devices` archives with an explicit stripe
    /// unit (`0` = MoS page granularity).
    #[must_use]
    pub fn cxl(devices: u16, stripe_bytes: u64) -> Self {
        BackendTopology::CxlAttached {
            devices: devices.max(1),
            stripe_bytes,
        }
    }

    /// Number of devices in the set.
    #[must_use]
    pub fn device_count(&self) -> u16 {
        match self {
            BackendTopology::Single => 1,
            BackendTopology::Raid0 { devices, .. }
            | BackendTopology::CxlAttached { devices, .. } => (*devices).max(1),
        }
    }

    /// The configured stripe unit (`0` = resolve to the MoS page size).
    #[must_use]
    pub fn stripe_bytes(&self) -> u64 {
        match self {
            BackendTopology::Single => 0,
            BackendTopology::Raid0 { stripe_bytes, .. }
            | BackendTopology::CxlAttached { stripe_bytes, .. } => *stripe_bytes,
        }
    }

    /// Whether fills cross the CXL link instead of the attach-mode interface.
    #[must_use]
    pub fn uses_cxl(&self) -> bool {
        matches!(self, BackendTopology::CxlAttached { .. })
    }

    /// The topology with a zero stripe unit resolved to `mos_page_size`.
    #[must_use]
    pub fn resolved(&self, mos_page_size: u64) -> Self {
        let resolve = |s: u64| if s == 0 { mos_page_size } else { s };
        match *self {
            BackendTopology::Single => BackendTopology::Single,
            BackendTopology::Raid0 {
                devices,
                stripe_bytes,
            } => BackendTopology::Raid0 {
                devices,
                stripe_bytes: resolve(stripe_bytes),
            },
            BackendTopology::CxlAttached {
                devices,
                stripe_bytes,
            } => BackendTopology::CxlAttached {
                devices,
                stripe_bytes: resolve(stripe_bytes),
            },
        }
    }

    /// Backend topology requested through the `HAMS_DEVICES` environment
    /// variable, if set — the CI matrix lever, mirroring `HAMS_SHARDS` for
    /// the tag directory. `HAMS_DEVICES=1` is the single backend;
    /// `HAMS_DEVICES=n` for `n > 1` is RAID-0 at MoS-page stripe
    /// granularity. Unlike the shard override, the device count legitimately
    /// changes simulated timing, so the golden suites keep one snapshot per
    /// device count.
    ///
    /// # Panics
    ///
    /// Panics if `HAMS_DEVICES` is set but not a positive `u16` — a silent
    /// fallback would let a CI leg report the multi-device matrix green
    /// without ever building a multi-device archive.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("HAMS_DEVICES").ok()?;
        let count = raw
            .trim()
            .parse::<u16>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                panic!("HAMS_DEVICES must be a positive integer up to 65535, got {raw:?}")
            });
        Some(if count == 1 {
            BackendTopology::Single
        } else {
            BackendTopology::raid0(count)
        })
    }
}

impl Default for BackendTopology {
    fn default() -> Self {
        Self::single()
    }
}

/// N archives behind one capacity-unified LBA space.
///
/// # Example
///
/// ```
/// use hams_flash::{ArchiveSet, BackendTopology, SsdConfig, LBA_SIZE};
/// use hams_nvme::{NvmeCommand, PrpList};
/// use hams_sim::Nanos;
///
/// let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
/// let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
/// assert_eq!(set.num_devices(), 2);
/// // LBA 0 lives on device 0, LBA 1 on device 1.
/// assert_eq!(set.device_of_slba(0), 0);
/// assert_eq!(set.device_of_slba(1), 1);
/// let write = NvmeCommand::write(1, 1, 4096, PrpList::single(0)).with_fua(true);
/// set.service(&write, Nanos::ZERO).unwrap();
/// assert_eq!(set.device(1).stats().write_commands, 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchiveSet {
    topology: BackendTopology,
    stripe_lbas: u64,
    devices: Vec<SsdDevice>,
}

impl ArchiveSet {
    /// Builds the set described by `topology`, every device from the same
    /// `config`; a zero stripe unit resolves to `mos_page_size`.
    ///
    /// # Panics
    ///
    /// Panics if the resolved stripe unit is not a positive multiple of the
    /// 4 KB LBA size — a finer stripe cannot be addressed, and a misaligned
    /// one would split flash pages across devices.
    #[must_use]
    pub fn new(config: SsdConfig, topology: BackendTopology, mos_page_size: u64) -> Self {
        let topology = topology.resolved(mos_page_size.max(LBA_SIZE));
        let stripe_bytes = match topology {
            BackendTopology::Single => mos_page_size.max(LBA_SIZE),
            t => t.stripe_bytes(),
        };
        assert!(
            stripe_bytes >= LBA_SIZE && stripe_bytes.is_multiple_of(LBA_SIZE),
            "stripe unit must be a positive multiple of the {LBA_SIZE}-byte LBA, \
             got {stripe_bytes}"
        );
        let count = usize::from(topology.device_count());
        ArchiveSet {
            topology,
            stripe_lbas: stripe_bytes / LBA_SIZE,
            devices: (0..count).map(|_| SsdDevice::new(config)).collect(),
        }
    }

    /// A single-archive set — the original engine, byte for byte.
    #[must_use]
    pub fn single(config: SsdConfig) -> Self {
        Self::new(config, BackendTopology::Single, LBA_SIZE)
    }

    /// The topology in force (stripe unit resolved).
    #[must_use]
    pub fn topology(&self) -> BackendTopology {
        self.topology
    }

    /// Number of devices in the set.
    #[must_use]
    pub fn num_devices(&self) -> u16 {
        self.devices.len() as u16
    }

    /// Stripe unit in LBAs.
    #[must_use]
    pub fn stripe_lbas(&self) -> u64 {
        self.stripe_lbas
    }

    /// The shared per-device configuration.
    #[must_use]
    pub fn config(&self) -> &SsdConfig {
        self.devices[0].config()
    }

    /// Exported capacity of the unified address space: the capacity of one
    /// archive. RAID-0 here trades the extra devices' capacity for
    /// parallelism at a fixed address space — which is what keeps a
    /// multi-device run's command stream identical to the single-device one
    /// and lets per-device stats sum to the single-device totals.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.devices[0].capacity_bytes()
    }

    /// Device `index` of the set.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn device(&self, index: u16) -> &SsdDevice {
        &self.devices[usize::from(index)]
    }

    /// Every device in the set, in device order.
    #[must_use]
    pub fn devices(&self) -> &[SsdDevice] {
        &self.devices
    }

    /// The first device — the whole set under [`BackendTopology::Single`].
    #[must_use]
    pub fn primary(&self) -> &SsdDevice {
        &self.devices[0]
    }

    /// The device owning the stripe that starts at LBA `slba`.
    #[must_use]
    pub fn device_of_slba(&self, slba: u64) -> u16 {
        if self.devices.len() <= 1 {
            0
        } else {
            ((slba / self.stripe_lbas) % self.devices.len() as u64) as u16
        }
    }

    /// Whether the devices carry an internal DRAM buffer.
    #[must_use]
    pub fn has_internal_dram(&self) -> bool {
        self.devices[0].has_internal_dram()
    }

    /// Aggregate device accounting across the set. Byte totals sum exactly
    /// over [`Self::device_stats`] to what one device would have served;
    /// command counts are per-segment (boundary-splitting and flush
    /// broadcast count once per device touched).
    #[must_use]
    pub fn stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for device in &self.devices {
            let s = device.stats();
            total.read_commands += s.read_commands;
            total.write_commands += s.write_commands;
            total.flush_commands += s.flush_commands;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.page_programs += s.page_programs;
            total.page_reads += s.page_reads;
        }
        total
    }

    /// Per-device accounting, in device order.
    #[must_use]
    pub fn device_stats(&self) -> Vec<SsdStats> {
        self.devices.iter().map(|d| *d.stats()).collect()
    }

    /// Aggregate internal-DRAM accounting across the set.
    #[must_use]
    pub fn dram_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for device in &self.devices {
            let s = device.dram_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.dirty_evictions += s.dirty_evictions;
            total.accesses += s.accesses;
        }
        total
    }

    /// Services an NVMe command issued at `now`, routing it to the device
    /// owning its stripe. A command that crosses stripe boundaries is split
    /// into per-device segments (the HAMS controller never issues one when
    /// the stripe unit is the MoS page size or a striped fill's command
    /// length); a flush broadcasts to every device.
    ///
    /// # Errors
    ///
    /// Propagates [`SsdError`] from the owning device(s).
    pub fn service(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        self.service_impl(cmd, now, cmd.fua)
    }

    /// [`Self::service`] with the force-unit-access bit treated as set on
    /// the borrowed command. Power-failure recovery re-issues every
    /// journal-tagged command with FUA so the recovered data is durable even
    /// on a device with a volatile buffer; this entry point does that
    /// without cloning each command (and its PRP list) just to flip the
    /// bit. Timing is exactly `service` of the same command with
    /// `fua = true`.
    ///
    /// # Errors
    ///
    /// Propagates [`SsdError`] from the owning device(s).
    pub fn service_fua(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        self.service_impl(cmd, now, true)
    }

    fn service_impl(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        let serve = |device: &mut SsdDevice, cmd: &NvmeCommand, now| {
            if fua {
                device.service_forcing_fua(cmd, now)
            } else {
                device.service(cmd, now)
            }
        };
        if self.devices.len() == 1 {
            return serve(&mut self.devices[0], cmd, now);
        }
        if cmd.opcode == NvmeOpcode::Flush {
            return self.broadcast_flush(cmd, now);
        }
        if cmd.length == 0 {
            let device = usize::from(self.device_of_slba(cmd.slba));
            return serve(&mut self.devices[device], cmd, now);
        }

        let stripe_bytes = self.stripe_lbas * LBA_SIZE;
        let start = cmd.slba * LBA_SIZE;
        let end = start + cmd.length;
        let mut merged: Option<IoCompletion> = None;
        let mut offset = start;
        while offset < end {
            let stripe_end = (offset / stripe_bytes + 1) * stripe_bytes;
            let segment_end = end.min(stripe_end);
            let device = usize::from(self.device_of_slba(offset / LBA_SIZE));
            let mut segment = cmd.clone();
            segment.slba = offset / LBA_SIZE;
            segment.length = segment_end - offset;
            let completion = serve(&mut self.devices[device], &segment, now)?;
            merged = Some(merge_completion(merged, completion));
            offset = segment_end;
        }
        Ok(merged.expect("non-empty command produced at least one segment"))
    }

    fn broadcast_flush(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        let mut merged: Option<IoCompletion> = None;
        for device in &mut self.devices {
            let completion = device.service(cmd, now)?;
            merged = Some(merge_completion(merged, completion));
        }
        Ok(merged.expect("archive set holds at least one device"))
    }

    /// Whether logical flash page `lpn` is durably stored on the device
    /// owning its stripe (identity local addressing: the global and
    /// per-device page numbers coincide).
    #[must_use]
    pub fn is_durable(&self, lpn: u64) -> bool {
        let page = u64::from(self.config().geometry.page_size);
        let device = usize::from(self.device_of_slba(lpn * page / LBA_SIZE));
        self.devices[device].is_durable(lpn)
    }

    /// Injects a power failure at `now` into every device and merges the
    /// reports: pages concatenate in (device, page) order, the flush time is
    /// the slowest device's. A single-device set delegates, byte for byte.
    pub fn power_fail(&mut self, now: Nanos) -> PowerLossReport {
        if self.devices.len() == 1 {
            return self.devices[0].power_fail(now);
        }
        let mut merged = PowerLossReport {
            flushed_pages: Vec::new(),
            lost_pages: Vec::new(),
            flush_time: Nanos::ZERO,
        };
        for device in &mut self.devices {
            let report = device.power_fail(now);
            merged.flushed_pages.extend(report.flushed_pages);
            merged.lost_pages.extend(report.lost_pages);
            merged.flush_time = merged.flush_time.max(report.flush_time);
        }
        merged.flushed_pages.sort_unstable();
        merged.lost_pages.sort_unstable();
        merged
    }
}

/// Folds one more per-device completion into a command-level aggregate:
/// the command finishes when its slowest segment does, latency components
/// and sub-request counts add, and it is buffer-served only if every
/// segment was.
fn merge_completion(acc: Option<IoCompletion>, next: IoCompletion) -> IoCompletion {
    match acc {
        None => next,
        Some(mut acc) => {
            acc.finished_at = acc.finished_at.max(next.finished_at);
            acc.breakdown.merge(&next.breakdown);
            acc.sub_requests += next.sub_requests;
            acc.served_from_dram &= next.served_from_dram;
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_nvme::PrpList;

    fn read_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::read(1, slba, length, PrpList::single(0x1000))
    }

    fn write_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::write(1, slba, length, PrpList::single(0x1000))
    }

    #[test]
    fn single_topology_is_byte_identical_to_a_bare_device() {
        let config = SsdConfig::tiny_for_tests();
        let mut bare = SsdDevice::new(config);
        let mut set = ArchiveSet::single(config);
        let mut raid1 = ArchiveSet::new(config, BackendTopology::raid0(1), 4096);
        let mut now = Nanos::ZERO;
        for i in 0..48u64 {
            let cmd = if i % 3 == 0 {
                write_cmd(i % 16, 4096).with_fua(i % 6 == 0)
            } else {
                read_cmd(i % 16, 4096)
            };
            let a = bare.service(&cmd, now).unwrap();
            let b = set.service(&cmd, now).unwrap();
            let c = raid1.service(&cmd, now).unwrap();
            assert_eq!(a, b, "Single diverged from the bare device");
            assert_eq!(a, c, "Raid0 {{ devices: 1 }} diverged from the bare device");
            now = a.finished_at;
        }
        assert_eq!(bare.stats(), &set.stats());
        assert_eq!(bare.stats(), &raid1.stats());
        assert_eq!(set.capacity_bytes(), bare.capacity_bytes());
    }

    #[test]
    fn raid0_routes_whole_stripes_to_their_owning_device() {
        let topology = BackendTopology::raid0_striped(4, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        for slba in 0..8u64 {
            set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
            assert_eq!(set.device_of_slba(slba), (slba % 4) as u16);
        }
        for d in 0..4u16 {
            assert_eq!(
                set.device(d).stats().write_commands,
                2,
                "device {d} should own exactly two of the eight stripes"
            );
        }
        // Per-device stats sum to the totals one device would have served.
        let total = set.stats();
        assert_eq!(total.write_commands, 8);
        assert_eq!(total.bytes_written, 8 * 4096);
    }

    #[test]
    fn commands_crossing_stripe_boundaries_split_and_sum() {
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        // 16 KB starting at LBA 0 covers stripes 0..4 → devices 0,1,0,1.
        let done = set
            .service(&write_cmd(0, 16 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(done.sub_requests, 4);
        assert_eq!(set.device(0).stats().bytes_written, 8192);
        assert_eq!(set.device(1).stats().bytes_written, 8192);
        assert_eq!(set.stats().bytes_written, 16 * 1024);
        assert!(set.is_durable(0) && set.is_durable(1) && set.is_durable(3));
    }

    #[test]
    fn page_granularity_stripes_keep_a_mos_page_on_one_device() {
        // 32 KB MoS pages: stripe 0 resolves to the page size.
        let mut set = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::raid0(2),
            32 * 1024,
        );
        assert_eq!(set.stripe_lbas(), 8);
        let done = set
            .service(&write_cmd(0, 32 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(done.sub_requests, 8, "one device served the whole page");
        assert_eq!(set.device(0).stats().write_commands, 1);
        assert_eq!(set.device(1).stats().write_commands, 0);
        // The next page lands on the other device.
        set.service(&write_cmd(8, 32 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(set.device(1).stats().write_commands, 1);
    }

    #[test]
    fn concurrent_reads_on_different_devices_do_not_contend() {
        let config = SsdConfig::tiny_for_tests();
        let mut single = ArchiveSet::single(config);
        let mut raid = ArchiveSet::new(config, BackendTopology::raid0_striped(4, LBA_SIZE), 4096);
        for set in [&mut single, &mut raid] {
            for slba in 0..8u64 {
                set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                    .unwrap();
            }
        }
        // Issue 8 reads at the same instant: the RAID set spreads them over
        // four devices' channels, so its slowest completion beats the single
        // device's.
        let t0 = Nanos::from_millis(10);
        let worst = |set: &mut ArchiveSet| {
            let mut worst = Nanos::ZERO;
            for slba in 0..8u64 {
                let done = set.service(&read_cmd(slba, 4096), t0).unwrap();
                worst = worst.max(done.finished_at);
            }
            worst
        };
        let single_worst = worst(&mut single);
        let raid_worst = worst(&mut raid);
        assert!(
            raid_worst < single_worst,
            "RAID-0 burst ({raid_worst}) must beat the single device ({single_worst})"
        );
    }

    #[test]
    fn flush_broadcasts_to_every_device() {
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        set.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        set.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        assert!(!set.is_durable(0) && !set.is_durable(1));
        set.service(&NvmeCommand::flush(1), Nanos::from_micros(10))
            .unwrap();
        assert!(set.is_durable(0) && set.is_durable(1));
        assert_eq!(set.stats().flush_commands, 2);
    }

    #[test]
    fn power_fail_merges_per_device_reports() {
        let mut config = SsdConfig::tiny_for_tests();
        config.supercap_backed = true;
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(config, topology, 4096);
        set.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        set.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        let report = set.power_fail(Nanos::from_micros(50));
        assert_eq!(report.flushed_pages, vec![0, 1]);
        assert!(report.lost_pages.is_empty());
        assert!(report.flush_time > Nanos::ZERO);
        assert!(set.is_durable(0) && set.is_durable(1));
    }

    #[test]
    fn topology_helpers_normalise_and_resolve() {
        assert_eq!(BackendTopology::raid0(0).device_count(), 1);
        assert_eq!(BackendTopology::single().device_count(), 1);
        assert!(!BackendTopology::raid0(4).uses_cxl());
        assert!(BackendTopology::cxl(4, LBA_SIZE).uses_cxl());
        let resolved = BackendTopology::raid0(4).resolved(32 * 1024);
        assert_eq!(resolved.stripe_bytes(), 32 * 1024);
        let pinned = BackendTopology::raid0_striped(4, LBA_SIZE).resolved(32 * 1024);
        assert_eq!(pinned.stripe_bytes(), LBA_SIZE);
        assert_eq!(BackendTopology::default(), BackendTopology::single());
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn misaligned_stripe_units_panic() {
        let _ = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::raid0_striped(2, 1000),
            4096,
        );
    }

    #[test]
    fn cxl_topology_builds_a_striped_set() {
        let set = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::cxl(3, LBA_SIZE),
            4096,
        );
        assert_eq!(set.num_devices(), 3);
        assert!(set.topology().uses_cxl());
    }
}
