//! Multi-device archive backends: the [`ArchiveSet`] topology layer.
//!
//! The paper models HAMS with a single ULL-Flash archive behind the NVDIMM
//! cache. Production-scale serving wants more: a RAID-0 fan-out of several
//! archives so independent fills land on independent flash arrays, and a
//! CXL-attached variant whose fills cross a CXL link instead of PCIe/DDR4.
//! [`ArchiveSet`] owns N [`SsdDevice`]s behind one capacity-unified address
//! space and routes every NVMe command to the device owning its stripe;
//! [`BackendTopology`] selects the shape.
//!
//! Two contracts shape the design (both pinned by
//! `tests/backend_equivalence.rs`):
//!
//! * **Single is the old engine, byte for byte.** [`BackendTopology::single`]
//!   (and `Raid0 { devices: 1 }`) delegates every call straight to one
//!   [`SsdDevice`] — no stripe arithmetic on the path — so a single-device
//!   archive set is indistinguishable from the pre-topology engine.
//! * **Striping is a partition of one address space.** The set exposes the
//!   exported capacity of *one* archive and stripes that fixed LBA space
//!   across the devices with identity local addressing (device `d` serves
//!   global LBA `l` as its own LBA `l`). Every command therefore lands on
//!   exactly the device its stripe owns, and the per-device *byte* totals
//!   of a RAID-0 run sum to what a single device would have served for the
//!   same command stream — what RAID-0 buys is device-level parallelism
//!   (independent channels, dies and firmware), not a different workload.
//!   (Command *counts* are per-segment: a command crossing stripe
//!   boundaries counts once per device it touches, and a flush counts once
//!   per device it broadcasts to.)
//!
//! Stripe granularity is configurable. At MoS-page granularity a page's
//! fills and evictions land wholly on its owning device — mirroring how the
//! page's directory state lives in one tag-array bank — while LBA
//! granularity fans a multi-queue striped fill out across devices for
//! intra-fill parallelism (the `hams-TE-d{n}` sweep entries do this).

use hams_nvme::{NvmeCommand, NvmeOpcode};
use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::device::{
    IoCompletion, PowerLossReport, SsdConfig, SsdDevice, SsdError, SsdStats, LBA_SIZE,
};
use crate::dram::DramStats;
use crate::fault::{ArrayState, FaultInjector, FaultKind, FaultPlan, FaultStats, RebuildSpan};

/// Shape of the archive backend behind the HAMS controller.
///
/// `stripe_bytes` of `0` means "resolve to the controller's MoS page size"
/// (see [`BackendTopology::resolved`]), which aligns device ownership with
/// the tag directory: one page, one bank, one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendTopology {
    /// One ULL-Flash archive — the paper's configuration and the pre-topology
    /// engine, byte for byte.
    Single,
    /// RAID-0 over `devices` archives: the exported LBA space is cut into
    /// `stripe_bytes` units assigned round-robin, so independent stripes are
    /// served by independent devices.
    Raid0 {
        /// Number of archives in the set (at least 1; 1 is `Single`).
        devices: u16,
        /// Stripe unit in bytes (multiple of 4 KB); `0` resolves to the MoS
        /// page size.
        stripe_bytes: u64,
    },
    /// The RAID-0 fan-out attached over a CXL link instead of the PCIe /
    /// DDR4 register interface: same stripe routing, but the controller
    /// moves pages (and submits commands) across the `hams_interconnect`
    /// CXL link model.
    CxlAttached {
        /// Number of archives in the set (at least 1).
        devices: u16,
        /// Stripe unit in bytes (multiple of 4 KB); `0` resolves to the MoS
        /// page size.
        stripe_bytes: u64,
    },
    /// RAID-5 style rotating parity over `devices` archives. Data placement
    /// is identical to `Raid0` — stripe `s` on device `s % N` — which is
    /// what keeps a fault-free parity array metrics-byte-identical to
    /// striping: parity lives in the devices' reserved over-provisioned
    /// region (mirrored into a supercap-backed parity log) and is destaged
    /// in idle time, never through the serviced command stream. The parity
    /// only materialises as device traffic when a fault plan is installed:
    /// degraded reads reconstruct from the `N − 1` survivors plus XOR, and
    /// rebuild regenerates the lost device row by row (see
    /// [`crate::fault`]).
    Raid5 {
        /// Number of archives in the set (at least 2 — single parity needs
        /// a survivor).
        devices: u16,
        /// Stripe unit in bytes (multiple of 4 KB); `0` resolves to the MoS
        /// page size.
        stripe_bytes: u64,
    },
    /// Capacity-summing concatenation (JBOD): device `d` owns the `d`-th
    /// contiguous slice of the exported space, so routing is by range and
    /// the exported capacity is the *sum* of the devices' — the only
    /// topology that trades parallelism for capacity. Internally the range
    /// map is a degenerate stripe map whose unit is one whole device, which
    /// is why the routing, splitting and accounting paths are shared with
    /// RAID-0 verbatim.
    Concat {
        /// Number of archives in the set (at least 1).
        devices: u16,
    },
}

impl BackendTopology {
    /// The single-archive backend — the original engine.
    #[must_use]
    pub fn single() -> Self {
        BackendTopology::Single
    }

    /// RAID-0 over `devices` archives with MoS-page stripe granularity.
    #[must_use]
    pub fn raid0(devices: u16) -> Self {
        BackendTopology::Raid0 {
            devices: devices.max(1),
            stripe_bytes: 0,
        }
    }

    /// RAID-0 over `devices` archives with an explicit stripe unit.
    #[must_use]
    pub fn raid0_striped(devices: u16, stripe_bytes: u64) -> Self {
        BackendTopology::Raid0 {
            devices: devices.max(1),
            stripe_bytes,
        }
    }

    /// CXL-attached fan-out over `devices` archives with an explicit stripe
    /// unit (`0` = MoS page granularity).
    #[must_use]
    pub fn cxl(devices: u16, stripe_bytes: u64) -> Self {
        BackendTopology::CxlAttached {
            devices: devices.max(1),
            stripe_bytes,
        }
    }

    /// Rotating-parity RAID-5 over `devices` archives with MoS-page stripe
    /// granularity.
    #[must_use]
    pub fn raid5(devices: u16) -> Self {
        BackendTopology::Raid5 {
            devices: devices.max(2),
            stripe_bytes: 0,
        }
    }

    /// Rotating-parity RAID-5 over `devices` archives with an explicit
    /// stripe unit.
    #[must_use]
    pub fn raid5_striped(devices: u16, stripe_bytes: u64) -> Self {
        BackendTopology::Raid5 {
            devices: devices.max(2),
            stripe_bytes,
        }
    }

    /// Capacity-summing concatenation over `devices` archives.
    #[must_use]
    pub fn concat(devices: u16) -> Self {
        BackendTopology::Concat {
            devices: devices.max(1),
        }
    }

    /// Number of devices in the set.
    #[must_use]
    pub fn device_count(&self) -> u16 {
        match self {
            BackendTopology::Single => 1,
            BackendTopology::Raid0 { devices, .. }
            | BackendTopology::CxlAttached { devices, .. }
            | BackendTopology::Concat { devices } => (*devices).max(1),
            BackendTopology::Raid5 { devices, .. } => (*devices).max(2),
        }
    }

    /// The configured stripe unit (`0` = resolve to the MoS page size;
    /// `Concat`'s unit is derived from the per-device capacity at build
    /// time, so it reports `0` here).
    #[must_use]
    pub fn stripe_bytes(&self) -> u64 {
        match self {
            BackendTopology::Single | BackendTopology::Concat { .. } => 0,
            BackendTopology::Raid0 { stripe_bytes, .. }
            | BackendTopology::CxlAttached { stripe_bytes, .. }
            | BackendTopology::Raid5 { stripe_bytes, .. } => *stripe_bytes,
        }
    }

    /// Whether fills cross the CXL link instead of the attach-mode interface.
    #[must_use]
    pub fn uses_cxl(&self) -> bool {
        matches!(self, BackendTopology::CxlAttached { .. })
    }

    /// Whether the topology keeps rotating parity, making degraded reads
    /// reconstructible — the prerequisite for installing a fault plan.
    #[must_use]
    pub fn has_parity(&self) -> bool {
        matches!(self, BackendTopology::Raid5 { .. })
    }

    /// The topology with a zero stripe unit resolved to `mos_page_size`.
    #[must_use]
    pub fn resolved(&self, mos_page_size: u64) -> Self {
        let resolve = |s: u64| if s == 0 { mos_page_size } else { s };
        match *self {
            BackendTopology::Single => BackendTopology::Single,
            BackendTopology::Raid0 {
                devices,
                stripe_bytes,
            } => BackendTopology::Raid0 {
                devices,
                stripe_bytes: resolve(stripe_bytes),
            },
            BackendTopology::CxlAttached {
                devices,
                stripe_bytes,
            } => BackendTopology::CxlAttached {
                devices,
                stripe_bytes: resolve(stripe_bytes),
            },
            BackendTopology::Raid5 {
                devices,
                stripe_bytes,
            } => BackendTopology::Raid5 {
                devices,
                stripe_bytes: resolve(stripe_bytes),
            },
            BackendTopology::Concat { devices } => BackendTopology::Concat { devices },
        }
    }

    /// Backend topology requested through the `HAMS_DEVICES` environment
    /// variable, if set — the CI matrix lever, mirroring `HAMS_SHARDS` for
    /// the tag directory. `HAMS_DEVICES=1` is the single backend;
    /// `HAMS_DEVICES=n` for `n > 1` is RAID-0 at MoS-page stripe
    /// granularity. Unlike the shard override, the device count legitimately
    /// changes simulated timing, so the golden suites keep one snapshot per
    /// device count.
    ///
    /// # Panics
    ///
    /// Panics if `HAMS_DEVICES` is set but not a positive `u16` — a silent
    /// fallback would let a CI leg report the multi-device matrix green
    /// without ever building a multi-device archive.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("HAMS_DEVICES").ok()?;
        let count = raw
            .trim()
            .parse::<u16>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                panic!("HAMS_DEVICES must be a positive integer up to 65535, got {raw:?}")
            });
        Some(if count == 1 {
            BackendTopology::Single
        } else {
            BackendTopology::raid0(count)
        })
    }
}

impl Default for BackendTopology {
    fn default() -> Self {
        Self::single()
    }
}

/// N archives behind one capacity-unified LBA space.
///
/// # Example
///
/// ```
/// use hams_flash::{ArchiveSet, BackendTopology, SsdConfig, LBA_SIZE};
/// use hams_nvme::{NvmeCommand, PrpList};
/// use hams_sim::Nanos;
///
/// let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
/// let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
/// assert_eq!(set.num_devices(), 2);
/// // LBA 0 lives on device 0, LBA 1 on device 1.
/// assert_eq!(set.device_of_slba(0), 0);
/// assert_eq!(set.device_of_slba(1), 1);
/// let write = NvmeCommand::write(1, 1, 4096, PrpList::single(0)).with_fua(true);
/// set.service(&write, Nanos::ZERO).unwrap();
/// assert_eq!(set.device(1).stats().write_commands, 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchiveSet {
    topology: BackendTopology,
    stripe_lbas: u64,
    devices: Vec<SsdDevice>,
    /// Installed by [`Self::set_fault_plan`]; `None` (the default) keeps
    /// every service path byte-identical to the pre-fault-injection layer.
    fault: Option<FaultInjector>,
}

impl ArchiveSet {
    /// Builds the set described by `topology`, every device from the same
    /// `config`; a zero stripe unit resolves to `mos_page_size`.
    ///
    /// # Panics
    ///
    /// Panics if the resolved stripe unit is not a positive multiple of the
    /// 4 KB LBA size — a finer stripe cannot be addressed, and a misaligned
    /// one would split flash pages across devices.
    #[must_use]
    pub fn new(config: SsdConfig, topology: BackendTopology, mos_page_size: u64) -> Self {
        let count = usize::from(topology.device_count());
        Self::new_heterogeneous(vec![config; count], topology, mos_page_size)
    }

    /// Builds a mixed-generation set: one [`SsdConfig`] per device (timing,
    /// internal DRAM, supercap and firmware knobs may differ), behind the
    /// same unified address space. A uniform config vector builds the exact
    /// array [`Self::new`] builds — pinned byte-for-byte by
    /// `tests/fault_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` does not match the topology's device count, if
    /// the devices disagree on geometry or exported capacity (identity
    /// local addressing and the range map both need one uniform page space),
    /// or if the resolved stripe unit is not a positive multiple of the
    /// 4 KB LBA size.
    #[must_use]
    pub fn new_heterogeneous(
        configs: Vec<SsdConfig>,
        topology: BackendTopology,
        mos_page_size: u64,
    ) -> Self {
        let topology = topology.resolved(mos_page_size.max(LBA_SIZE));
        let count = usize::from(topology.device_count());
        assert_eq!(
            configs.len(),
            count,
            "heterogeneous archive set needs one config per device"
        );
        let devices: Vec<SsdDevice> = configs.into_iter().map(SsdDevice::new).collect();
        for device in &devices[1..] {
            assert_eq!(
                device.config().geometry,
                devices[0].config().geometry,
                "archive-set devices must share one flash geometry"
            );
            assert_eq!(
                device.capacity_bytes(),
                devices[0].capacity_bytes(),
                "archive-set devices must export one capacity"
            );
        }
        let stripe_bytes = match topology {
            BackendTopology::Single => mos_page_size.max(LBA_SIZE),
            // The range map is a degenerate stripe map whose unit is one
            // whole device: `(slba / unit) % N` *is* range routing when the
            // unit is the per-device capacity.
            BackendTopology::Concat { .. } => devices[0].capacity_bytes(),
            t => t.stripe_bytes(),
        };
        assert!(
            stripe_bytes >= LBA_SIZE && stripe_bytes.is_multiple_of(LBA_SIZE),
            "stripe unit must be a positive multiple of the {LBA_SIZE}-byte LBA, \
             got {stripe_bytes}"
        );
        ArchiveSet {
            topology,
            stripe_lbas: stripe_bytes / LBA_SIZE,
            devices,
            fault: None,
        }
    }

    /// A single-archive set — the original engine, byte for byte.
    #[must_use]
    pub fn single(config: SsdConfig) -> Self {
        Self::new(config, BackendTopology::Single, LBA_SIZE)
    }

    /// The topology in force (stripe unit resolved).
    #[must_use]
    pub fn topology(&self) -> BackendTopology {
        self.topology
    }

    /// Number of devices in the set.
    #[must_use]
    pub fn num_devices(&self) -> u16 {
        self.devices.len() as u16
    }

    /// Stripe unit in LBAs.
    #[must_use]
    pub fn stripe_lbas(&self) -> u64 {
        self.stripe_lbas
    }

    /// The shared per-device configuration.
    #[must_use]
    pub fn config(&self) -> &SsdConfig {
        self.devices[0].config()
    }

    /// Exported capacity of the unified address space. Striped topologies
    /// export the capacity of one archive — RAID-0/5 trade the extra
    /// devices' capacity for parallelism (or parity) at a fixed address
    /// space, which is what keeps a multi-device run's command stream
    /// identical to the single-device one and lets per-device stats sum to
    /// the single-device totals. `Concat` is the exception: it sums.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        match self.topology {
            BackendTopology::Concat { .. } => {
                self.devices.iter().map(SsdDevice::capacity_bytes).sum()
            }
            _ => self.devices[0].capacity_bytes(),
        }
    }

    /// Device `index` of the set.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn device(&self, index: u16) -> &SsdDevice {
        &self.devices[usize::from(index)]
    }

    /// Every device in the set, in device order.
    #[must_use]
    pub fn devices(&self) -> &[SsdDevice] {
        &self.devices
    }

    /// The first device — the whole set under [`BackendTopology::Single`].
    #[must_use]
    pub fn primary(&self) -> &SsdDevice {
        &self.devices[0]
    }

    /// The device owning the stripe that starts at LBA `slba`.
    #[must_use]
    pub fn device_of_slba(&self, slba: u64) -> u16 {
        if self.devices.len() <= 1 {
            0
        } else {
            ((slba / self.stripe_lbas) % self.devices.len() as u64) as u16
        }
    }

    /// Whether the devices carry an internal DRAM buffer.
    #[must_use]
    pub fn has_internal_dram(&self) -> bool {
        self.devices[0].has_internal_dram()
    }

    /// Aggregate device accounting across the set. Byte totals sum exactly
    /// over [`Self::device_stats`] to what one device would have served;
    /// command counts are per-segment (boundary-splitting and flush
    /// broadcast count once per device touched).
    #[must_use]
    pub fn stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for device in &self.devices {
            let s = device.stats();
            total.read_commands += s.read_commands;
            total.write_commands += s.write_commands;
            total.flush_commands += s.flush_commands;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.page_programs += s.page_programs;
            total.page_reads += s.page_reads;
        }
        total
    }

    /// Per-device accounting, in device order.
    #[must_use]
    pub fn device_stats(&self) -> Vec<SsdStats> {
        self.devices.iter().map(|d| *d.stats()).collect()
    }

    /// Aggregate internal-DRAM accounting across the set.
    #[must_use]
    pub fn dram_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for device in &self.devices {
            let s = device.dram_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.dirty_evictions += s.dirty_evictions;
            total.accesses += s.accesses;
        }
        total
    }

    /// Services an NVMe command issued at `now`, routing it to the device
    /// owning its stripe. A command that crosses stripe boundaries is split
    /// into per-device segments (the HAMS controller never issues one when
    /// the stripe unit is the MoS page size or a striped fill's command
    /// length); a flush broadcasts to every device.
    ///
    /// # Errors
    ///
    /// Propagates [`SsdError`] from the owning device(s).
    pub fn service(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        self.service_impl(cmd, now, cmd.fua)
    }

    /// [`Self::service`] with the force-unit-access bit treated as set on
    /// the borrowed command. Power-failure recovery re-issues every
    /// journal-tagged command with FUA so the recovered data is durable even
    /// on a device with a volatile buffer; this entry point does that
    /// without cloning each command (and its PRP list) just to flip the
    /// bit. Timing is exactly `service` of the same command with
    /// `fua = true`.
    ///
    /// # Errors
    ///
    /// Propagates [`SsdError`] from the owning device(s).
    pub fn service_fua(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        self.service_impl(cmd, now, true)
    }

    fn service_impl(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        if self.fault.is_some() {
            return self.service_faulted(cmd, now, fua);
        }
        let serve = |device: &mut SsdDevice, cmd: &NvmeCommand, now| {
            if fua {
                device.service_forcing_fua(cmd, now)
            } else {
                device.service(cmd, now)
            }
        };
        if self.devices.len() == 1 {
            return serve(&mut self.devices[0], cmd, now);
        }
        if cmd.opcode == NvmeOpcode::Flush {
            return self.broadcast_flush(cmd, now);
        }
        if cmd.length == 0 {
            let device = usize::from(self.device_of_slba(cmd.slba));
            let mut local = cmd.clone();
            local.slba = self.local_slba(device, cmd.slba);
            return serve(&mut self.devices[device], &local, now);
        }

        let stripe_bytes = self.stripe_lbas * LBA_SIZE;
        let start = cmd.slba * LBA_SIZE;
        let end = start + cmd.length;
        let mut merged: Option<IoCompletion> = None;
        let mut offset = start;
        while offset < end {
            let stripe_end = (offset / stripe_bytes + 1) * stripe_bytes;
            let segment_end = end.min(stripe_end);
            let device = usize::from(self.device_of_slba(offset / LBA_SIZE));
            let mut segment = cmd.clone();
            segment.slba = self.local_slba(device, offset / LBA_SIZE);
            segment.length = segment_end - offset;
            let completion = serve(&mut self.devices[device], &segment, now)?;
            merged = Some(merge_completion(merged, completion));
            offset = segment_end;
        }
        Ok(merged.expect("non-empty command produced at least one segment"))
    }

    /// The service path with a fault plan installed: every command first
    /// advances the injector's state machine (injecting due faults and
    /// catching up paced rebuild rows), then routes — degraded reads of the
    /// down device reconstruct from the survivors, degraded writes are
    /// absorbed by parity, everything else serves exactly as the healthy
    /// path would. Only parity (`Raid5`) topologies reach here, so the
    /// identity local addressing of the striped paths applies throughout.
    fn service_faulted(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        if let Some(injector) = self.fault.as_mut() {
            injector.poll(now, &mut self.devices);
        }
        if cmd.opcode == NvmeOpcode::Flush {
            let injector = self.fault.as_mut().expect("faulted path has an injector");
            let mut merged: Option<IoCompletion> = None;
            let mut skipped = false;
            for (index, device) in self.devices.iter_mut().enumerate() {
                if injector.flush_skips(index as u16) {
                    skipped = true;
                    continue;
                }
                let completion = device.service(cmd, now)?;
                merged = Some(merge_completion(merged, completion));
            }
            if skipped {
                injector.note_skipped_flush();
            }
            return Ok(merged.expect("a degraded array keeps at least one survivor online"));
        }
        if cmd.length == 0 {
            return self.serve_segment_faulted(cmd.clone(), now, fua);
        }
        let stripe_bytes = self.stripe_lbas * LBA_SIZE;
        let start = cmd.slba * LBA_SIZE;
        let end = start + cmd.length;
        let mut merged: Option<IoCompletion> = None;
        let mut offset = start;
        while offset < end {
            let stripe_end = (offset / stripe_bytes + 1) * stripe_bytes;
            let segment_end = end.min(stripe_end);
            let mut segment = cmd.clone();
            segment.slba = offset / LBA_SIZE;
            segment.length = segment_end - offset;
            let completion = self.serve_segment_faulted(segment, now, fua)?;
            merged = Some(merge_completion(merged, completion));
            offset = segment_end;
        }
        Ok(merged.expect("non-empty command produced at least one segment"))
    }

    fn serve_segment_faulted(
        &mut self,
        segment: NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        let count = self.devices.len() as u64;
        let device = if count <= 1 {
            0u16
        } else {
            ((segment.slba / self.stripe_lbas) % count) as u16
        };
        let injector = self.fault.as_mut().expect("faulted path has an injector");
        match segment.opcode {
            NvmeOpcode::Read if injector.read_is_degraded(device, segment.slba) => {
                Ok(injector.reconstruct_read(&mut self.devices, &segment, now))
            }
            NvmeOpcode::Write if injector.write_is_degraded(device) => {
                injector.absorb_write(&mut self.devices, &segment, now, fua)
            }
            _ => {
                let target = &mut self.devices[usize::from(device)];
                if fua {
                    target.service_forcing_fua(&segment, now)
                } else {
                    target.service(&segment, now)
                }
            }
        }
    }

    /// Translates a global LBA to device `device`'s local LBA: identity for
    /// every striped topology, base-subtracted for the range-routed
    /// `Concat`.
    fn local_slba(&self, device: usize, slba: u64) -> u64 {
        match self.topology {
            BackendTopology::Concat { .. } => slba - device as u64 * self.stripe_lbas,
            _ => slba,
        }
    }

    /// Translates a global flash page number to device `device`'s local
    /// page number (the `Concat` analogue of [`Self::local_slba`]).
    fn local_lpn(&self, device: usize, lpn: u64) -> u64 {
        match self.topology {
            BackendTopology::Concat { .. } => {
                let page = u64::from(self.devices[0].config().geometry.page_size);
                lpn - device as u64 * (self.stripe_lbas * LBA_SIZE / page)
            }
            _ => lpn,
        }
    }

    fn broadcast_flush(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        let mut merged: Option<IoCompletion> = None;
        for device in &mut self.devices {
            let completion = device.service(cmd, now)?;
            merged = Some(merge_completion(merged, completion));
        }
        Ok(merged.expect("archive set holds at least one device"))
    }

    /// Whether logical flash page `lpn` is durably stored on the device
    /// owning its stripe (identity local addressing for striped topologies;
    /// `Concat` translates to the owning device's local page space). While
    /// the owning device is out, durability falls back to parity coverage:
    /// the retained pre-failure mapping plus whichever absorbed writes the
    /// row's parity buddy holds.
    #[must_use]
    pub fn is_durable(&self, lpn: u64) -> bool {
        let page = u64::from(self.config().geometry.page_size);
        let slba = lpn * page / LBA_SIZE;
        let device = usize::from(self.device_of_slba(slba));
        if let Some(injector) = &self.fault {
            if injector.down_device() == Some(device as u16) {
                let layout = injector.layout();
                let absorber = layout.absorbing_device(layout.row_of_slba(slba), device as u16);
                return self.devices[device].is_durable(lpn)
                    || self.devices[usize::from(absorber)].is_durable(lpn);
            }
        }
        self.devices[device].is_durable(self.local_lpn(device, lpn))
    }

    /// Injects a power failure at `now` into every device and merges the
    /// reports: pages concatenate in (device, page) order, the flush time is
    /// the slowest device's. A single-device set delegates, byte for byte.
    /// With a fault plan installed the injector's clock advances first, and
    /// a fail-stopped device that has no replacement yet is skipped — a dead
    /// controller flushes nothing (a transiently absent device still flushes
    /// autonomously from its own supercap).
    pub fn power_fail(&mut self, now: Nanos) -> PowerLossReport {
        if let Some(injector) = self.fault.as_mut() {
            injector.poll(now, &mut self.devices);
        }
        if self.devices.len() == 1 {
            return self.devices[0].power_fail(now);
        }
        let dead = self.fault.as_ref().and_then(|injector| {
            match (injector.down_device(), injector.down_kind()) {
                (Some(device), Some(FaultKind::FailStop { .. })) => Some(device),
                _ => None,
            }
        });
        let concat = matches!(self.topology, BackendTopology::Concat { .. });
        let page = u64::from(self.devices[0].config().geometry.page_size);
        let lpns_per_device = self.stripe_lbas * LBA_SIZE / page;
        let mut merged = PowerLossReport {
            flushed_pages: Vec::new(),
            lost_pages: Vec::new(),
            flush_time: Nanos::ZERO,
        };
        for (index, device) in self.devices.iter_mut().enumerate() {
            if dead == Some(index as u16) {
                continue;
            }
            let report = device.power_fail(now);
            let base = if concat {
                index as u64 * lpns_per_device
            } else {
                0
            };
            merged
                .flushed_pages
                .extend(report.flushed_pages.iter().map(|lpn| lpn + base));
            merged
                .lost_pages
                .extend(report.lost_pages.iter().map(|lpn| lpn + base));
            merged.flush_time = merged.flush_time.max(report.flush_time);
        }
        merged.flushed_pages.sort_unstable();
        merged.lost_pages.sort_unstable();
        merged
    }

    /// Installs a fault plan, arming the injector's state machine. The plan
    /// is consulted on every subsequent service call; until then (and with
    /// no plan at all) the service paths are byte-identical to the
    /// pre-fault-injection layer.
    ///
    /// # Panics
    ///
    /// Panics unless the topology keeps parity ([`BackendTopology::Raid5`])
    /// — without it a lost device is data loss, not degraded service — or
    /// if the plan itself is invalid (see [`FaultInjector::new`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.topology.has_parity(),
            "fault injection needs the parity topology (Raid5); {:?} cannot \
             reconstruct a lost device",
            self.topology
        );
        self.fault = Some(FaultInjector::new(
            plan,
            self.num_devices(),
            self.stripe_lbas,
        ));
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn fault(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Current degraded-state-machine state: `Healthy` when no plan is
    /// installed.
    #[must_use]
    pub fn array_state(&self) -> ArrayState {
        self.fault
            .as_ref()
            .map_or(ArrayState::Healthy, FaultInjector::state)
    }

    /// Fault / reconstruction / rebuild accounting, if a plan is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(FaultInjector::stats)
    }

    /// Advances the fault state machine to `now` without serving a command
    /// — how a harness lets a rebuild finish after the last foreground
    /// access. A no-op without a plan.
    pub fn advance_faults(&mut self, now: Nanos) {
        if let Some(injector) = self.fault.as_mut() {
            injector.poll(now, &mut self.devices);
        }
    }

    /// Drains the rebuild rows completed since the last drain, for
    /// telemetry span export. Empty without a plan.
    pub fn drain_rebuild_spans(&mut self) -> Vec<RebuildSpan> {
        self.fault
            .as_mut()
            .map_or_else(Vec::new, FaultInjector::drain_rebuild_spans)
    }
}

/// Folds one more per-device completion into a command-level aggregate:
/// the command finishes when its slowest segment does, latency components
/// and sub-request counts add, and it is buffer-served only if every
/// segment was.
fn merge_completion(acc: Option<IoCompletion>, next: IoCompletion) -> IoCompletion {
    match acc {
        None => next,
        Some(mut acc) => {
            acc.finished_at = acc.finished_at.max(next.finished_at);
            acc.breakdown.merge(&next.breakdown);
            acc.sub_requests += next.sub_requests;
            acc.served_from_dram &= next.served_from_dram;
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_nvme::PrpList;

    fn read_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::read(1, slba, length, PrpList::single(0x1000))
    }

    fn write_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::write(1, slba, length, PrpList::single(0x1000))
    }

    #[test]
    fn single_topology_is_byte_identical_to_a_bare_device() {
        let config = SsdConfig::tiny_for_tests();
        let mut bare = SsdDevice::new(config);
        let mut set = ArchiveSet::single(config);
        let mut raid1 = ArchiveSet::new(config, BackendTopology::raid0(1), 4096);
        let mut now = Nanos::ZERO;
        for i in 0..48u64 {
            let cmd = if i % 3 == 0 {
                write_cmd(i % 16, 4096).with_fua(i % 6 == 0)
            } else {
                read_cmd(i % 16, 4096)
            };
            let a = bare.service(&cmd, now).unwrap();
            let b = set.service(&cmd, now).unwrap();
            let c = raid1.service(&cmd, now).unwrap();
            assert_eq!(a, b, "Single diverged from the bare device");
            assert_eq!(a, c, "Raid0 {{ devices: 1 }} diverged from the bare device");
            now = a.finished_at;
        }
        assert_eq!(bare.stats(), &set.stats());
        assert_eq!(bare.stats(), &raid1.stats());
        assert_eq!(set.capacity_bytes(), bare.capacity_bytes());
    }

    #[test]
    fn raid0_routes_whole_stripes_to_their_owning_device() {
        let topology = BackendTopology::raid0_striped(4, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        for slba in 0..8u64 {
            set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
            assert_eq!(set.device_of_slba(slba), (slba % 4) as u16);
        }
        for d in 0..4u16 {
            assert_eq!(
                set.device(d).stats().write_commands,
                2,
                "device {d} should own exactly two of the eight stripes"
            );
        }
        // Per-device stats sum to the totals one device would have served.
        let total = set.stats();
        assert_eq!(total.write_commands, 8);
        assert_eq!(total.bytes_written, 8 * 4096);
    }

    #[test]
    fn commands_crossing_stripe_boundaries_split_and_sum() {
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        // 16 KB starting at LBA 0 covers stripes 0..4 → devices 0,1,0,1.
        let done = set
            .service(&write_cmd(0, 16 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(done.sub_requests, 4);
        assert_eq!(set.device(0).stats().bytes_written, 8192);
        assert_eq!(set.device(1).stats().bytes_written, 8192);
        assert_eq!(set.stats().bytes_written, 16 * 1024);
        assert!(set.is_durable(0) && set.is_durable(1) && set.is_durable(3));
    }

    #[test]
    fn page_granularity_stripes_keep_a_mos_page_on_one_device() {
        // 32 KB MoS pages: stripe 0 resolves to the page size.
        let mut set = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::raid0(2),
            32 * 1024,
        );
        assert_eq!(set.stripe_lbas(), 8);
        let done = set
            .service(&write_cmd(0, 32 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(done.sub_requests, 8, "one device served the whole page");
        assert_eq!(set.device(0).stats().write_commands, 1);
        assert_eq!(set.device(1).stats().write_commands, 0);
        // The next page lands on the other device.
        set.service(&write_cmd(8, 32 * 1024).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert_eq!(set.device(1).stats().write_commands, 1);
    }

    #[test]
    fn concurrent_reads_on_different_devices_do_not_contend() {
        let config = SsdConfig::tiny_for_tests();
        let mut single = ArchiveSet::single(config);
        let mut raid = ArchiveSet::new(config, BackendTopology::raid0_striped(4, LBA_SIZE), 4096);
        for set in [&mut single, &mut raid] {
            for slba in 0..8u64 {
                set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                    .unwrap();
            }
        }
        // Issue 8 reads at the same instant: the RAID set spreads them over
        // four devices' channels, so its slowest completion beats the single
        // device's.
        let t0 = Nanos::from_millis(10);
        let worst = |set: &mut ArchiveSet| {
            let mut worst = Nanos::ZERO;
            for slba in 0..8u64 {
                let done = set.service(&read_cmd(slba, 4096), t0).unwrap();
                worst = worst.max(done.finished_at);
            }
            worst
        };
        let single_worst = worst(&mut single);
        let raid_worst = worst(&mut raid);
        assert!(
            raid_worst < single_worst,
            "RAID-0 burst ({raid_worst}) must beat the single device ({single_worst})"
        );
    }

    #[test]
    fn flush_broadcasts_to_every_device() {
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(SsdConfig::tiny_for_tests(), topology, 4096);
        set.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        set.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        assert!(!set.is_durable(0) && !set.is_durable(1));
        set.service(&NvmeCommand::flush(1), Nanos::from_micros(10))
            .unwrap();
        assert!(set.is_durable(0) && set.is_durable(1));
        assert_eq!(set.stats().flush_commands, 2);
    }

    #[test]
    fn power_fail_merges_per_device_reports() {
        let mut config = SsdConfig::tiny_for_tests();
        config.supercap_backed = true;
        let topology = BackendTopology::raid0_striped(2, LBA_SIZE);
        let mut set = ArchiveSet::new(config, topology, 4096);
        set.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        set.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        let report = set.power_fail(Nanos::from_micros(50));
        assert_eq!(report.flushed_pages, vec![0, 1]);
        assert!(report.lost_pages.is_empty());
        assert!(report.flush_time > Nanos::ZERO);
        assert!(set.is_durable(0) && set.is_durable(1));
    }

    #[test]
    fn topology_helpers_normalise_and_resolve() {
        assert_eq!(BackendTopology::raid0(0).device_count(), 1);
        assert_eq!(BackendTopology::single().device_count(), 1);
        assert!(!BackendTopology::raid0(4).uses_cxl());
        assert!(BackendTopology::cxl(4, LBA_SIZE).uses_cxl());
        let resolved = BackendTopology::raid0(4).resolved(32 * 1024);
        assert_eq!(resolved.stripe_bytes(), 32 * 1024);
        let pinned = BackendTopology::raid0_striped(4, LBA_SIZE).resolved(32 * 1024);
        assert_eq!(pinned.stripe_bytes(), LBA_SIZE);
        assert_eq!(BackendTopology::default(), BackendTopology::single());
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn misaligned_stripe_units_panic() {
        let _ = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::raid0_striped(2, 1000),
            4096,
        );
    }

    #[test]
    fn cxl_topology_builds_a_striped_set() {
        let set = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::cxl(3, LBA_SIZE),
            4096,
        );
        assert_eq!(set.num_devices(), 3);
        assert!(set.topology().uses_cxl());
    }

    #[test]
    fn raid5_with_no_faults_is_byte_identical_to_raid0() {
        let config = SsdConfig::tiny_for_tests();
        let mut raid0 = ArchiveSet::new(config, BackendTopology::raid0_striped(4, LBA_SIZE), 4096);
        let mut raid5 = ArchiveSet::new(config, BackendTopology::raid5_striped(4, LBA_SIZE), 4096);
        let mut now = Nanos::ZERO;
        for i in 0..64u64 {
            let cmd = if i % 3 == 0 {
                write_cmd(i % 32, 4096).with_fua(i % 6 == 0)
            } else {
                read_cmd(i % 32, 4096)
            };
            let a = raid0.service(&cmd, now).unwrap();
            let b = raid5.service(&cmd, now).unwrap();
            assert_eq!(a, b, "healthy Raid5 diverged from Raid0 at command {i}");
            now = a.finished_at;
        }
        assert_eq!(raid0.stats(), raid5.stats());
        assert_eq!(raid0.device_stats(), raid5.device_stats());
        assert_eq!(raid0.capacity_bytes(), raid5.capacity_bytes());
        assert_eq!(raid5.array_state(), ArrayState::Healthy);
        assert!(raid5.fault_stats().is_none());
    }

    #[test]
    fn uniform_heterogeneous_set_matches_the_homogeneous_one() {
        let config = SsdConfig::tiny_for_tests();
        let topology = BackendTopology::raid0_striped(3, LBA_SIZE);
        let mut homogeneous = ArchiveSet::new(config, topology, 4096);
        let mut uniform = ArchiveSet::new_heterogeneous(vec![config; 3], topology, 4096);
        let mut now = Nanos::ZERO;
        for i in 0..48u64 {
            let cmd = if i % 2 == 0 {
                write_cmd(i % 24, 4096).with_fua(i % 4 == 0)
            } else {
                read_cmd(i % 24, 4096)
            };
            let a = homogeneous.service(&cmd, now).unwrap();
            let b = uniform.service(&cmd, now).unwrap();
            assert_eq!(a, b, "uniform heterogeneous set diverged at command {i}");
            now = a.finished_at;
        }
        assert_eq!(homogeneous.stats(), uniform.stats());
        assert_eq!(homogeneous.device_stats(), uniform.device_stats());
    }

    #[test]
    fn heterogeneous_timing_differences_show_up_per_device() {
        let fast = SsdConfig::tiny_for_tests();
        let mut slow = SsdConfig::tiny_for_tests();
        slow.timing = crate::timing::NandTiming::vnand_tlc();
        slow.dram_capacity_bytes = 0;
        let mut set = ArchiveSet::new_heterogeneous(
            vec![fast, slow],
            BackendTopology::raid0_striped(2, LBA_SIZE),
            4096,
        );
        let on_fast = set
            .service(&write_cmd(0, 4096).with_fua(true), Nanos::ZERO)
            .unwrap();
        let on_slow = set
            .service(&write_cmd(1, 4096).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert!(
            on_slow.finished_at > on_fast.finished_at,
            "the conventional-NAND device must be slower than the Z-NAND one"
        );
    }

    #[test]
    fn concat_sums_capacity_and_routes_by_range() {
        let config = SsdConfig::tiny_for_tests();
        let single = ArchiveSet::single(config);
        let mut set = ArchiveSet::new(config, BackendTopology::concat(2), 4096);
        assert_eq!(set.capacity_bytes(), 2 * single.capacity_bytes());
        let per_device_lbas = single.capacity_bytes() / LBA_SIZE;
        assert_eq!(set.stripe_lbas(), per_device_lbas);
        // First slice routes to device 0, second to device 1.
        assert_eq!(set.device_of_slba(0), 0);
        assert_eq!(set.device_of_slba(per_device_lbas - 1), 0);
        assert_eq!(set.device_of_slba(per_device_lbas), 1);
        set.service(&write_cmd(1, 4096).with_fua(true), Nanos::ZERO)
            .unwrap();
        set.service(
            &write_cmd(per_device_lbas + 1, 4096).with_fua(true),
            Nanos::ZERO,
        )
        .unwrap();
        assert_eq!(set.device(0).stats().write_commands, 1);
        assert_eq!(set.device(1).stats().write_commands, 1);
        // Device 1 served its command in its local address space.
        assert!(set.device(1).is_durable(1));
        // And globally, both pages read back as durable through translation.
        let page_lbas = 1; // 4 KB pages, 4 KB LBAs
        assert!(set.is_durable(1 / page_lbas));
        assert!(set.is_durable(per_device_lbas + 1));
    }

    #[test]
    fn concat_command_stream_in_first_slice_matches_single_device() {
        let config = SsdConfig::tiny_for_tests();
        let mut single = ArchiveSet::single(config);
        let mut concat = ArchiveSet::new(config, BackendTopology::concat(2), 4096);
        let mut now = Nanos::ZERO;
        for i in 0..48u64 {
            let cmd = if i % 3 == 0 {
                write_cmd(i % 16, 4096).with_fua(i % 6 == 0)
            } else {
                read_cmd(i % 16, 4096)
            };
            let a = single.service(&cmd, now).unwrap();
            let b = concat.service(&cmd, now).unwrap();
            assert_eq!(a, b, "concat's first slice diverged from the single device");
            now = a.finished_at;
        }
        assert_eq!(single.stats(), concat.stats());
        assert_eq!(concat.device(1).stats().total_commands(), 0);
    }

    fn raid5_set() -> ArchiveSet {
        let mut config = SsdConfig::tiny_for_tests();
        config.supercap_backed = true;
        ArchiveSet::new(config, BackendTopology::raid5_striped(4, LBA_SIZE), 4096)
    }

    #[test]
    fn fail_stop_walks_degraded_then_rebuilds_to_healthy() {
        let mut set = raid5_set();
        // Populate every device before the fault.
        for slba in 0..16u64 {
            set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
        }
        let fail_at = Nanos::from_micros(100);
        let spare_at = Nanos::from_micros(300);
        let plan = FaultPlan::new()
            .with_fail_stop(1, fail_at, spare_at)
            .with_rebuild(crate::fault::RebuildConfig {
                row_interval: Nanos::from_micros(10),
                ..Default::default()
            });
        set.set_fault_plan(plan);
        assert_eq!(set.array_state(), ArrayState::Healthy);

        // A read of the dead device while degraded reconstructs from the
        // three survivors.
        let before = [0u16, 2, 3].map(|d| set.device(d).stats().read_commands);
        let done = set
            .service(&read_cmd(1, 4096), Nanos::from_micros(150))
            .unwrap();
        assert_eq!(set.array_state(), ArrayState::Degraded);
        let after = [0u16, 2, 3].map(|d| set.device(d).stats().read_commands);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(a - b, 1, "each survivor serves one reconstruction read");
        }
        assert!(done.finished_at > Nanos::from_micros(150));
        let stats = *set.fault_stats().unwrap();
        assert_eq!(stats.degraded_reads, 1);
        assert_eq!(stats.reconstruction_reads, 3);

        // A degraded write is absorbed by the row's parity buddy and stays
        // durable through the outage.
        set.service(&write_cmd(5, 4096).with_fua(true), Nanos::from_micros(160))
            .unwrap();
        assert!(set.is_durable(5));
        assert_eq!(set.fault_stats().unwrap().parity_absorbed_writes, 1);

        // Drive simulated time past the spare arrival and let rebuild run
        // dry: the array returns to healthy and every page is durable again.
        set.advance_faults(Nanos::from_millis(50));
        assert_eq!(set.array_state(), ArrayState::Healthy);
        let stats = *set.fault_stats().unwrap();
        assert_eq!(stats.repairs_completed, 1);
        assert!(stats.rebuild_rows_done > 0);
        assert_eq!(stats.rebuild_rows_done, stats.rebuild_rows_total);
        assert!(stats.rebuild_writes >= stats.rebuild_rows_done);
        for slba in 0..16u64 {
            assert!(set.is_durable(slba), "page {slba} lost across the rebuild");
        }
        let spans = set.drain_rebuild_spans();
        assert_eq!(spans.len() as u64, stats.rebuild_rows_done);
        assert!(spans.iter().all(|s| s.device == 1 && s.end > s.start));
        assert!(set.fault().unwrap().recovered_at().unwrap() >= spare_at);
    }

    #[test]
    fn transient_fault_resyncs_only_rows_written_while_away() {
        let mut set = raid5_set();
        for slba in 0..16u64 {
            set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
        }
        let plan =
            FaultPlan::new().with_transient(2, Nanos::from_micros(100), Nanos::from_micros(400));
        set.set_fault_plan(plan);
        // One degraded write to the absent device dirties exactly one row.
        set.service(&write_cmd(2, 4096).with_fua(true), Nanos::from_micros(200))
            .unwrap();
        set.advance_faults(Nanos::from_millis(10));
        assert_eq!(set.array_state(), ArrayState::Healthy);
        let stats = *set.fault_stats().unwrap();
        assert_eq!(
            stats.rebuild_rows_total, 1,
            "transient resync covers dirty rows only"
        );
        assert_eq!(stats.repairs_completed, 1);
    }

    #[test]
    fn flush_broadcast_skips_the_dead_device() {
        let mut set = raid5_set();
        set.set_fault_plan(FaultPlan::new().with_fail_stop(
            0,
            Nanos::from_micros(10),
            Nanos::from_millis(100),
        ));
        set.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        set.service(&NvmeCommand::flush(1), Nanos::from_micros(50))
            .unwrap();
        assert_eq!(set.device(0).stats().flush_commands, 0);
        assert_eq!(set.device(1).stats().flush_commands, 1);
        assert_eq!(set.fault_stats().unwrap().skipped_flushes, 1);
    }

    #[test]
    fn fault_timing_is_deterministic_across_runs() {
        let run = || {
            let mut set = raid5_set();
            for slba in 0..24u64 {
                set.service(&write_cmd(slba, 4096).with_fua(true), Nanos::ZERO)
                    .unwrap();
            }
            set.set_fault_plan(
                FaultPlan::new()
                    .with_fail_stop(3, Nanos::from_micros(50), Nanos::from_micros(200))
                    .with_rebuild(crate::fault::RebuildConfig {
                        row_interval: Nanos::from_micros(5),
                        ..Default::default()
                    }),
            );
            let mut now = Nanos::from_micros(60);
            let mut finishes = Vec::new();
            for i in 0..32u64 {
                let cmd = if i % 2 == 0 {
                    read_cmd(i % 24, 4096)
                } else {
                    write_cmd(i % 24, 4096).with_fua(true)
                };
                let done = set.service(&cmd, now).unwrap();
                finishes.push(done.finished_at);
                now += Nanos::from_micros(20);
            }
            set.advance_faults(Nanos::from_millis(20));
            (finishes, *set.fault_stats().unwrap(), set.stats())
        };
        assert_eq!(run(), run(), "same plan must replay byte-identically");
    }

    #[test]
    #[should_panic(expected = "parity")]
    fn fault_plans_require_the_parity_topology() {
        let mut set = ArchiveSet::new(
            SsdConfig::tiny_for_tests(),
            BackendTopology::raid0_striped(4, LBA_SIZE),
            4096,
        );
        set.set_fault_plan(FaultPlan::new().with_fail_stop(0, Nanos::ZERO, Nanos::ZERO));
    }
}
