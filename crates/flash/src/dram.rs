//! SSD-internal DRAM buffer/cache.
//!
//! Modern SSDs, ULL-Flash included, front their flash array with a large DRAM
//! that caches reads and absorbs writes (§II-C). The paper's advanced HAMS
//! removes this DRAM entirely — incoming data is already buffered by the
//! NVDIMM — which both saves energy (the DRAM draws 17 % more power than a
//! 32-chip flash complex) and removes a redundant copy. The model therefore
//! exposes the buffer as an optional component with explicit hit/miss/dirty
//! accounting and an LRU policy.

use std::collections::BTreeMap;

use hams_sim::{FastHashMap, Nanos};
use serde::{Deserialize, Serialize};

/// Outcome of offering an access to the internal DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramOutcome {
    /// The page was present (read hit or write hit); access served at DRAM
    /// latency.
    Hit,
    /// The page was absent; the caller must go to flash. For writes the page
    /// has now been installed dirty.
    Miss,
    /// The install evicted a dirty page that must be programmed to flash.
    MissEvictDirty {
        /// Logical page number of the evicted dirty page.
        evicted_lpn: u64,
    },
}

/// Accounting counters for the internal DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read or write accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty pages evicted (write-backs forced by capacity).
    pub dirty_evictions: u64,
    /// Total accesses (energy accounting: each costs a DRAM row activation).
    pub accesses: u64,
}

impl DramStats {
    /// Hit rate in `[0, 1]`; zero when no accesses have occurred.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU page cache standing in for the SSD-internal DRAM.
///
/// # Example
///
/// ```
/// use hams_flash::{InternalDram, DramOutcome};
/// use hams_sim::Nanos;
///
/// let mut dram = InternalDram::new(2, Nanos::from_nanos(200));
/// assert_eq!(dram.read(1), DramOutcome::Miss);
/// dram.install(1, false);
/// assert_eq!(dram.read(1), DramOutcome::Hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InternalDram {
    capacity_pages: usize,
    access_latency: Nanos,
    /// lpn -> (last-use tick, dirty)
    resident: FastHashMap<u64, (u64, bool)>,
    /// last-use tick -> lpn (ticks are unique), so the LRU victim is the
    /// first entry — O(log n) instead of a full scan of `resident` per
    /// eviction, which dominated the device-service hot path.
    order: BTreeMap<u64, u64>,
    tick: u64,
    stats: DramStats,
}

impl InternalDram {
    /// Creates a buffer holding up to `capacity_pages` pages, each access
    /// costing `access_latency`.
    #[must_use]
    pub fn new(capacity_pages: usize, access_latency: Nanos) -> Self {
        InternalDram {
            capacity_pages,
            access_latency,
            resident: FastHashMap::default(),
            order: BTreeMap::new(),
            tick: 0,
            stats: DramStats::default(),
        }
    }

    /// Capacity in pages.
    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Latency of one buffer access.
    #[must_use]
    pub fn access_latency(&self) -> Nanos {
        self.access_latency
    }

    /// Accounting counters.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Number of resident dirty pages.
    #[must_use]
    pub fn dirty_pages(&self) -> usize {
        self.resident.values().filter(|(_, d)| *d).count()
    }

    /// Offers a read of `lpn`; hits refresh recency.
    pub fn read(&mut self, lpn: u64) -> DramOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        if let Some(entry) = self.resident.get_mut(&lpn) {
            self.order
                .remove(&std::mem::replace(&mut entry.0, self.tick));
            self.order.insert(self.tick, lpn);
            self.stats.hits += 1;
            DramOutcome::Hit
        } else {
            self.stats.misses += 1;
            DramOutcome::Miss
        }
    }

    /// Offers a write of `lpn`: a hit dirties the resident copy, a miss
    /// installs the page dirty (write-back policy), possibly evicting.
    pub fn write(&mut self, lpn: u64) -> DramOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        if let Some(entry) = self.resident.get_mut(&lpn) {
            self.order
                .remove(&std::mem::replace(&mut entry.0, self.tick));
            self.order.insert(self.tick, lpn);
            entry.1 = true;
            self.stats.hits += 1;
            return DramOutcome::Hit;
        }
        self.stats.misses += 1;
        let evicted = self.install_inner(lpn, true);
        match evicted {
            Some(lpn) => DramOutcome::MissEvictDirty { evicted_lpn: lpn },
            None => DramOutcome::Miss,
        }
    }

    /// Installs a clean copy of `lpn` (e.g. after a read miss fill). Returns
    /// the LPN of a dirty page evicted to make room, if any.
    pub fn install(&mut self, lpn: u64, dirty: bool) -> Option<u64> {
        self.tick += 1;
        self.install_inner(lpn, dirty)
    }

    fn install_inner(&mut self, lpn: u64, dirty: bool) -> Option<u64> {
        if self.capacity_pages == 0 {
            // Degenerate buffer: nothing is ever resident.
            return None;
        }
        let mut evicted_dirty = None;
        if self.resident.len() >= self.capacity_pages {
            // Evict the least recently used page: the minimum-tick entry,
            // exactly the victim the old full scan of `resident` chose.
            if let Some((&lru_tick, &victim)) = self.order.iter().next() {
                self.order.remove(&lru_tick);
                if let Some((_, was_dirty)) = self.resident.remove(&victim) {
                    if was_dirty {
                        self.stats.dirty_evictions += 1;
                        evicted_dirty = Some(victim);
                    }
                }
            }
        }
        if let Some(previous) = self.resident.insert(lpn, (self.tick, dirty)) {
            // Re-install of a resident page: drop its stale recency entry.
            self.order.remove(&previous.0);
        }
        self.order.insert(self.tick, lpn);
        evicted_dirty
    }

    /// Drains every dirty page (a flush or pre-shutdown write-back), returning
    /// their LPNs and marking them clean.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self
            .resident
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(&lpn, _)| lpn)
            .collect();
        dirty.sort_unstable();
        for lpn in &dirty {
            if let Some(e) = self.resident.get_mut(lpn) {
                e.1 = false;
            }
        }
        dirty
    }

    /// Discards all resident pages (a power failure with no supercapacitor
    /// protection loses the buffer contents).
    pub fn discard_all(&mut self) -> usize {
        let n = self.resident.len();
        self.resident.clear();
        self.order.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(cap: usize) -> InternalDram {
        InternalDram::new(cap, Nanos::from_nanos(200))
    }

    #[test]
    fn read_miss_then_hit() {
        let mut d = dram(4);
        assert_eq!(d.read(1), DramOutcome::Miss);
        d.install(1, false);
        assert_eq!(d.read(1), DramOutcome::Hit);
        assert!((d.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn write_installs_dirty() {
        let mut d = dram(4);
        assert_eq!(d.write(7), DramOutcome::Miss);
        assert_eq!(d.dirty_pages(), 1);
        assert_eq!(d.write(7), DramOutcome::Hit);
        assert_eq!(d.dirty_pages(), 1);
    }

    #[test]
    fn lru_evicts_oldest_and_reports_dirty_evictions() {
        let mut d = dram(2);
        d.write(1);
        d.write(2);
        // Touch page 1 so page 2 becomes LRU.
        d.read(1);
        let outcome = d.write(3);
        assert_eq!(outcome, DramOutcome::MissEvictDirty { evicted_lpn: 2 });
        assert_eq!(d.stats().dirty_evictions, 1);
        assert_eq!(d.resident_pages(), 2);
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut d = dram(1);
        d.install(1, false);
        assert_eq!(d.write(2), DramOutcome::Miss);
        assert_eq!(d.stats().dirty_evictions, 0);
    }

    #[test]
    fn flush_returns_sorted_dirty_set_and_cleans() {
        let mut d = dram(8);
        d.write(5);
        d.write(3);
        d.install(9, false);
        assert_eq!(d.flush_dirty(), vec![3, 5]);
        assert_eq!(d.dirty_pages(), 0);
        assert!(d.flush_dirty().is_empty());
    }

    #[test]
    fn discard_models_power_loss() {
        let mut d = dram(8);
        d.write(1);
        d.write(2);
        assert_eq!(d.discard_all(), 2);
        assert_eq!(d.resident_pages(), 0);
        assert_eq!(d.read(1), DramOutcome::Miss);
    }

    #[test]
    fn zero_capacity_buffer_never_holds_pages() {
        let mut d = dram(0);
        assert_eq!(d.write(1), DramOutcome::Miss);
        assert_eq!(d.resident_pages(), 0);
        assert_eq!(d.read(1), DramOutcome::Miss);
    }
}
