//! The assembled SSD device: host interface layer, FTL, FIL and internal
//! DRAM serving NVMe commands.
//!
//! [`SsdDevice::service`] is the single entry point: given an NVMe command
//! and the current simulated time it returns when the command finishes and a
//! named latency breakdown. Presets in [`SsdConfig`] reproduce the three
//! devices the paper characterises (Z-NAND ULL-Flash, an Intel-750-class
//! NVMe SSD, a SATA SSD) plus the DRAM-less ULL-Flash used by advanced HAMS.

use hams_nvme::{NvmeCommand, NvmeOpcode};
use hams_sim::{ComponentId, LatencyBreakdown, Nanos};
use serde::{Deserialize, Serialize};

use crate::dram::{DramOutcome, InternalDram};
use crate::fil::Fil;
use crate::ftl::{Ftl, FtlError};
use crate::geometry::FlashGeometry;
use crate::timing::{FlashOp, NandTiming};

/// NVMe logical-block size used throughout the model (bytes). The paper's
/// request payloads are 4 KB NVMe packets.
pub const LBA_SIZE: u64 = 4096;

/// Configuration of one SSD instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Physical flash organisation.
    pub geometry: FlashGeometry,
    /// Flash and firmware timing.
    pub timing: NandTiming,
    /// Internal DRAM capacity in bytes; 0 disables the buffer (advanced HAMS).
    pub dram_capacity_bytes: u64,
    /// Latency of one internal-DRAM access.
    pub dram_access_latency: Nanos,
    /// Whether 4 KB transfers are striped across two channels (ULL-Flash).
    pub stripe_halves: bool,
    /// Fraction of blocks reserved as over-provisioning.
    pub over_provisioning: f64,
    /// Whether the device carries super-capacitors that flush the internal
    /// DRAM to flash on power failure (added to ULL-Flash by HAMS, §IV-B).
    pub supercap_backed: bool,
}

impl SsdConfig {
    /// The 800 GB Z-NAND ULL-Flash prototype with its 512 MB internal DRAM.
    #[must_use]
    pub fn ull_flash() -> Self {
        SsdConfig {
            geometry: FlashGeometry::ull_flash(),
            timing: NandTiming::z_nand(),
            dram_capacity_bytes: 512 * 1024 * 1024,
            dram_access_latency: Nanos::from_nanos(200),
            stripe_halves: true,
            over_provisioning: 0.07,
            supercap_backed: false,
        }
    }

    /// ULL-Flash with super-capacitors added, as the baseline HAMS requires.
    #[must_use]
    pub fn ull_flash_supercap() -> Self {
        SsdConfig {
            supercap_backed: true,
            ..Self::ull_flash()
        }
    }

    /// ULL-Flash with the internal DRAM removed and the register interface in
    /// mind — the device advanced HAMS attaches directly to DDR4.
    #[must_use]
    pub fn ull_flash_without_dram() -> Self {
        SsdConfig {
            dram_capacity_bytes: 0,
            supercap_backed: true,
            ..Self::ull_flash()
        }
    }

    /// An Intel-750-class high-performance NVMe SSD (TLC V-NAND).
    #[must_use]
    pub fn nvme_750() -> Self {
        SsdConfig {
            geometry: FlashGeometry::nvme_ssd(),
            timing: NandTiming::vnand_tlc(),
            dram_capacity_bytes: 1024 * 1024 * 1024,
            dram_access_latency: Nanos::from_nanos(250),
            stripe_halves: false,
            over_provisioning: 0.07,
            supercap_backed: false,
        }
    }

    /// A SATA SSD (MLC NAND, shallow parallelism, long firmware path).
    #[must_use]
    pub fn sata_ssd() -> Self {
        SsdConfig {
            geometry: FlashGeometry::sata_ssd(),
            timing: NandTiming::sata_mlc(),
            dram_capacity_bytes: 256 * 1024 * 1024,
            dram_access_latency: Nanos::from_nanos(300),
            stripe_halves: false,
            over_provisioning: 0.07,
            supercap_backed: false,
        }
    }

    /// A tiny device for unit tests: small geometry, Z-NAND timing, 16-page
    /// DRAM buffer.
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        SsdConfig {
            geometry: FlashGeometry::tiny(),
            timing: NandTiming::z_nand(),
            dram_capacity_bytes: 16 * 4096,
            dram_access_latency: Nanos::from_nanos(200),
            stripe_halves: true,
            over_provisioning: 0.25,
            supercap_backed: false,
        }
    }
}

/// Completion record returned by [`SsdDevice::service`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCompletion {
    /// Simulated time at which the command finished inside the device.
    pub finished_at: Nanos,
    /// Named latency components (`hil`, `ftl`, `dram`, `flash_array`,
    /// `flash_channel`, `flash_queue`).
    pub breakdown: LatencyBreakdown,
    /// Number of flash-page sub-requests the command was split into.
    pub sub_requests: u32,
    /// Whether every sub-request was served from the internal DRAM.
    pub served_from_dram: bool,
}

impl IoCompletion {
    /// Device-internal latency relative to the issue time.
    #[must_use]
    pub fn latency(&self, issued_at: Nanos) -> Nanos {
        self.finished_at - issued_at
    }
}

/// Errors surfaced by the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SsdError {
    /// The command addressed LBAs beyond the exported capacity.
    OutOfRange,
    /// The flash array ran out of space.
    OutOfSpace,
}

impl std::fmt::Display for SsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsdError::OutOfRange => write!(f, "command addresses beyond device capacity"),
            SsdError::OutOfSpace => write!(f, "flash array out of space"),
        }
    }
}

impl std::error::Error for SsdError {}

impl From<FtlError> for SsdError {
    fn from(e: FtlError) -> Self {
        match e {
            FtlError::LpnOutOfRange(_) => SsdError::OutOfRange,
            FtlError::OutOfSpace => SsdError::OutOfSpace,
        }
    }
}

/// Device-level accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Read commands serviced.
    pub read_commands: u64,
    /// Write commands serviced.
    pub write_commands: u64,
    /// Flush commands serviced.
    pub flush_commands: u64,
    /// Bytes read by the host.
    pub bytes_read: u64,
    /// Bytes written by the host.
    pub bytes_written: u64,
    /// Flash page programs issued (host + buffer write-back + flush).
    pub page_programs: u64,
    /// Flash page reads issued.
    pub page_reads: u64,
}

impl SsdStats {
    /// Total commands serviced across all opcodes — the telemetry "archive
    /// commands" counter.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.read_commands + self.write_commands + self.flush_commands
    }
}

/// Report of what a power failure did to the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerLossReport {
    /// Dirty pages that were safely flushed by super-capacitor backup.
    pub flushed_pages: Vec<u64>,
    /// Dirty pages that were lost because no backup power existed.
    pub lost_pages: Vec<u64>,
    /// Time the backup flush took (zero if nothing was flushed).
    pub flush_time: Nanos,
}

/// A complete SSD: HIL + FTL + FIL + internal DRAM.
///
/// # Example
///
/// ```
/// use hams_flash::{SsdDevice, SsdConfig};
/// use hams_nvme::{NvmeCommand, PrpList};
/// use hams_sim::Nanos;
///
/// let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
/// let write = NvmeCommand::write(1, 0, 4096, PrpList::single(0x1000));
/// let done = ssd.service(&write, Nanos::ZERO).unwrap();
/// assert!(done.finished_at > Nanos::ZERO);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdDevice {
    config: SsdConfig,
    ftl: Ftl,
    fil: Fil,
    dram: InternalDram,
    stats: SsdStats,
}

impl SsdDevice {
    /// Builds a device from its configuration.
    #[must_use]
    pub fn new(config: SsdConfig) -> Self {
        let dram_pages =
            (config.dram_capacity_bytes / u64::from(config.geometry.page_size)) as usize;
        SsdDevice {
            config,
            ftl: Ftl::new(config.geometry, config.over_provisioning),
            fil: Fil::new(config.geometry, config.timing, config.stripe_halves),
            dram: InternalDram::new(dram_pages, config.dram_access_latency),
            stats: SsdStats::default(),
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Exported capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.ftl.exported_capacity_bytes()
    }

    /// Device accounting counters.
    #[must_use]
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// FTL accounting (GC, write amplification).
    #[must_use]
    pub fn ftl_stats(&self) -> &crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// Internal DRAM accounting.
    #[must_use]
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }

    /// Whether the internal DRAM buffer is present.
    #[must_use]
    pub fn has_internal_dram(&self) -> bool {
        self.dram.capacity_pages() > 0
    }

    /// Services an NVMe command issued at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::OutOfRange`] or [`SsdError::OutOfSpace`] when the
    /// command cannot be served.
    pub fn service(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        self.service_with_fua(cmd, now, cmd.fua)
    }

    /// [`Self::service`] with the force-unit-access bit treated as set,
    /// whatever the borrowed command carries. Power-failure recovery uses
    /// this to push re-issued journal commands straight to the medium
    /// without cloning each command (PRP list and all) just to flip one
    /// bit; timing is exactly `service` of the same command with
    /// `fua = true`.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::OutOfRange`] or [`SsdError::OutOfSpace`] when the
    /// command cannot be served.
    pub fn service_forcing_fua(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
    ) -> Result<IoCompletion, SsdError> {
        self.service_with_fua(cmd, now, true)
    }

    fn service_with_fua(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        match cmd.opcode {
            NvmeOpcode::Read => self.service_read(cmd, now),
            NvmeOpcode::Write => self.service_write(cmd, now, fua),
            NvmeOpcode::Flush => Ok(self.service_flush(now)),
        }
    }

    fn pages_of(&self, cmd: &NvmeCommand) -> (u64, u64) {
        let page = u64::from(self.config.geometry.page_size);
        let start_byte = cmd.slba * LBA_SIZE;
        let first = start_byte / page;
        let last = if cmd.length == 0 {
            first
        } else {
            (start_byte + cmd.length - 1) / page
        };
        (first, last)
    }

    fn service_read(&mut self, cmd: &NvmeCommand, now: Nanos) -> Result<IoCompletion, SsdError> {
        let timing = self.config.timing;
        let mut breakdown = LatencyBreakdown::new();
        breakdown.add(ComponentId::HIL, timing.hil_overhead);
        let start = now + timing.hil_overhead;
        let (first, last) = self.pages_of(cmd);
        let mut finish = start;
        let mut firmware_clock = start;
        let mut all_dram = true;
        let mut subs = 0;

        for lpn in first..=last {
            subs += 1;
            firmware_clock += timing.ftl_overhead;
            breakdown.add(ComponentId::FTL, timing.ftl_overhead);
            let outcome = if self.has_internal_dram() {
                self.dram.read(lpn)
            } else {
                DramOutcome::Miss
            };
            match outcome {
                DramOutcome::Hit => {
                    breakdown.add(ComponentId::DRAM, self.dram.access_latency());
                    finish = finish.max(firmware_clock + self.dram.access_latency());
                }
                _ => {
                    all_dram = false;
                    let done = match self.ftl.lookup(lpn) {
                        Some(ppn) => {
                            self.stats.page_reads += 1;
                            let c = self.fil.schedule_page(ppn, FlashOp::Read, firmware_clock);
                            breakdown.merge(&c.breakdown());
                            c.finished_at
                        }
                        // Never-written page: served as zero-fill by firmware.
                        None => firmware_clock,
                    };
                    if self.has_internal_dram() {
                        if let Some(evicted) = self.dram.install(lpn, false) {
                            self.write_back(evicted, done);
                        }
                    }
                    finish = finish.max(done);
                }
            }
        }

        self.stats.read_commands += 1;
        self.stats.bytes_read += cmd.length;
        Ok(IoCompletion {
            finished_at: finish,
            breakdown,
            sub_requests: subs,
            served_from_dram: all_dram && subs > 0,
        })
    }

    fn service_write(
        &mut self,
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, SsdError> {
        let timing = self.config.timing;
        let mut breakdown = LatencyBreakdown::new();
        breakdown.add(ComponentId::HIL, timing.hil_overhead);
        let start = now + timing.hil_overhead;
        let (first, last) = self.pages_of(cmd);
        let mut finish = start;
        let mut firmware_clock = start;
        let mut all_dram = true;
        let mut subs = 0;
        let buffered = self.has_internal_dram() && !fua;

        for lpn in first..=last {
            subs += 1;
            firmware_clock += timing.ftl_overhead;
            breakdown.add(ComponentId::FTL, timing.ftl_overhead);
            if buffered {
                match self.dram.write(lpn) {
                    DramOutcome::MissEvictDirty { evicted_lpn } => {
                        // The victim write-back happens in the background; it
                        // occupies flash resources but does not delay this ack.
                        self.write_back(evicted_lpn, firmware_clock);
                    }
                    DramOutcome::Hit | DramOutcome::Miss => {}
                }
                breakdown.add(ComponentId::DRAM, self.dram.access_latency());
                finish = finish.max(firmware_clock + self.dram.access_latency());
            } else {
                all_dram = false;
                let outcome = self.ftl.write(lpn)?;
                self.stats.page_programs += 1;
                let c = self
                    .fil
                    .schedule_page(outcome.ppn, FlashOp::Program, firmware_clock);
                breakdown.merge(&c.breakdown());
                let mut done = c.finished_at;
                // GC work triggered by this write delays it (foreground GC).
                for (_, new_ppn) in &outcome.relocated {
                    self.stats.page_programs += 1;
                    let r = self.fil.schedule_page(*new_ppn, FlashOp::Program, done);
                    done = r.finished_at;
                }
                for block in &outcome.erased_blocks {
                    let ppn = (*block as u64) * u64::from(self.config.geometry.pages_per_block);
                    let e = self.fil.schedule_page(ppn, FlashOp::Erase, done);
                    done = e.finished_at;
                }
                finish = finish.max(done);
            }
        }

        self.stats.write_commands += 1;
        self.stats.bytes_written += cmd.length;
        Ok(IoCompletion {
            finished_at: finish,
            breakdown,
            sub_requests: subs,
            served_from_dram: all_dram && subs > 0,
        })
    }

    fn service_flush(&mut self, now: Nanos) -> IoCompletion {
        let mut breakdown = LatencyBreakdown::new();
        breakdown.add(ComponentId::HIL, self.config.timing.hil_overhead);
        let start = now + self.config.timing.hil_overhead;
        let dirty = self.dram.flush_dirty();
        let mut finish = start;
        for lpn in dirty {
            if let Ok(outcome) = self.ftl.write(lpn) {
                self.stats.page_programs += 1;
                let c = self.fil.schedule_page(outcome.ppn, FlashOp::Program, start);
                finish = finish.max(c.finished_at);
                breakdown.merge(&c.breakdown());
            }
        }
        self.stats.flush_commands += 1;
        IoCompletion {
            finished_at: finish,
            breakdown,
            sub_requests: 0,
            served_from_dram: false,
        }
    }

    /// Programs a dirty page evicted from the internal DRAM. Background work:
    /// it occupies flash resources from `at` onwards but completion is not
    /// reported to the host.
    fn write_back(&mut self, lpn: u64, at: Nanos) {
        if let Ok(outcome) = self.ftl.write(lpn) {
            self.stats.page_programs += 1;
            let _ = self.fil.schedule_page(outcome.ppn, FlashOp::Program, at);
        }
    }

    /// Injects a power failure at time `now`.
    ///
    /// Super-capacitor-backed devices flush their dirty internal-DRAM pages to
    /// flash (the design HAMS mandates, §IV-B); unprotected devices lose them.
    pub fn power_fail(&mut self, now: Nanos) -> PowerLossReport {
        if self.config.supercap_backed {
            let dirty = self.dram.flush_dirty();
            let mut finish = now;
            for lpn in &dirty {
                if let Ok(outcome) = self.ftl.write(*lpn) {
                    self.stats.page_programs += 1;
                    let c = self.fil.schedule_page(outcome.ppn, FlashOp::Program, now);
                    finish = finish.max(c.finished_at);
                }
            }
            self.dram.discard_all();
            PowerLossReport {
                flushed_pages: dirty,
                lost_pages: Vec::new(),
                flush_time: finish - now,
            }
        } else {
            let lost: Vec<u64> = self.dram.flush_dirty();
            self.dram.discard_all();
            PowerLossReport {
                flushed_pages: Vec::new(),
                lost_pages: lost,
                flush_time: Nanos::ZERO,
            }
        }
    }

    /// Returns `true` if logical page `lpn` is durably stored on flash (not
    /// merely dirty in the internal DRAM).
    #[must_use]
    pub fn is_durable(&self, lpn: u64) -> bool {
        self.ftl.lookup(lpn).is_some()
    }

    /// Every logical page durably stored on flash, ascending — the rebuild
    /// planner's view of what a failed device must regenerate.
    #[must_use]
    pub fn durable_lpns(&self) -> Vec<u64> {
        self.ftl.mapped_lpns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_nvme::PrpList;

    fn read_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::read(1, slba, length, PrpList::single(0x1000))
    }

    fn write_cmd(slba: u64, length: u64) -> NvmeCommand {
        NvmeCommand::write(1, slba, length, PrpList::single(0x1000))
    }

    #[test]
    fn ull_flash_4k_read_latency_is_a_few_microseconds() {
        let mut ssd = SsdDevice::new(SsdConfig::ull_flash());
        // Populate the page first so the read touches the array.
        ssd.service(&write_cmd(0, 4096).with_fua(true), Nanos::ZERO)
            .unwrap();
        let t0 = Nanos::from_millis(1);
        let done = ssd.service(&read_cmd(0, 4096), t0).unwrap();
        let lat = done.latency(t0);
        assert!(
            lat >= Nanos::from_micros(3) && lat <= Nanos::from_micros(12),
            "ULL 4KB read latency {lat} outside the paper's ballpark"
        );
    }

    #[test]
    fn nvme_ssd_is_slower_than_ull() {
        let mut ull = SsdDevice::new(SsdConfig::ull_flash());
        let mut nvme = SsdDevice::new(SsdConfig::nvme_750());
        for dev in [&mut ull, &mut nvme] {
            dev.service(&write_cmd(0, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
        }
        let t0 = Nanos::from_millis(10);
        let a = ull.service(&read_cmd(0, 4096), t0).unwrap().latency(t0);
        let b = nvme.service(&read_cmd(0, 4096), t0).unwrap().latency(t0);
        assert!(
            b > a * 3,
            "NVMe SSD ({b}) should be much slower than ULL ({a})"
        );
    }

    #[test]
    fn buffered_write_is_acknowledged_at_dram_speed() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let done = ssd.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        assert!(done.served_from_dram);
        assert!(done.latency(Nanos::ZERO) < Nanos::from_micros(5));
        assert!(!ssd.is_durable(0), "buffered write must not yet be durable");
    }

    #[test]
    fn fua_write_bypasses_the_buffer() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let done = ssd
            .service(&write_cmd(0, 4096).with_fua(true), Nanos::ZERO)
            .unwrap();
        assert!(!done.served_from_dram);
        assert!(done.latency(Nanos::ZERO) >= Nanos::from_micros(100));
        assert!(ssd.is_durable(0));
    }

    #[test]
    fn flush_makes_buffered_writes_durable() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        ssd.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        ssd.service(&write_cmd(1, 4096), Nanos::ZERO).unwrap();
        assert!(!ssd.is_durable(0));
        let flush = NvmeCommand::flush(1);
        ssd.service(&flush, Nanos::from_micros(50)).unwrap();
        assert!(ssd.is_durable(0));
        assert!(ssd.is_durable(1));
        assert_eq!(ssd.stats().flush_commands, 1);
    }

    #[test]
    fn large_request_splits_into_page_sub_requests() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let done = ssd.service(&write_cmd(0, 16 * 1024), Nanos::ZERO).unwrap();
        assert_eq!(done.sub_requests, 4);
        assert_eq!(ssd.stats().bytes_written, 16 * 1024);
    }

    #[test]
    fn read_of_never_written_page_is_cheap() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let done = ssd.service(&read_cmd(5, 4096), Nanos::ZERO).unwrap();
        assert!(done.latency(Nanos::ZERO) < Nanos::from_micros(5));
    }

    #[test]
    fn power_fail_without_supercap_loses_dirty_pages() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        ssd.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        let report = ssd.power_fail(Nanos::from_micros(10));
        assert_eq!(report.lost_pages, vec![0]);
        assert!(report.flushed_pages.is_empty());
        assert!(!ssd.is_durable(0));
    }

    #[test]
    fn power_fail_with_supercap_flushes_dirty_pages() {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.supercap_backed = true;
        let mut ssd = SsdDevice::new(cfg);
        ssd.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        let report = ssd.power_fail(Nanos::from_micros(10));
        assert_eq!(report.flushed_pages, vec![0]);
        assert!(report.lost_pages.is_empty());
        assert!(report.flush_time >= Nanos::from_micros(100));
        assert!(ssd.is_durable(0));
    }

    #[test]
    fn out_of_range_write_is_rejected() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        let far = ssd.capacity_bytes() / LBA_SIZE + 10;
        let err = ssd
            .service(&write_cmd(far, 4096).with_fua(true), Nanos::ZERO)
            .unwrap_err();
        assert_eq!(err, SsdError::OutOfRange);
    }

    #[test]
    fn queue_depth_contention_increases_latency() {
        let mut ssd = SsdDevice::new(SsdConfig::ull_flash());
        // Fill a small region so reads hit the array, then hammer one die.
        for i in 0..32u64 {
            ssd.service(&write_cmd(i, 4096).with_fua(true), Nanos::ZERO)
                .unwrap();
        }
        let t0 = Nanos::from_millis(100);
        let single = ssd.service(&read_cmd(0, 4096), t0).unwrap().latency(t0);
        // Issue 32 concurrent reads at the same instant; the last completion
        // reflects queueing.
        let t1 = Nanos::from_millis(200);
        let mut worst = Nanos::ZERO;
        for i in 0..32u64 {
            let done = ssd.service(&read_cmd(i % 4, 4096), t1).unwrap();
            worst = worst.max(done.latency(t1));
        }
        assert!(
            worst > single,
            "contended latency {worst} should exceed idle {single}"
        );
    }

    #[test]
    fn stats_track_commands() {
        let mut ssd = SsdDevice::new(SsdConfig::tiny_for_tests());
        ssd.service(&write_cmd(0, 4096), Nanos::ZERO).unwrap();
        ssd.service(&read_cmd(0, 4096), Nanos::ZERO).unwrap();
        assert_eq!(ssd.stats().write_commands, 1);
        assert_eq!(ssd.stats().read_commands, 1);
        assert_eq!(ssd.stats().bytes_read, 4096);
    }
}
