//! Flash interface layer: schedules page operations onto channel and die
//! resources, producing completion times that reflect intra-device
//! parallelism and contention.
//!
//! The FIL is where ULL-Flash's latency optimisation lives: a 4 KB request is
//! split into two half-page transfers issued to two channels simultaneously,
//! halving DMA (channel transfer) latency (§II-C).

use hams_sim::{ComponentId, LatencyBreakdown, MultiResource, Nanos};
use serde::{Deserialize, Serialize};

use crate::geometry::FlashGeometry;
use crate::timing::{FlashOp, NandTiming};

/// The scheduled outcome of one flash page operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilCompletion {
    /// Simulated time at which the operation finishes.
    pub finished_at: Nanos,
    /// Time spent in the flash array (sense/program/erase).
    pub array_time: Nanos,
    /// Time spent transferring data over the flash channel(s).
    pub transfer_time: Nanos,
    /// Queueing delay waiting for the die and channel to become free.
    pub queue_time: Nanos,
}

impl FilCompletion {
    /// Total device-internal latency of the operation (relative to issue).
    #[must_use]
    pub fn latency(&self, issued_at: Nanos) -> Nanos {
        self.finished_at - issued_at
    }

    /// Expands this completion into a named latency breakdown.
    #[must_use]
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::new();
        b.add(ComponentId::FLASH_ARRAY, self.array_time);
        b.add(ComponentId::FLASH_CHANNEL, self.transfer_time);
        b.add(ComponentId::FLASH_QUEUE, self.queue_time);
        b
    }
}

/// Flash interface layer scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fil {
    geometry: FlashGeometry,
    timing: NandTiming,
    /// When `true`, page transfers are split across two channels (the
    /// ULL-Flash datapath optimisation).
    stripe_halves: bool,
    channels: MultiResource,
    dies: MultiResource,
}

impl Fil {
    /// Creates a FIL for the given geometry/timing.
    #[must_use]
    pub fn new(geometry: FlashGeometry, timing: NandTiming, stripe_halves: bool) -> Self {
        Fil {
            geometry,
            timing,
            stripe_halves,
            channels: MultiResource::new("flash-channel", geometry.channels as usize),
            dies: MultiResource::new("flash-die", geometry.total_dies() as usize),
        }
    }

    /// The timing parameters in force.
    #[must_use]
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// Whether half-page channel striping is enabled.
    #[must_use]
    pub fn stripes_halves(&self) -> bool {
        self.stripe_halves
    }

    /// Average channel utilisation over `[0, horizon]`.
    #[must_use]
    pub fn channel_utilization(&self, horizon: Nanos) -> f64 {
        self.channels.utilization(horizon)
    }

    /// Schedules a page-granularity read or program of physical page `ppn`
    /// issued at `now`.
    ///
    /// Reads sense the page on the die, then move it over the channel;
    /// programs move data over the channel first, then program the die.
    /// With half-page striping the channel transfer is issued as two
    /// half-size transfers to the addressed channel and its neighbour.
    pub fn schedule_page(&mut self, ppn: u64, op: FlashOp, now: Nanos) -> FilCompletion {
        let addr = self.geometry.decompose(ppn);
        let die_idx = self.geometry.die_index(&addr);
        let channel_idx = addr.channel as usize;
        let array = self.timing.array_time(op);
        let transfer = self.timing.channel_transfer;

        match op {
            FlashOp::Read => {
                let die_grant = self.dies.acquire_unit(die_idx, now, array);
                let transfer_done = self.schedule_transfer(channel_idx, die_grant.end, transfer);
                FilCompletion {
                    finished_at: transfer_done.0,
                    array_time: array,
                    transfer_time: transfer_done.1,
                    queue_time: die_grant.wait + transfer_done.2,
                }
            }
            FlashOp::Program => {
                let transfer_done = self.schedule_transfer(channel_idx, now, transfer);
                let die_grant = self.dies.acquire_unit(die_idx, transfer_done.0, array);
                FilCompletion {
                    finished_at: die_grant.end,
                    array_time: array,
                    transfer_time: transfer_done.1,
                    queue_time: die_grant.wait + transfer_done.2,
                }
            }
            FlashOp::Erase => {
                let die_grant = self.dies.acquire_unit(die_idx, now, array);
                FilCompletion {
                    finished_at: die_grant.end,
                    array_time: array,
                    transfer_time: Nanos::ZERO,
                    queue_time: die_grant.wait,
                }
            }
        }
    }

    /// Schedules the channel transfer for a page, optionally striped across
    /// two channels. Returns `(finish, service_time, queue_time)`.
    fn schedule_transfer(
        &mut self,
        channel_idx: usize,
        ready_at: Nanos,
        full_transfer: Nanos,
    ) -> (Nanos, Nanos, Nanos) {
        if self.stripe_halves && self.geometry.channels >= 2 {
            let half = full_transfer / 2;
            let second = (channel_idx + 1) % self.geometry.channels as usize;
            let g1 = self.channels.acquire_unit(channel_idx, ready_at, half);
            let g2 = self.channels.acquire_unit(second, ready_at, half);
            let finish = g1.end.max(g2.end);
            (finish, half, g1.wait.max(g2.wait))
        } else {
            let g = self
                .channels
                .acquire_unit(channel_idx, ready_at, full_transfer);
            (g.end, full_transfer, g.wait)
        }
    }

    /// Resets all channel and die schedules (used between experiments).
    pub fn reset(&mut self) {
        self.channels.reset();
        self.dies.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fil(stripe: bool) -> Fil {
        Fil::new(FlashGeometry::tiny(), NandTiming::z_nand(), stripe)
    }

    #[test]
    fn read_latency_is_array_plus_transfer_when_idle() {
        let mut f = fil(false);
        let c = f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        let expected = NandTiming::z_nand().read + NandTiming::z_nand().channel_transfer;
        assert_eq!(c.finished_at, expected);
        assert_eq!(c.queue_time, Nanos::ZERO);
        assert_eq!(c.latency(Nanos::ZERO), expected);
    }

    #[test]
    fn striping_halves_transfer_time() {
        let mut plain = fil(false);
        let mut striped = fil(true);
        let a = plain.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        let b = striped.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        assert!(b.finished_at < a.finished_at);
        assert_eq!(b.transfer_time, a.transfer_time / 2);
    }

    #[test]
    fn program_orders_transfer_before_array() {
        let mut f = fil(false);
        let c = f.schedule_page(0, FlashOp::Program, Nanos::ZERO);
        let t = NandTiming::z_nand();
        assert_eq!(c.finished_at, t.channel_transfer + t.program);
    }

    #[test]
    fn erase_has_no_transfer() {
        let mut f = fil(false);
        let c = f.schedule_page(0, FlashOp::Erase, Nanos::ZERO);
        assert_eq!(c.transfer_time, Nanos::ZERO);
        assert_eq!(c.finished_at, NandTiming::z_nand().erase);
    }

    #[test]
    fn same_die_operations_serialize() {
        let mut f = fil(false);
        let first = f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        // ppn 0 and ppn 2 are on the same channel/die in the tiny geometry.
        let second = f.schedule_page(2, FlashOp::Read, Nanos::ZERO);
        assert!(second.queue_time > Nanos::ZERO);
        assert!(second.finished_at > first.finished_at);
    }

    #[test]
    fn different_channels_overlap() {
        let mut f = fil(false);
        let a = f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        let b = f.schedule_page(1, FlashOp::Read, Nanos::ZERO);
        assert_eq!(
            a.finished_at, b.finished_at,
            "independent dies should not queue"
        );
    }

    #[test]
    fn breakdown_components_sum_to_latency_minus_wait() {
        let mut f = fil(false);
        let c = f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        let b = c.breakdown();
        assert_eq!(
            b.component("flash_array") + b.component("flash_channel"),
            c.finished_at
        );
    }

    #[test]
    fn reset_clears_queues() {
        let mut f = fil(false);
        f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        f.reset();
        let c = f.schedule_page(0, FlashOp::Read, Nanos::ZERO);
        assert_eq!(c.queue_time, Nanos::ZERO);
    }
}
