//! Fault injection and degraded-mode serving for the [`ArchiveSet`].
//!
//! HAMS's headline claim is crash-consistent persistent memory over commodity
//! SSDs; this module extends the reproduction past the happy path and
//! whole-array power loss to *device* failure. A [`FaultPlan`] names a device
//! and a simulated instant; the [`FaultInjector`] fails that device at that
//! instant (fail-stop with a spare arriving later, or transient with the same
//! device returning) and walks the array through the degraded state machine
//!
//! ```text
//! Healthy ──fault──▶ Degraded ──spare/repair──▶ Rebuilding ──last row──▶ Healthy
//! ```
//!
//! Degraded reads of the lost device are *reconstructed*: the parity rotation
//! of [`Raid5Layout`] makes every stripe recoverable from the `N − 1`
//! survivors plus an XOR pass, so a degraded read costs `N − 1` survivor
//! reads (serviced on the survivors' real channel/die models, so they contend
//! with foreground traffic) plus a per-LBA XOR charge. Degraded writes are
//! absorbed by a parity update on the row's surviving parity buddy. Rebuild
//! is background traffic: one stripe row per [`RebuildConfig::row_interval`],
//! each row serviced as `N − 1` survivor reads plus a forced-unit-access
//! program of the replacement — through the *same* device queues foreground
//! commands use, which is what makes rebuild contend with serving.
//!
//! Two contracts are pinned by `tests/fault_equivalence.rs`:
//!
//! * **Zero faults means zero bytes of difference.** An injector is only
//!   consulted when a plan is installed, and a healthy `Raid5` array routes
//!   data exactly like `Raid0` (parity is destaged from the supercap-backed
//!   parity log in idle time, never through the serviced command stream), so
//!   a fault-free run is metrics-byte-identical to its healthy twin.
//! * **Fault timing is deterministic.** The injector advances only on the
//!   simulated clock carried by the (serial) archive command stream, so the
//!   same plan yields byte-identical metrics across runs and thread counts.

use hams_nvme::{NvmeCommand, PrpList};
use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::device::{IoCompletion, SsdDevice, LBA_SIZE};

/// How a device fails and how it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device fail-stops and its contents are lost; a spare arrives at
    /// `spare_at` and rebuild regenerates every mapped stripe row from
    /// parity.
    FailStop {
        /// Simulated instant the replacement device comes online and rebuild
        /// starts (must not precede the fault instant).
        spare_at: Nanos,
    },
    /// The device drops out transiently (link flap, firmware reset) and
    /// returns with its contents intact at `repaired_at`; only the rows
    /// written while it was away are resynced.
    Transient {
        /// Simulated instant the device returns (must not precede the fault
        /// instant).
        repaired_at: Nanos,
    },
}

/// One injected fault: `device` fails at simulated instant `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Index of the device to fail.
    pub device: u16,
    /// Simulated instant of the failure.
    pub at: Nanos,
    /// Fail-stop or transient, and when recovery begins.
    pub kind: FaultKind,
}

/// Pacing and cost knobs for reconstruction and rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildConfig {
    /// Simulated time between consecutive rebuild rows — the rebuild rate
    /// limiter that trades recovery time against foreground interference.
    pub row_interval: Nanos,
    /// XOR cost charged per 4 KB LBA reconstructed or rebuilt.
    pub xor_per_lba: Nanos,
}

impl Default for RebuildConfig {
    fn default() -> Self {
        RebuildConfig {
            row_interval: Nanos::from_micros(20),
            xor_per_lba: Nanos::from_nanos(250),
        }
    }
}

/// A deterministic schedule of device faults for one run.
///
/// Events must be sorted by fault instant and must not overlap: the next
/// device may only fail once the array is healthy again. (One failure at a
/// time is what single-parity RAID-5 survives; overlapping failures would be
/// data loss, which this model treats as a plan error.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected faults, sorted by instant.
    pub events: Vec<FaultEvent>,
    /// Rebuild pacing and reconstruction cost model.
    pub rebuild: RebuildConfig,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fail-stop fault: `device` dies at `at`, a spare arrives at
    /// `spare_at`.
    ///
    /// # Panics
    ///
    /// Panics if `spare_at < at`.
    #[must_use]
    pub fn with_fail_stop(mut self, device: u16, at: Nanos, spare_at: Nanos) -> Self {
        assert!(spare_at >= at, "spare cannot arrive before the fault");
        self.events.push(FaultEvent {
            device,
            at,
            kind: FaultKind::FailStop { spare_at },
        });
        self
    }

    /// Adds a transient fault: `device` drops out at `at` and returns with
    /// its contents at `repaired_at`.
    ///
    /// # Panics
    ///
    /// Panics if `repaired_at < at`.
    #[must_use]
    pub fn with_transient(mut self, device: u16, at: Nanos, repaired_at: Nanos) -> Self {
        assert!(repaired_at >= at, "repair cannot precede the fault");
        self.events.push(FaultEvent {
            device,
            at,
            kind: FaultKind::Transient { repaired_at },
        });
        self
    }

    /// Replaces the rebuild pacing / cost configuration.
    #[must_use]
    pub fn with_rebuild(mut self, rebuild: RebuildConfig) -> Self {
        self.rebuild = rebuild;
        self
    }
}

/// Degraded state machine of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayState {
    /// All devices online; reads and writes route exactly as without a plan.
    Healthy,
    /// One device is down and no replacement is online yet: its reads are
    /// reconstructed from the survivors, its writes absorbed by parity.
    Degraded,
    /// The replacement is online and background rebuild is regenerating the
    /// pending rows; reads of not-yet-rebuilt rows still reconstruct.
    Rebuilding,
}

impl ArrayState {
    /// Stable numeric encoding for gauges (0 = healthy, 1 = degraded,
    /// 2 = rebuilding).
    #[must_use]
    pub fn as_gauge(self) -> f64 {
        match self {
            ArrayState::Healthy => 0.0,
            ArrayState::Degraded => 1.0,
            ArrayState::Rebuilding => 2.0,
        }
    }
}

/// Fault, reconstruction and rebuild accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected so far.
    pub faults_injected: u64,
    /// Faults fully recovered from (rebuild complete).
    pub repairs_completed: u64,
    /// Foreground reads of the down device served by reconstruction.
    pub degraded_reads: u64,
    /// Survivor read commands issued for those reconstructions.
    pub reconstruction_reads: u64,
    /// Foreground writes to the down device absorbed by a parity update.
    pub parity_absorbed_writes: u64,
    /// Stripe rows rebuilt so far (across all faults).
    pub rebuild_rows_done: u64,
    /// Stripe rows the current (or last) rebuild set out to regenerate.
    pub rebuild_rows_total: u64,
    /// Survivor read commands issued by rebuild traffic.
    pub rebuild_reads: u64,
    /// Replacement-device program commands issued by rebuild traffic.
    pub rebuild_writes: u64,
    /// Flush broadcasts that skipped the down device.
    pub skipped_flushes: u64,
}

/// One completed rebuild row, for telemetry span export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildSpan {
    /// The device being regenerated.
    pub device: u16,
    /// The stripe row rebuilt.
    pub row: u64,
    /// When the row's survivor reads were issued.
    pub start: Nanos,
    /// When the replacement program completed.
    pub end: Nanos,
}

/// Rotating-parity layout math for an `N`-device RAID-5 style array, plus
/// the pure XOR reconstruction model proptested against pre-failure
/// contents.
///
/// Data placement is identical to RAID-0 (stripe `s` lives on device
/// `s % N`, row `r = s / N`); the parity unit of row `r` rotates as
/// `N − 1 − (r % N)` and lives in the devices' reserved over-provisioned
/// region, mirrored into a supercap-backed parity log so a row whose parity
/// buddy is the failed device itself stays recoverable. Either way a
/// degraded read costs `N − 1` survivor reads plus XOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5Layout {
    /// Number of devices in the array (at least 2).
    pub devices: u16,
    /// Stripe unit in LBAs.
    pub stripe_lbas: u64,
}

impl Raid5Layout {
    /// The stripe index owning `slba`.
    #[must_use]
    pub fn stripe_of_slba(&self, slba: u64) -> u64 {
        slba / self.stripe_lbas
    }

    /// The stripe row (one stripe per device) containing `slba`.
    #[must_use]
    pub fn row_of_slba(&self, slba: u64) -> u64 {
        self.stripe_of_slba(slba) / u64::from(self.devices)
    }

    /// The device whose reserved region holds row `row`'s parity.
    #[must_use]
    pub fn parity_device(&self, row: u64) -> u16 {
        let n = u64::from(self.devices);
        (n - 1 - (row % n)) as u16
    }

    /// The surviving device that absorbs a degraded write for `row` when
    /// `down` is out: the row's parity buddy, or its right neighbour when
    /// the buddy is the failed device itself (the supercap parity log's
    /// mirror).
    #[must_use]
    pub fn absorbing_device(&self, row: u64, down: u16) -> u16 {
        let parity = self.parity_device(row);
        if parity == down {
            (parity + 1) % self.devices
        } else {
            parity
        }
    }

    /// The first global LBA of device `device`'s stripe in row `row`.
    #[must_use]
    pub fn stripe_slba(&self, row: u64, device: u16) -> u64 {
        (row * u64::from(self.devices) + u64::from(device)) * self.stripe_lbas
    }

    /// XOR parity of a row's data units.
    ///
    /// # Panics
    ///
    /// Panics if the units differ in length.
    #[must_use]
    pub fn parity_of(units: &[Vec<u8>]) -> Vec<u8> {
        let len = units.first().map_or(0, Vec::len);
        let mut parity = vec![0u8; len];
        for unit in units {
            assert_eq!(unit.len(), len, "row units must share one stripe size");
            for (p, b) in parity.iter_mut().zip(unit) {
                *p ^= b;
            }
        }
        parity
    }

    /// Reconstructs the lost unit `lost` of a row from the surviving data
    /// units and the row parity — the XOR pass a degraded read performs.
    ///
    /// # Panics
    ///
    /// Panics if `lost` is out of range or the units differ in length.
    #[must_use]
    pub fn reconstruct(units: &[Vec<u8>], parity: &[u8], lost: usize) -> Vec<u8> {
        assert!(lost < units.len(), "lost unit index out of range");
        let mut rebuilt = parity.to_vec();
        for (index, unit) in units.iter().enumerate() {
            if index == lost {
                continue;
            }
            assert_eq!(
                unit.len(),
                rebuilt.len(),
                "row units must share one stripe size"
            );
            for (r, b) in rebuilt.iter_mut().zip(unit) {
                *r ^= b;
            }
        }
        rebuilt
    }
}

/// Per-fault runtime state while a device is out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ActiveFault {
    device: u16,
    kind: FaultKind,
    /// Rows written while the device was out (degraded writes absorbed by
    /// parity) — always part of the rebuild set.
    dirty_rows: Vec<u64>,
    /// Rows pending rebuild, ascending; filled when rebuild starts.
    rebuild_rows: Vec<u64>,
    /// Rows `rebuild_rows[..rebuilt]` are done.
    rebuilt: usize,
    /// When the next rebuild row is due.
    next_row_at: Nanos,
}

/// Runtime fault state machine driven by the archive's serial command
/// stream. Owned by the [`ArchiveSet`]; `None` when no plan is installed —
/// the zero-overhead, byte-identical default.
///
/// [`ArchiveSet`]: crate::ArchiveSet
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
    layout: Raid5Layout,
    state: ArrayState,
    next_event: usize,
    active: Option<ActiveFault>,
    stats: FaultStats,
    /// When the most recent rebuild finished (the fig26 "recovered" edge).
    recovered_at: Option<Nanos>,
    /// Completed rebuild rows awaiting telemetry export.
    pending_spans: Vec<RebuildSpan>,
    /// (instant, new state) transitions, for scenario inspection.
    transitions: Vec<(Nanos, ArrayState)>,
}

impl FaultInjector {
    /// Builds the injector for an array of `devices` devices striped at
    /// `stripe_lbas`.
    ///
    /// # Panics
    ///
    /// Panics if the array has fewer than two devices, a planned device
    /// index is out of range, events are unsorted, or recovery instants
    /// precede their faults.
    #[must_use]
    pub fn new(plan: FaultPlan, devices: u16, stripe_lbas: u64) -> Self {
        assert!(devices >= 2, "fault injection needs a multi-device array");
        let mut last = Nanos::ZERO;
        for event in &plan.events {
            assert!(
                event.device < devices,
                "fault plan names device {} of {devices}",
                event.device
            );
            assert!(
                event.at >= last,
                "fault events must be sorted and non-overlapping"
            );
            last = match event.kind {
                FaultKind::FailStop { spare_at } => {
                    assert!(spare_at >= event.at, "spare cannot arrive before the fault");
                    spare_at
                }
                FaultKind::Transient { repaired_at } => {
                    assert!(repaired_at >= event.at, "repair cannot precede the fault");
                    repaired_at
                }
            };
        }
        assert!(
            plan.rebuild.row_interval > Nanos::ZERO,
            "rebuild pacing must be positive"
        );
        FaultInjector {
            plan,
            layout: Raid5Layout {
                devices,
                stripe_lbas,
            },
            state: ArrayState::Healthy,
            next_event: 0,
            active: None,
            stats: FaultStats::default(),
            recovered_at: None,
            pending_spans: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Current state of the array.
    #[must_use]
    pub fn state(&self) -> ArrayState {
        self.state
    }

    /// Fault / reconstruction / rebuild accounting.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The parity layout in force.
    #[must_use]
    pub fn layout(&self) -> Raid5Layout {
        self.layout
    }

    /// The installed plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rebuild completion fraction of the current (or last) fault: 1.0 when
    /// healthy with nothing pending.
    #[must_use]
    pub fn rebuild_progress(&self) -> f64 {
        match &self.active {
            None => 1.0,
            Some(active) if active.rebuild_rows.is_empty() => match self.state {
                ArrayState::Rebuilding => 1.0,
                _ => 0.0,
            },
            Some(active) => active.rebuilt as f64 / active.rebuild_rows.len() as f64,
        }
    }

    /// The device currently out, if any.
    #[must_use]
    pub fn down_device(&self) -> Option<u16> {
        self.active.as_ref().map(|a| a.device)
    }

    /// How the currently-out device failed, if one is out.
    #[must_use]
    pub fn down_kind(&self) -> Option<FaultKind> {
        self.active.as_ref().map(|a| a.kind)
    }

    /// When the most recent rebuild completed (the array returned to
    /// `Healthy`), if any has.
    #[must_use]
    pub fn recovered_at(&self) -> Option<Nanos> {
        self.recovered_at
    }

    /// Every state transition observed so far, in order.
    #[must_use]
    pub fn transitions(&self) -> &[(Nanos, ArrayState)] {
        &self.transitions
    }

    /// Drains the completed rebuild rows accumulated since the last drain,
    /// for telemetry span export.
    pub fn drain_rebuild_spans(&mut self) -> Vec<RebuildSpan> {
        std::mem::take(&mut self.pending_spans)
    }

    /// Whether a *read* of `device` at `slba` must be reconstructed.
    #[must_use]
    pub fn read_is_degraded(&self, device: u16, slba: u64) -> bool {
        match (&self.state, &self.active) {
            (ArrayState::Degraded, Some(active)) => active.device == device,
            (ArrayState::Rebuilding, Some(active)) => {
                if active.device != device {
                    return false;
                }
                let row = self.layout.row_of_slba(slba);
                match active.rebuild_rows.binary_search(&row) {
                    Ok(index) => index >= active.rebuilt,
                    // A row never mapped on the lost device reads as
                    // zero-fill from the replacement, exactly like a healthy
                    // never-written page.
                    Err(_) => false,
                }
            }
            _ => false,
        }
    }

    /// Whether a *write* to `device` must be absorbed by parity (only while
    /// degraded — once the replacement is online, writes land on it
    /// directly and rebuild re-programs the row's mapping idempotently).
    #[must_use]
    pub fn write_is_degraded(&self, device: u16) -> bool {
        matches!((&self.state, &self.active), (ArrayState::Degraded, Some(active)) if active.device == device)
    }

    /// Whether `device` must be skipped by a flush broadcast (a device with
    /// no controller cannot flush).
    #[must_use]
    pub fn flush_skips(&self, device: u16) -> bool {
        matches!((&self.state, &self.active), (ArrayState::Degraded, Some(active)) if active.device == device)
    }

    /// Counts a flush broadcast that skipped the down device.
    pub fn note_skipped_flush(&mut self) {
        self.stats.skipped_flushes += 1;
    }

    /// Advances the state machine to simulated instant `now`, injecting due
    /// faults and catching up paced rebuild rows on `devices`. Called from
    /// the archive's serial service path, so the observed clock — and with
    /// it every transition — is deterministic for a given command stream.
    pub fn poll(&mut self, now: Nanos, devices: &mut [SsdDevice]) {
        loop {
            match self.state {
                ArrayState::Healthy => {
                    let Some(event) = self.plan.events.get(self.next_event) else {
                        return;
                    };
                    if event.at > now {
                        return;
                    }
                    self.active = Some(ActiveFault {
                        device: event.device,
                        kind: event.kind,
                        dirty_rows: Vec::new(),
                        rebuild_rows: Vec::new(),
                        rebuilt: 0,
                        next_row_at: Nanos::ZERO,
                    });
                    self.stats.faults_injected += 1;
                    self.state = ArrayState::Degraded;
                    self.transitions.push((event.at, ArrayState::Degraded));
                }
                ArrayState::Degraded => {
                    let active = self
                        .active
                        .as_mut()
                        .expect("degraded array has an active fault");
                    let rebuild_at = match active.kind {
                        FaultKind::FailStop { spare_at } => spare_at,
                        FaultKind::Transient { repaired_at } => repaired_at,
                    };
                    if rebuild_at > now {
                        return;
                    }
                    // The rebuild set: every row the lost device had mapped
                    // (fail-stop only — a transient device kept its
                    // contents) plus every row written while it was out.
                    let mut rows = active.dirty_rows.clone();
                    if let FaultKind::FailStop { .. } = active.kind {
                        let device = &devices[usize::from(active.device)];
                        let page = u64::from(device.config().geometry.page_size);
                        for lpn in device.durable_lpns() {
                            rows.push(self.layout.row_of_slba(lpn * page / LBA_SIZE));
                        }
                    }
                    rows.sort_unstable();
                    rows.dedup();
                    self.stats.rebuild_rows_total = rows.len() as u64;
                    active.rebuild_rows = rows;
                    active.rebuilt = 0;
                    active.next_row_at = rebuild_at;
                    self.state = ArrayState::Rebuilding;
                    self.transitions.push((rebuild_at, ArrayState::Rebuilding));
                }
                ArrayState::Rebuilding => {
                    let active = self
                        .active
                        .as_ref()
                        .expect("rebuilding array has an active fault");
                    if active.rebuilt < active.rebuild_rows.len() {
                        if active.next_row_at > now {
                            return;
                        }
                        let row = active.rebuild_rows[active.rebuilt];
                        let at = active.next_row_at;
                        let down = active.device;
                        let end = self.rebuild_row(devices, down, row, at);
                        let active = self.active.as_mut().expect("still rebuilding");
                        active.rebuilt += 1;
                        active.next_row_at = at + self.plan.rebuild.row_interval;
                        self.stats.rebuild_rows_done += 1;
                        self.pending_spans.push(RebuildSpan {
                            device: down,
                            row,
                            start: at,
                            end,
                        });
                        if active.rebuilt < active.rebuild_rows.len() {
                            continue;
                        }
                        self.finish_rebuild(end);
                    } else {
                        let done_at = active.next_row_at;
                        self.finish_rebuild(done_at);
                    }
                }
            }
        }
    }

    fn finish_rebuild(&mut self, at: Nanos) {
        self.active = None;
        self.state = ArrayState::Healthy;
        self.recovered_at = Some(at);
        self.stats.repairs_completed += 1;
        self.next_event += 1;
        self.transitions.push((at, ArrayState::Healthy));
    }

    /// Regenerates stripe row `row` of the lost device: reads the row from
    /// every survivor, charges the XOR pass, and programs the replacement
    /// with forced unit access. Returns the completion instant.
    fn rebuild_row(&mut self, devices: &mut [SsdDevice], down: u16, row: u64, at: Nanos) -> Nanos {
        let bytes = self.layout.stripe_lbas * LBA_SIZE;
        let mut finish = at;
        for peer in 0..self.layout.devices {
            if peer == down {
                continue;
            }
            let slba = self.layout.stripe_slba(row, peer);
            let read = NvmeCommand::read(1, slba, bytes, PrpList::single(0));
            if let Ok(done) = devices[usize::from(peer)].service(&read, at) {
                finish = finish.max(done.finished_at);
                self.stats.rebuild_reads += 1;
            }
        }
        finish += self.xor_cost(bytes);
        let slba = self.layout.stripe_slba(row, down);
        let write = NvmeCommand::write(1, slba, bytes, PrpList::single(0));
        if let Ok(done) = devices[usize::from(down)].service_forcing_fua(&write, finish) {
            finish = finish.max(done.finished_at);
            self.stats.rebuild_writes += 1;
        }
        finish
    }

    /// Serves a foreground read of the down device by reconstruction:
    /// `N − 1` survivor reads (same row offset on every peer stripe) plus
    /// the XOR charge. The completion finishes when the slowest survivor
    /// does, plus XOR.
    pub fn reconstruct_read(
        &mut self,
        devices: &mut [SsdDevice],
        cmd: &NvmeCommand,
        now: Nanos,
    ) -> IoCompletion {
        let down = self
            .active
            .as_ref()
            .map(|a| a.device)
            .expect("reconstruction needs a down device");
        let row = self.layout.row_of_slba(cmd.slba);
        let offset = cmd.slba % self.layout.stripe_lbas;
        let mut merged: Option<IoCompletion> = None;
        for peer in 0..self.layout.devices {
            if peer == down {
                continue;
            }
            let slba = self.layout.stripe_slba(row, peer) + offset;
            let read = NvmeCommand::read(cmd.nsid, slba, cmd.length, cmd.prp.clone());
            if let Ok(done) = devices[usize::from(peer)].service(&read, now) {
                self.stats.reconstruction_reads += 1;
                merged = Some(match merged {
                    None => done,
                    Some(mut acc) => {
                        acc.finished_at = acc.finished_at.max(done.finished_at);
                        acc.breakdown.merge(&done.breakdown);
                        acc.sub_requests += done.sub_requests;
                        acc.served_from_dram &= done.served_from_dram;
                        acc
                    }
                });
            }
        }
        let mut done = merged.expect("an array of two or more devices has at least one survivor");
        done.finished_at += self.xor_cost(cmd.length.max(LBA_SIZE));
        self.stats.degraded_reads += 1;
        done
    }

    /// Absorbs a foreground write to the down device with a parity update
    /// on the row's surviving parity buddy, and marks the row dirty so
    /// rebuild resyncs it.
    ///
    /// # Errors
    ///
    /// Propagates the absorbing device's service error.
    pub fn absorb_write(
        &mut self,
        devices: &mut [SsdDevice],
        cmd: &NvmeCommand,
        now: Nanos,
        fua: bool,
    ) -> Result<IoCompletion, crate::device::SsdError> {
        let down = self
            .active
            .as_ref()
            .map(|a| a.device)
            .expect("absorption needs a down device");
        let row = self.layout.row_of_slba(cmd.slba);
        let target = self.layout.absorbing_device(row, down);
        let device = &mut devices[usize::from(target)];
        let done = if fua {
            device.service_forcing_fua(cmd, now)?
        } else {
            device.service(cmd, now)?
        };
        let active = self
            .active
            .as_mut()
            .expect("absorption needs an active fault");
        if let Err(index) = active.dirty_rows.binary_search(&row) {
            active.dirty_rows.insert(index, row);
        }
        self.stats.parity_absorbed_writes += 1;
        Ok(done)
    }

    fn xor_cost(&self, bytes: u64) -> Nanos {
        Nanos::from_nanos(self.plan.rebuild.xor_per_lba.as_nanos() * bytes.div_ceil(LBA_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parity_rotation_covers_every_device() {
        let layout = Raid5Layout {
            devices: 4,
            stripe_lbas: 8,
        };
        let owners: Vec<u16> = (0..4).map(|row| layout.parity_device(row)).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2, 3],
            "parity must rotate over all devices"
        );
        assert_eq!(layout.parity_device(4), owners[0], "rotation has period N");
    }

    #[test]
    fn absorbing_device_avoids_the_failed_device() {
        let layout = Raid5Layout {
            devices: 3,
            stripe_lbas: 1,
        };
        for row in 0..9 {
            for down in 0..3 {
                let target = layout.absorbing_device(row, down);
                assert_ne!(
                    target, down,
                    "row {row}: absorbed write landed on the dead device"
                );
                assert!(target < 3);
            }
        }
    }

    #[test]
    fn row_and_stripe_math_round_trip() {
        let layout = Raid5Layout {
            devices: 4,
            stripe_lbas: 8,
        };
        // Stripe 6 → row 1, device 2; its first LBA is 48.
        assert_eq!(layout.row_of_slba(48), 1);
        assert_eq!(layout.stripe_slba(1, 2), 48);
        for slba in 0..256 {
            let row = layout.row_of_slba(slba);
            let device = ((slba / layout.stripe_lbas) % 4) as u16;
            let base = layout.stripe_slba(row, device);
            assert!(base <= slba && slba < base + layout.stripe_lbas);
        }
    }

    #[test]
    fn plan_validation_rejects_bad_schedules() {
        let plan =
            FaultPlan::new().with_fail_stop(1, Nanos::from_micros(10), Nanos::from_micros(30));
        let injector = FaultInjector::new(plan.clone(), 4, 8);
        assert_eq!(injector.state(), ArrayState::Healthy);
        assert!(std::panic::catch_unwind(|| FaultInjector::new(plan.clone(), 1, 8)).is_err());
        let out_of_range = FaultPlan::new().with_fail_stop(9, Nanos::ZERO, Nanos::ZERO);
        assert!(std::panic::catch_unwind(|| FaultInjector::new(out_of_range, 4, 8)).is_err());
        let unsorted = FaultPlan::new()
            .with_fail_stop(1, Nanos::from_micros(50), Nanos::from_micros(60))
            .with_fail_stop(0, Nanos::from_micros(10), Nanos::from_micros(20));
        assert!(std::panic::catch_unwind(|| FaultInjector::new(unsorted, 4, 8)).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The XOR model is exact: whatever unit of a row is lost, parity of
        /// the pre-failure contents reconstructs it byte for byte.
        #[test]
        fn reconstruction_recovers_the_lost_unit(
            seed in any::<u64>(),
            devices in 2usize..6,
            unit_len in 1usize..64,
            lost in 0usize..6,
        ) {
            let lost = lost % devices;
            // Deterministic pseudo-random contents from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            };
            let units: Vec<Vec<u8>> =
                (0..devices).map(|_| (0..unit_len).map(|_| next()).collect()).collect();
            let parity = Raid5Layout::parity_of(&units);
            let rebuilt = Raid5Layout::reconstruct(&units, &parity, lost);
            prop_assert_eq!(rebuilt, units[lost].clone());
        }
    }
}
