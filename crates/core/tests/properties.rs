//! Property-based tests for the HAMS controller's data structures and
//! end-to-end invariants.

use hams_core::{AttachMode, HamsConfig, HamsController, MosTagArray, PersistMode, TagProbe};
use hams_sim::Nanos;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The tag array behaves exactly like a direct-mapped cache model: after
    /// any sequence of fills and probes, a probe hits if and only if the most
    /// recent fill of that set installed the probed page.
    #[test]
    fn tag_array_matches_a_reference_model(
        sets in 1usize..64,
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300),
    ) {
        let mut tags = MosTagArray::new(sets);
        let mut model: HashMap<usize, u64> = HashMap::new();
        for (page, do_fill) in ops {
            let idx = tags.index_of(page);
            if do_fill {
                tags.fill(page);
                model.insert(idx, page);
            } else {
                let expected_hit = model.get(&idx) == Some(&page);
                let probe = tags.probe(page);
                prop_assert_eq!(matches!(probe, TagProbe::Hit), expected_hit);
            }
        }
        // Resident pages reported by the array match the model exactly.
        let mut resident: Vec<u64> = tags.resident_pages().collect();
        let mut expected: Vec<u64> = model.values().copied().collect();
        resident.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(resident, expected);
    }

    /// Dirty bookkeeping: the set of dirty pages is always a subset of the
    /// resident pages, and marking clean removes pages from it.
    #[test]
    fn dirty_pages_are_a_subset_of_resident_pages(
        ops in proptest::collection::vec((0u64..256, 0u8..3), 1..200),
    ) {
        let mut tags = MosTagArray::new(32);
        for (page, op) in ops {
            match op {
                0 => {
                    tags.fill(page);
                }
                1 => {
                    if tags.resident_page(tags.index_of(page)) == Some(page) {
                        tags.mark_dirty(page);
                    }
                }
                _ => tags.mark_clean(page),
            }
            let resident: std::collections::HashSet<u64> = tags.resident_pages().collect();
            for dirty in tags.dirty_pages() {
                prop_assert!(resident.contains(&dirty));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// End-to-end controller invariant: for any access stream, simulated time
    /// is monotone, hit/miss counts are consistent, and the critical-path
    /// delay breakdown never exceeds the wall-clock span by more than the
    /// background work allowance.
    #[test]
    fn controller_time_and_counters_are_consistent(
        ops in proptest::collection::vec((0u64..1024, any::<bool>()), 1..150),
        tight in any::<bool>(),
    ) {
        let attach = if tight { AttachMode::Tight } else { AttachMode::Loose };
        let mut hams = HamsController::new(HamsConfig::tiny_for_tests(attach, PersistMode::Extend));
        let page_size = hams.config().mos_page_size;
        let mut now = Nanos::ZERO;
        let mut hits = 0u64;
        for (slot, is_write) in &ops {
            let addr = slot * page_size + (slot % 8) * 64;
            let result = hams.access(addr, *is_write, 64, now);
            prop_assert!(result.finished_at >= now);
            if result.hit {
                hits += 1;
            }
            now = result.finished_at;
        }
        let stats = hams.stats();
        prop_assert_eq!(stats.accesses, ops.len() as u64);
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert!(stats.evictions <= stats.misses);
        prop_assert!(stats.hit_rate() <= 1.0);
    }

    /// Power failures injected at an arbitrary point of a mixed read/write
    /// stream never lose an acknowledged write, in persist or extend mode.
    #[test]
    fn no_acknowledged_write_is_lost(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 5..100),
        persist in any::<bool>(),
    ) {
        let mode = if persist { PersistMode::Persist } else { PersistMode::Extend };
        let mut hams = HamsController::new(HamsConfig::tiny_for_tests(AttachMode::Loose, mode));
        let page_size = hams.config().mos_page_size;
        let mut now = Nanos::ZERO;
        let mut written = Vec::new();
        for (slot, is_write) in &ops {
            let addr = slot * page_size;
            let result = hams.access(addr, *is_write, 64, now);
            now = result.finished_at;
            if *is_write {
                written.push(hams.page_of(addr));
            }
        }
        hams.power_fail(now);
        let report = hams.recover(now);
        for page in written {
            prop_assert!(
                hams.is_page_recoverable(page, report.completed_at),
                "acknowledged write to page {page} was lost ({mode:?})"
            );
        }
    }
}
