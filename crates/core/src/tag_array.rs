//! The MoS tag-array: a direct-mapped cache directory kept alongside ECC in
//! each NVDIMM cache line (Fig. 11), sharded into independent banks.
//!
//! Each entry carries the tag plus three state bits the paper calls out:
//! *valid*, *dirty*, and the *busy* bit used for hazard avoidance (§IV-B,
//! §V-B). The busy bit in this model additionally records *when* the
//! in-flight operation completes, which is how the transaction-level
//! simulation realises the wait queue.
//!
//! HAMS has no OS-side ordering point, so nothing forces the directory to be
//! one monolithic array: [`ShardedTagArray`] partitions the sets into
//! [`ShardConfig::count`] banks, each owning its own tags, busy bits and
//! wait-queue state, so concurrent batch workers can probe different banks
//! without serializing through a single structure. The partition is pure
//! routing — a set's entry, its victim choice and its busy window are
//! identical in every shard shape — which gives the *shard-invariance
//! contract*: every observable (probe results, victims, wait times, counters)
//! is byte-identical for any shard count and hash policy, and
//! [`ShardConfig::single`] reproduces the original single-array layout
//! exactly. `tests/shard_equivalence.rs` and the proptests below pin it.

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// One directory entry of the MoS NVDIMM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagEntry {
    /// Tag of the MoS page cached in this set (valid only if `valid`).
    pub tag: u64,
    /// Whether the entry holds a page.
    pub valid: bool,
    /// Whether the cached page has been modified since it was filled.
    pub dirty: bool,
    /// Whether an NVMe command (fill or eviction) involving this entry is in
    /// flight; cleared when the HAMS NVMe engine sees the completion.
    pub busy: bool,
    /// Simulated time at which the in-flight operation completes (only
    /// meaningful while `busy`).
    pub busy_until: Nanos,
}

impl TagEntry {
    const EMPTY: TagEntry = TagEntry {
        tag: 0,
        valid: false,
        dirty: false,
        busy: false,
        busy_until: Nanos::ZERO,
    };
}

/// Result of probing the tag array for a MoS page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagProbe {
    /// The page is cached in NVDIMM.
    Hit,
    /// The set is empty: fill without eviction.
    MissEmpty,
    /// The set holds a clean page that can be silently replaced.
    MissClean {
        /// MoS page number of the page being replaced.
        victim_page: u64,
    },
    /// The set holds a dirty page that must be evicted to ULL-Flash first.
    MissDirty {
        /// MoS page number of the dirty page to evict.
        victim_page: u64,
    },
}

/// Counters maintained by the tag array (per shard, summed on demand).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagArrayStats {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Probes that found the target entry busy and had to wait.
    pub busy_waits: u64,
}

impl TagArrayStats {
    /// Hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, other: &TagArrayStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.busy_waits += other.busy_waits;
    }
}

/// How a global set index is assigned to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardHashPolicy {
    /// Round-robin: set `i` lives in shard `i % count`, slot `i / count`.
    /// Adjacent sets land in different banks, so sequential sweeps spread.
    Interleave,
    /// Contiguous blocks: the set range is cut into `count` equal-size runs.
    /// Adjacent sets share a bank, so spatially local traffic stays local.
    Block,
}

/// Shape of the tag-array sharding: bank count plus the set→shard hash.
///
/// The shard shape is *routing only*: by the shard-invariance contract every
/// observable of the tag array — and therefore every metric of a HAMS run —
/// is byte-identical for any `ShardConfig`. [`ShardConfig::single`] is the
/// exact pre-sharding single array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of independent banks (at least 1).
    pub count: u16,
    /// Set→shard assignment policy.
    pub policy: ShardHashPolicy,
}

impl ShardConfig {
    /// One bank: the original monolithic tag array, byte for byte.
    #[must_use]
    pub fn single() -> Self {
        ShardConfig {
            count: 1,
            policy: ShardHashPolicy::Interleave,
        }
    }

    /// `count` banks with round-robin set assignment (the default policy for
    /// the `hams-TE-s{n}` sweep entries).
    #[must_use]
    pub fn interleaved(count: u16) -> Self {
        ShardConfig {
            count: count.max(1),
            policy: ShardHashPolicy::Interleave,
        }
    }

    /// `count` banks owning contiguous set ranges.
    #[must_use]
    pub fn blocked(count: u16) -> Self {
        ShardConfig {
            count: count.max(1),
            policy: ShardHashPolicy::Block,
        }
    }

    /// Shard shape requested through the `HAMS_SHARDS` environment variable,
    /// if set (the CI matrix lever — analogous to `HAMS_THREADS` for the
    /// grid). By the shard-invariance contract the override can never change
    /// results, only the internal bank layout.
    ///
    /// # Panics
    ///
    /// Panics if `HAMS_SHARDS` is set but not a positive `u16`. A silent
    /// fallback would neuter the CI shard matrix: a leg that failed to
    /// parse its count (or asked for zero banks) would run single-bank and
    /// report the invariance green without ever exercising a multi-bank
    /// directory.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("HAMS_SHARDS").ok()?;
        let count = raw
            .trim()
            .parse::<u16>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                panic!("HAMS_SHARDS must be a positive integer up to 65535, got {raw:?}")
            });
        Some(ShardConfig::interleaved(count))
    }

    /// The shard owning global set index `set` out of `num_sets`.
    #[must_use]
    pub fn shard_of_set(&self, set: usize, num_sets: usize) -> u16 {
        let count = usize::from(self.count.max(1));
        let shard = match self.policy {
            ShardHashPolicy::Interleave => set % count,
            ShardHashPolicy::Block => set / num_sets.div_ceil(count).max(1),
        };
        shard.min(count - 1) as u16
    }

    /// `(shard, slot)` of global set index `set` out of `num_sets`.
    fn locate(&self, set: usize, num_sets: usize) -> (usize, usize) {
        let count = usize::from(self.count.max(1));
        match self.policy {
            ShardHashPolicy::Interleave => (set % count, set / count),
            ShardHashPolicy::Block => {
                let block = num_sets.div_ceil(count).max(1);
                ((set / block).min(count - 1), set % block)
            }
        }
    }

    /// Number of sets bank `shard` owns out of `num_sets`.
    fn shard_len(&self, shard: usize, num_sets: usize) -> usize {
        let count = usize::from(self.count.max(1));
        match self.policy {
            // ceil((num_sets - shard) / count): shard <= count - 1, so the
            // numerator never underflows, and shards past the last set get 0.
            ShardHashPolicy::Interleave => (num_sets + count - 1 - shard) / count,
            ShardHashPolicy::Block => {
                let block = num_sets.div_ceil(count).max(1);
                num_sets.saturating_sub(shard * block).min(block)
            }
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// One independent bank of the sharded directory: its own entries, busy bits
/// and wait-queue state, plus its own counters — no state is shared between
/// banks, so there is no global ordering point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TagShard {
    entries: Vec<TagEntry>,
    stats: TagArrayStats,
}

/// Direct-mapped MoS tag array, sharded into independent banks.
///
/// # Example
///
/// ```
/// use hams_core::{ShardConfig, ShardedTagArray, TagProbe};
///
/// let mut tags = ShardedTagArray::with_config(4, ShardConfig::interleaved(2));
/// assert_eq!(tags.probe(7), TagProbe::MissEmpty);
/// tags.fill(7);
/// assert_eq!(tags.probe(7), TagProbe::Hit);
/// // Page 11 maps to the same set (11 % 4 == 7 % 4) and evicts page 7 —
/// // exactly as in the single-shard array.
/// assert_eq!(tags.probe(11), TagProbe::MissClean { victim_page: 7 });
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedTagArray {
    num_sets: usize,
    config: ShardConfig,
    shards: Vec<TagShard>,
}

/// The pre-sharding name of the directory; kept as an alias so existing code
/// and docs keep compiling. [`ShardedTagArray::new`] is the single-shard
/// constructor it always had.
pub type MosTagArray = ShardedTagArray;

impl ShardedTagArray {
    /// Creates a single-shard tag array with `num_sets` direct-mapped sets —
    /// the original monolithic layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero.
    #[must_use]
    pub fn new(num_sets: usize) -> Self {
        Self::with_config(num_sets, ShardConfig::single())
    }

    /// Creates a tag array with `num_sets` sets partitioned into the banks
    /// described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero.
    #[must_use]
    pub fn with_config(num_sets: usize, config: ShardConfig) -> Self {
        assert!(num_sets > 0, "tag array needs at least one set");
        let count = usize::from(config.count.max(1));
        let shards = (0..count)
            .map(|s| TagShard {
                entries: vec![TagEntry::EMPTY; config.shard_len(s, num_sets)],
                stats: TagArrayStats::default(),
            })
            .collect();
        ShardedTagArray {
            num_sets,
            config,
            shards,
        }
    }

    /// Number of sets (NVDIMM cache lines) across all shards.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of independent banks.
    #[must_use]
    pub fn num_shards(&self) -> u16 {
        self.shards.len() as u16
    }

    /// The shard shape in force.
    #[must_use]
    pub fn shard_config(&self) -> ShardConfig {
        self.config
    }

    /// Probe/miss counters summed across every shard. The sum is invariant
    /// under the shard shape: each operation touches exactly one set and is
    /// counted in exactly one bank.
    #[must_use]
    pub fn stats(&self) -> TagArrayStats {
        let mut total = TagArrayStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
        }
        total
    }

    /// Counters of one bank (observability for the shard sweep; panics if
    /// `shard` is out of range).
    #[must_use]
    pub fn shard_stats(&self, shard: u16) -> &TagArrayStats {
        &self.shards[usize::from(shard)].stats
    }

    /// Number of sets bank `shard` owns.
    #[must_use]
    pub fn shard_sets(&self, shard: u16) -> usize {
        self.shards[usize::from(shard)].entries.len()
    }

    /// Set index of a MoS page number (global, shard-independent).
    #[must_use]
    pub fn index_of(&self, page: u64) -> usize {
        (page % self.num_sets as u64) as usize
    }

    /// Tag of a MoS page number.
    #[must_use]
    pub fn tag_of(&self, page: u64) -> u64 {
        page / self.num_sets as u64
    }

    /// The shard owning the set that `page` maps to.
    #[must_use]
    pub fn shard_of_page(&self, page: u64) -> u16 {
        self.config.shard_of_set(self.index_of(page), self.num_sets)
    }

    fn slot(&self, index: usize) -> (usize, usize) {
        self.config.locate(index, self.num_sets)
    }

    fn entry_mut(&mut self, index: usize) -> &mut TagEntry {
        let (shard, slot) = self.slot(index);
        &mut self.shards[shard].entries[slot]
    }

    /// MoS page number stored in a set, if valid.
    #[must_use]
    pub fn resident_page(&self, index: usize) -> Option<u64> {
        let e = *self.entry(index);
        e.valid.then(|| e.tag * self.num_sets as u64 + index as u64)
    }

    /// Read access to a set's entry (global set index).
    #[must_use]
    pub fn entry(&self, index: usize) -> &TagEntry {
        let (shard, slot) = self.slot(index);
        &self.shards[shard].entries[slot]
    }

    /// Probes for `page`, updating the owning shard's hit/miss statistics.
    pub fn probe(&mut self, page: u64) -> TagProbe {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let num_sets = self.num_sets as u64;
        // One bank lookup serves the entry and the counters — this is the
        // hottest path of every simulated access.
        let (s, slot) = self.slot(idx);
        let shard = &mut self.shards[s];
        let e = shard.entries[slot];
        if e.valid && e.tag == tag {
            shard.stats.hits += 1;
            TagProbe::Hit
        } else {
            shard.stats.misses += 1;
            if !e.valid {
                TagProbe::MissEmpty
            } else {
                let victim_page = e.tag * num_sets + idx as u64;
                if e.dirty {
                    TagProbe::MissDirty { victim_page }
                } else {
                    TagProbe::MissClean { victim_page }
                }
            }
        }
    }

    /// Checks whether the set that `page` maps to is busy at `now`; if so,
    /// returns when it becomes free and records a wait in the owning shard.
    pub fn busy_until(&mut self, page: u64, now: Nanos) -> Option<Nanos> {
        let idx = self.index_of(page);
        let (s, slot) = self.slot(idx);
        let shard = &mut self.shards[s];
        let e = &mut shard.entries[slot];
        if e.busy && e.busy_until > now {
            let until = e.busy_until;
            shard.stats.busy_waits += 1;
            Some(until)
        } else {
            if e.busy {
                // The in-flight operation has completed by `now`.
                e.busy = false;
            }
            None
        }
    }

    /// Installs `page` in its set (clean, not busy). Returns the set index.
    pub fn fill(&mut self, page: u64) -> usize {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        *self.entry_mut(idx) = TagEntry {
            tag,
            valid: true,
            dirty: false,
            busy: false,
            busy_until: Nanos::ZERO,
        };
        idx
    }

    /// Marks the cached copy of `page` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not currently cached — marking a non-resident page
    /// dirty indicates a controller sequencing bug.
    pub fn mark_dirty(&mut self, page: u64) {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let e = self.entry_mut(idx);
        assert!(
            e.valid && e.tag == tag,
            "mark_dirty on a page that is not cached"
        );
        e.dirty = true;
    }

    /// Marks the cached copy of `page` clean (its eviction write-back has
    /// durably completed).
    pub fn mark_clean(&mut self, page: u64) {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let e = self.entry_mut(idx);
        if e.valid && e.tag == tag {
            e.dirty = false;
        }
    }

    /// Sets the busy bit on the set `page` maps to, recording the completion
    /// time of the in-flight operation.
    pub fn set_busy(&mut self, page: u64, until: Nanos) {
        let idx = self.index_of(page);
        let e = self.entry_mut(idx);
        e.busy = true;
        e.busy_until = e.busy_until.max(until);
    }

    /// Overwrites the busy window on the set `page` maps to: busy until
    /// exactly `until`, regardless of previous busy state.
    ///
    /// This is the commit-phase form of a fill's busy hand-off: serially,
    /// [`Self::fill`] resets the entry (busy off, window zero) and
    /// [`Self::set_busy`] then raises the fresh window, so the pair nets to
    /// exactly this assignment. The plan/commit split performs the
    /// tag/valid/dirty transition in [`BankPlanner::plan_access`] and the
    /// busy transition here, without re-touching the planned fields.
    pub fn force_busy(&mut self, page: u64, until: Nanos) {
        let idx = self.index_of(page);
        let e = self.entry_mut(idx);
        e.busy = true;
        e.busy_until = until;
    }

    /// Splits the directory into per-bank planning handles, one per shard,
    /// for concurrent batch classification: each [`BankPlanner`] has
    /// exclusive access to its bank's entries and counters, so a scoped
    /// worker can plan one bank's sub-batch while other workers plan other
    /// banks — there is no shared state between handles.
    pub fn bank_planners(&mut self) -> Vec<BankPlanner<'_>> {
        let num_sets = self.num_sets;
        let config = self.config;
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(bank, shard)| BankPlanner {
                shard,
                bank: bank as u16,
                num_sets,
                config,
            })
            .collect()
    }

    /// Clears the busy bit on the set `page` maps to.
    pub fn clear_busy(&mut self, page: u64) {
        let idx = self.index_of(page);
        self.entry_mut(idx).busy = false;
    }

    /// Invalidates the set `page` maps to (regardless of which page it held).
    pub fn invalidate(&mut self, page: u64) {
        let idx = self.index_of(page);
        *self.entry_mut(idx) = TagEntry::EMPTY;
    }

    /// Iterates over all valid (resident) MoS page numbers, in global set
    /// order — identical for every shard shape.
    pub fn resident_pages(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_sets).filter_map(|i| self.resident_page(i))
    }

    /// Iterates over all valid *dirty* MoS page numbers, in global set order.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_sets).filter_map(|i| {
            let e = self.entry(i);
            (e.valid && e.dirty).then(|| e.tag * self.num_sets as u64 + i as u64)
        })
    }
}

/// Exclusive planning handle over one directory bank, produced by
/// [`ShardedTagArray::bank_planners`].
///
/// The plan/commit split of cell-parallel batch serving rests on a field
/// discipline: planning owns `{tag, valid, dirty}` plus the bank's hit/miss
/// counters (all functions of the *access sequence*, never of simulated
/// time), while the serial commit phase owns `{busy, busy_until}` and the
/// busy-wait counter (all functions of simulated time). A planner therefore
/// applies the classification and the tag-state transition of each access —
/// exactly what [`ShardedTagArray::probe`], the tag half of
/// [`ShardedTagArray::fill`] and [`ShardedTagArray::mark_dirty`] would do in
/// the serial interleaving — and never reads or writes a busy field.
///
/// Accesses routed to one bank must be planned in their original batch
/// order; accesses in other banks touch other sets by construction, so the
/// per-bank order is the only order that matters.
#[derive(Debug)]
pub struct BankPlanner<'a> {
    shard: &'a mut TagShard,
    bank: u16,
    num_sets: usize,
    config: ShardConfig,
}

impl BankPlanner<'_> {
    /// Classifies one access to `page` and applies its tag-state transition:
    /// misses install the page (clean), and writes mark it dirty — the same
    /// `{tag, valid, dirty}` end state the serial path reaches via
    /// probe → fill → mark_dirty. Returns the classification the commit
    /// phase replays timing from.
    ///
    /// `page` must be owned by this bank (debug-asserted).
    pub fn plan_access(&mut self, page: u64, is_write: bool) -> TagProbe {
        let set = (page % self.num_sets as u64) as usize;
        let tag = page / self.num_sets as u64;
        debug_assert_eq!(
            self.config.shard_of_set(set, self.num_sets),
            self.bank,
            "page {page} planned on the wrong bank"
        );
        let (_, slot) = self.config.locate(set, self.num_sets);
        let TagShard { entries, stats } = &mut *self.shard;
        let e = &mut entries[slot];
        let probe = if e.valid && e.tag == tag {
            stats.hits += 1;
            TagProbe::Hit
        } else {
            stats.misses += 1;
            let probe = if !e.valid {
                TagProbe::MissEmpty
            } else {
                let victim_page = e.tag * self.num_sets as u64 + set as u64;
                if e.dirty {
                    TagProbe::MissDirty { victim_page }
                } else {
                    TagProbe::MissClean { victim_page }
                }
            };
            // The tag half of the fill; the commit phase's `force_busy`
            // supplies the busy window once the fill's timing is known.
            e.tag = tag;
            e.valid = true;
            e.dirty = false;
            probe
        };
        if is_write {
            e.dirty = true;
        }
        probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_classifies_all_cases() {
        let mut t = MosTagArray::new(4);
        assert_eq!(t.probe(2), TagProbe::MissEmpty);
        t.fill(2);
        assert_eq!(t.probe(2), TagProbe::Hit);
        // 6 maps to set 2 as well; resident page 2 is clean.
        assert_eq!(t.probe(6), TagProbe::MissClean { victim_page: 2 });
        t.mark_dirty(2);
        assert_eq!(t.probe(6), TagProbe::MissDirty { victim_page: 2 });
    }

    #[test]
    fn fill_replaces_and_resets_state() {
        let mut t = MosTagArray::new(4);
        t.fill(2);
        t.mark_dirty(2);
        t.fill(6);
        assert_eq!(t.probe(6), TagProbe::Hit);
        assert!(!t.entry(2).dirty, "fill must reset the dirty bit");
        assert_eq!(t.resident_page(2), Some(6));
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut t = MosTagArray::new(8);
        t.fill(1);
        for _ in 0..9 {
            t.probe(1);
        }
        t.probe(100);
        assert!((t.stats().hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn busy_bit_reports_wait_until_completion() {
        let mut t = MosTagArray::new(4);
        t.fill(3);
        t.set_busy(3, Nanos::from_micros(10));
        assert_eq!(
            t.busy_until(3, Nanos::from_micros(1)),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(t.stats().busy_waits, 1);
        // After the completion time the busy bit self-clears.
        assert_eq!(t.busy_until(3, Nanos::from_micros(11)), None);
        assert!(!t.entry(3).busy);
    }

    #[test]
    fn set_busy_keeps_the_latest_completion() {
        let mut t = MosTagArray::new(4);
        t.set_busy(0, Nanos::from_micros(5));
        t.set_busy(0, Nanos::from_micros(2));
        assert_eq!(t.busy_until(0, Nanos::ZERO), Some(Nanos::from_micros(5)));
        t.clear_busy(0);
        assert_eq!(t.busy_until(0, Nanos::ZERO), None);
    }

    // Busy/wait-queue edge cases: pinned before sharding, and kept pinned
    // after — these per-set hazards are now per-shard and must not change
    // meaning. The busy bit belongs to the *set*, not the page — a conflict
    // on an in-flight line must wait even though it targets a different tag.

    #[test]
    fn conflicting_page_waits_on_a_busy_set_it_does_not_own() {
        let mut t = MosTagArray::new(4);
        t.fill(3);
        t.set_busy(3, Nanos::from_micros(10));
        // Page 7 maps to the same set as page 3 but carries a different tag;
        // its fill must park behind the in-flight operation.
        assert_eq!(t.index_of(7), t.index_of(3));
        assert_eq!(
            t.busy_until(7, Nanos::from_micros(2)),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(t.stats().busy_waits, 1);
        // After the wait the probe sees the clean resident victim.
        assert_eq!(t.busy_until(7, Nanos::from_micros(10)), None);
        assert_eq!(t.probe(7), TagProbe::MissClean { victim_page: 3 });
    }

    #[test]
    fn eviction_replacing_a_set_with_a_pending_fill_resets_busy_state() {
        let mut t = MosTagArray::new(4);
        t.fill(1);
        t.mark_dirty(1);
        t.set_busy(1, Nanos::from_micros(50));
        // A conflicting fill lands while the old operation is still pending:
        // install replaces tag, dirty *and* busy state atomically.
        t.fill(5);
        assert_eq!(t.resident_page(1), Some(5));
        assert!(!t.entry(1).busy, "fill must clear the stale busy bit");
        assert!(!t.entry(1).dirty, "fill must clear the stale dirty bit");
        assert_eq!(t.busy_until(5, Nanos::ZERO), None);
        // The new occupant can immediately go busy for its own fill.
        t.set_busy(5, Nanos::from_micros(7));
        assert_eq!(t.busy_until(5, Nanos::ZERO), Some(Nanos::from_micros(7)));
    }

    #[test]
    fn busy_window_boundary_is_exclusive_and_self_clears() {
        let mut t = MosTagArray::new(2);
        t.set_busy(0, Nanos::from_micros(5));
        // Exactly at the completion time the operation has finished: no wait,
        // and the bit self-clears without an explicit clear_busy.
        assert_eq!(t.busy_until(0, Nanos::from_micros(5)), None);
        assert!(!t.entry(0).busy);
        assert_eq!(t.stats().busy_waits, 0, "boundary probe is not a wait");
    }

    #[test]
    fn invalidate_during_pending_fill_drops_the_busy_bit() {
        let mut t = MosTagArray::new(4);
        t.fill(2);
        t.set_busy(2, Nanos::from_micros(100));
        t.invalidate(2);
        assert_eq!(t.probe(2), TagProbe::MissEmpty);
        assert_eq!(t.busy_until(2, Nanos::ZERO), None);
    }

    #[test]
    fn mark_clean_on_a_replaced_page_is_a_no_op() {
        let mut t = MosTagArray::new(4);
        t.fill(1);
        t.mark_dirty(1);
        t.fill(5); // replaces page 1 in set 1
        t.mark_dirty(5);
        // Page 1's eviction completes late; its mark_clean must not touch the
        // new occupant's dirty bit.
        t.mark_clean(1);
        assert!(t.entry(1).dirty, "stale mark_clean must not affect page 5");
    }

    #[test]
    fn dirty_and_resident_iterators() {
        let mut t = MosTagArray::new(8);
        t.fill(1);
        t.fill(2);
        t.mark_dirty(2);
        let resident: Vec<u64> = t.resident_pages().collect();
        let dirty: Vec<u64> = t.dirty_pages().collect();
        assert_eq!(resident, vec![1, 2]);
        assert_eq!(dirty, vec![2]);
        t.mark_clean(2);
        assert_eq!(t.dirty_pages().count(), 0);
    }

    #[test]
    fn invalidate_empties_the_set() {
        let mut t = MosTagArray::new(4);
        t.fill(5);
        t.invalidate(5);
        assert_eq!(t.probe(5), TagProbe::MissEmpty);
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn marking_uncached_page_dirty_panics() {
        let mut t = MosTagArray::new(4);
        t.mark_dirty(9);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = MosTagArray::new(0);
    }

    // ----- shard-shape plumbing -----

    #[test]
    fn single_shard_config_is_the_default() {
        let t = MosTagArray::new(8);
        assert_eq!(t.num_shards(), 1);
        assert_eq!(t.shard_config(), ShardConfig::single());
        assert_eq!(t.shard_sets(0), 8);
    }

    #[test]
    fn interleave_partitions_sets_round_robin() {
        let t = ShardedTagArray::with_config(10, ShardConfig::interleaved(4));
        assert_eq!(t.num_shards(), 4);
        // Sets 0..10 interleave: shard sizes 3, 3, 2, 2.
        let sizes: Vec<usize> = (0u16..4).map(|s| t.shard_sets(s)).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(sizes.iter().sum::<usize>(), t.num_sets());
        assert_eq!(t.shard_of_page(0), 0);
        assert_eq!(t.shard_of_page(1), 1);
        assert_eq!(t.shard_of_page(5), 1);
        assert_eq!(t.shard_of_page(13), 3); // set 3
    }

    #[test]
    fn block_partitions_sets_contiguously() {
        let t = ShardedTagArray::with_config(10, ShardConfig::blocked(4));
        // Blocks of ceil(10/4) = 3: sizes 3, 3, 3, 1.
        let sizes: Vec<usize> = (0u16..4).map(|s| t.shard_sets(s)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert_eq!(t.shard_of_page(0), 0);
        assert_eq!(t.shard_of_page(2), 0);
        assert_eq!(t.shard_of_page(3), 1);
        assert_eq!(t.shard_of_page(9), 3);
    }

    #[test]
    fn more_shards_than_sets_leaves_trailing_banks_empty() {
        let t = ShardedTagArray::with_config(3, ShardConfig::interleaved(8));
        assert_eq!(t.num_shards(), 8);
        let total: usize = (0u16..8).map(|s| t.shard_sets(s)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn zero_count_is_clamped_to_one() {
        assert_eq!(ShardConfig::interleaved(0).count, 1);
        assert_eq!(ShardConfig::blocked(0).count, 1);
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregate() {
        let mut t = ShardedTagArray::with_config(8, ShardConfig::interleaved(3));
        for page in 0..16u64 {
            t.probe(page);
            t.fill(page);
        }
        let total = t.stats();
        let mut summed = TagArrayStats::default();
        for s in 0..t.num_shards() {
            summed.absorb(t.shard_stats(s));
        }
        assert_eq!(total, summed);
        assert_eq!(total.hits + total.misses, 16);
    }

    // ----- plan/commit split -----

    #[test]
    fn force_busy_equals_fill_then_set_busy_on_the_busy_fields() {
        let mut serial = MosTagArray::new(4);
        serial.fill(2);
        serial.set_busy(2, Nanos::from_micros(9));
        // A conflicting fill in flight: serially, fill resets the stale
        // window and set_busy raises the fresh one.
        let mut split = serial.clone();
        serial.fill(6);
        serial.set_busy(6, Nanos::from_micros(3));
        // Split path: the tag transition happened at plan time; emulate it,
        // then hand off the busy window with force_busy alone.
        split.fill(6);
        split.force_busy(6, Nanos::from_micros(3));
        assert_eq!(serial.entry(2), split.entry(2));
        assert_eq!(
            split.busy_until(6, Nanos::ZERO),
            Some(Nanos::from_micros(3)),
            "force_busy must overwrite, not max, the stale window"
        );
    }

    #[test]
    fn bank_planners_split_every_bank_exactly_once() {
        let mut t = ShardedTagArray::with_config(10, ShardConfig::interleaved(4));
        let planners = t.bank_planners();
        assert_eq!(planners.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Planning a stream bank by bank (in per-bank original order) gives
        /// the same classifications, counters and final tag state as the
        /// serial probe → fill → mark_dirty interleaving, for any shard
        /// shape — the contract the cell-parallel commit phase replays
        /// timing from.
        #[test]
        fn bank_planning_matches_the_serial_interleaving(
            num_sets in 1usize..24,
            count in 1u16..12,
            policy_pick in 0u8..2,
            ops in proptest::collection::vec((0u64..96, any::<bool>()), 1..160),
        ) {
            let (mut serial, mut planned) = build_pair(num_sets, count, policy_pick);
            // Serial reference: the tag-state effects of an access stream.
            let mut expected = Vec::with_capacity(ops.len());
            for &(page, is_write) in &ops {
                let probe = serial.probe(page);
                if !matches!(probe, TagProbe::Hit) {
                    serial.fill(page);
                }
                if is_write {
                    serial.mark_dirty(page);
                }
                expected.push(probe);
            }
            // Planned: route to banks, keep per-bank original order, plan
            // each bank independently, scatter back by original index.
            let shard_count = usize::from(planned.num_shards());
            let mut routed: Vec<Vec<(usize, u64, bool)>> = vec![Vec::new(); shard_count];
            for (i, &(page, is_write)) in ops.iter().enumerate() {
                routed[usize::from(planned.shard_of_page(page))].push((i, page, is_write));
            }
            let mut got = vec![TagProbe::Hit; ops.len()];
            for (bank, planner) in planned.bank_planners().into_iter().enumerate() {
                let mut planner = planner;
                for &(i, page, is_write) in &routed[bank] {
                    got[i] = planner.plan_access(page, is_write);
                }
            }
            prop_assert_eq!(got, expected);
            prop_assert_eq!(serial.stats(), planned.stats());
            for i in 0..num_sets {
                prop_assert_eq!(serial.entry(i), planned.entry(i));
            }
        }
    }

    // ----- shard-invariance proptests -----
    //
    // The pinned contract: for ANY op stream, ANY shard count and ANY hash
    // policy, the sharded array is observably identical to the single-shard
    // reference — same probe results (hit/miss/evict classification and
    // victims, i.e. the counters feeding evictions and write-backs), same
    // wait-queue answers in the same order within every set, same counters,
    // same final entries. Sets that alias across shards (consecutive sets in
    // different banks under Interleave) get no special casing by
    // construction: the op stream below constantly crosses bank boundaries.

    use proptest::prelude::*;

    fn build_pair(num_sets: usize, count: u16, policy_pick: u8) -> (MosTagArray, ShardedTagArray) {
        let policy = if policy_pick.is_multiple_of(2) {
            ShardConfig::interleaved(count)
        } else {
            ShardConfig::blocked(count)
        };
        (
            MosTagArray::new(num_sets),
            ShardedTagArray::with_config(num_sets, policy),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Hit/miss/evict classification (and thus every counter a controller
        /// derives from it) is invariant under the shard shape for arbitrary
        /// access streams.
        #[test]
        fn probe_and_fill_streams_are_shard_invariant(
            num_sets in 1usize..24,
            count in 1u16..12,
            policy_pick in 0u8..2,
            ops in proptest::collection::vec((0u8..4, 0u64..96), 1..160),
        ) {
            let (mut single, mut sharded) = build_pair(num_sets, count, policy_pick);
            for (kind, page) in &ops {
                match kind % 4 {
                    0 => prop_assert_eq!(single.probe(*page), sharded.probe(*page)),
                    1 => prop_assert_eq!(single.fill(*page), sharded.fill(*page)),
                    2 => {
                        // mark_dirty is only legal on resident pages; use the
                        // reference to decide (both must agree on residency).
                        let resident =
                            single.resident_page(single.index_of(*page)) == Some(*page);
                        prop_assert_eq!(
                            resident,
                            sharded.resident_page(sharded.index_of(*page)) == Some(*page)
                        );
                        if resident {
                            single.mark_dirty(*page);
                            sharded.mark_dirty(*page);
                        }
                    }
                    _ => {
                        single.mark_clean(*page);
                        sharded.mark_clean(*page);
                    }
                }
            }
            prop_assert_eq!(single.stats(), sharded.stats());
            let resident_a: Vec<u64> = single.resident_pages().collect();
            let resident_b: Vec<u64> = sharded.resident_pages().collect();
            prop_assert_eq!(resident_a, resident_b);
            let dirty_a: Vec<u64> = single.dirty_pages().collect();
            let dirty_b: Vec<u64> = sharded.dirty_pages().collect();
            prop_assert_eq!(dirty_a, dirty_b);
            for i in 0..num_sets {
                prop_assert_eq!(single.entry(i), sharded.entry(i));
            }
        }

        /// No wait-queue entry is lost or reordered within a set when sets
        /// alias across shards: the exact sequence of `busy_until` answers
        /// (the wait queue of Fig. 14) and the busy-wait counters match the
        /// single-shard reference for arbitrary interleavings of busy
        /// set/clear/query/invalidate on aliased pages.
        #[test]
        fn wait_queue_order_within_a_set_is_shard_invariant(
            num_sets in 1usize..12,
            count in 1u16..12,
            policy_pick in 0u8..2,
            ops in proptest::collection::vec((0u8..4, 0u64..24, 0u64..40), 1..160),
        ) {
            let (mut single, mut sharded) = build_pair(num_sets, count, policy_pick);
            for (kind, slot, t) in &ops {
                // Aliased addressing: pages 0..24 cover every set several
                // times over for num_sets < 12, so ops constantly collide on
                // sets owned by different banks.
                let page = *slot;
                let now = Nanos::from_nanos(*t * 100);
                match kind % 4 {
                    0 => {
                        single.set_busy(page, now);
                        sharded.set_busy(page, now);
                    }
                    1 => prop_assert_eq!(
                        single.busy_until(page, now),
                        sharded.busy_until(page, now),
                        "wait answer diverged for page {} at {}", page, now
                    ),
                    2 => {
                        single.clear_busy(page);
                        sharded.clear_busy(page);
                    }
                    _ => {
                        single.invalidate(page);
                        sharded.invalidate(page);
                    }
                }
            }
            prop_assert_eq!(single.stats().busy_waits, sharded.stats().busy_waits);
            for i in 0..num_sets {
                prop_assert_eq!(single.entry(i), sharded.entry(i));
            }
        }
    }
}
