//! The MoS tag-array: a direct-mapped cache directory kept alongside ECC in
//! each NVDIMM cache line (Fig. 11).
//!
//! Each entry carries the tag plus three state bits the paper calls out:
//! *valid*, *dirty*, and the *busy* bit used for hazard avoidance (§IV-B,
//! §V-B). The busy bit in this model additionally records *when* the
//! in-flight operation completes, which is how the transaction-level
//! simulation realises the wait queue.

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// One directory entry of the MoS NVDIMM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagEntry {
    /// Tag of the MoS page cached in this set (valid only if `valid`).
    pub tag: u64,
    /// Whether the entry holds a page.
    pub valid: bool,
    /// Whether the cached page has been modified since it was filled.
    pub dirty: bool,
    /// Whether an NVMe command (fill or eviction) involving this entry is in
    /// flight; cleared when the HAMS NVMe engine sees the completion.
    pub busy: bool,
    /// Simulated time at which the in-flight operation completes (only
    /// meaningful while `busy`).
    pub busy_until: Nanos,
}

impl TagEntry {
    const EMPTY: TagEntry = TagEntry {
        tag: 0,
        valid: false,
        dirty: false,
        busy: false,
        busy_until: Nanos::ZERO,
    };
}

/// Result of probing the tag array for a MoS page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagProbe {
    /// The page is cached in NVDIMM.
    Hit,
    /// The set is empty: fill without eviction.
    MissEmpty,
    /// The set holds a clean page that can be silently replaced.
    MissClean {
        /// MoS page number of the page being replaced.
        victim_page: u64,
    },
    /// The set holds a dirty page that must be evicted to ULL-Flash first.
    MissDirty {
        /// MoS page number of the dirty page to evict.
        victim_page: u64,
    },
}

/// Counters maintained by the tag array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagArrayStats {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Probes that found the target entry busy and had to wait.
    pub busy_waits: u64,
}

impl TagArrayStats {
    /// Hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Direct-mapped MoS tag array.
///
/// # Example
///
/// ```
/// use hams_core::{MosTagArray, TagProbe};
///
/// let mut tags = MosTagArray::new(4);
/// assert_eq!(tags.probe(7), TagProbe::MissEmpty);
/// tags.fill(7);
/// assert_eq!(tags.probe(7), TagProbe::Hit);
/// // Page 11 maps to the same set (11 % 4 == 7 % 4) and evicts page 7.
/// assert_eq!(tags.probe(11), TagProbe::MissClean { victim_page: 7 });
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MosTagArray {
    sets: Vec<TagEntry>,
    stats: TagArrayStats,
}

impl MosTagArray {
    /// Creates a tag array with `num_sets` direct-mapped sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero.
    #[must_use]
    pub fn new(num_sets: usize) -> Self {
        assert!(num_sets > 0, "tag array needs at least one set");
        MosTagArray {
            sets: vec![TagEntry::EMPTY; num_sets],
            stats: TagArrayStats::default(),
        }
    }

    /// Number of sets (NVDIMM cache lines).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Probe/miss counters.
    #[must_use]
    pub fn stats(&self) -> &TagArrayStats {
        &self.stats
    }

    /// Set index of a MoS page number.
    #[must_use]
    pub fn index_of(&self, page: u64) -> usize {
        (page % self.sets.len() as u64) as usize
    }

    /// Tag of a MoS page number.
    #[must_use]
    pub fn tag_of(&self, page: u64) -> u64 {
        page / self.sets.len() as u64
    }

    /// MoS page number stored in a set, if valid.
    #[must_use]
    pub fn resident_page(&self, index: usize) -> Option<u64> {
        let e = self.sets[index];
        e.valid
            .then(|| e.tag * self.sets.len() as u64 + index as u64)
    }

    /// Read access to a set's entry.
    #[must_use]
    pub fn entry(&self, index: usize) -> &TagEntry {
        &self.sets[index]
    }

    /// Probes for `page`, updating hit/miss statistics.
    pub fn probe(&mut self, page: u64) -> TagProbe {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let e = self.sets[idx];
        if e.valid && e.tag == tag {
            self.stats.hits += 1;
            TagProbe::Hit
        } else {
            self.stats.misses += 1;
            if !e.valid {
                TagProbe::MissEmpty
            } else {
                let victim_page = e.tag * self.sets.len() as u64 + idx as u64;
                if e.dirty {
                    TagProbe::MissDirty { victim_page }
                } else {
                    TagProbe::MissClean { victim_page }
                }
            }
        }
    }

    /// Checks whether the set that `page` maps to is busy at `now`; if so,
    /// returns when it becomes free and records a wait.
    pub fn busy_until(&mut self, page: u64, now: Nanos) -> Option<Nanos> {
        let idx = self.index_of(page);
        let e = &mut self.sets[idx];
        if e.busy && e.busy_until > now {
            self.stats.busy_waits += 1;
            Some(e.busy_until)
        } else {
            if e.busy {
                // The in-flight operation has completed by `now`.
                e.busy = false;
            }
            None
        }
    }

    /// Installs `page` in its set (clean, not busy). Returns the set index.
    pub fn fill(&mut self, page: u64) -> usize {
        let idx = self.index_of(page);
        self.sets[idx] = TagEntry {
            tag: self.tag_of(page),
            valid: true,
            dirty: false,
            busy: false,
            busy_until: Nanos::ZERO,
        };
        idx
    }

    /// Marks the cached copy of `page` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not currently cached — marking a non-resident page
    /// dirty indicates a controller sequencing bug.
    pub fn mark_dirty(&mut self, page: u64) {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let e = &mut self.sets[idx];
        assert!(
            e.valid && e.tag == tag,
            "mark_dirty on a page that is not cached"
        );
        e.dirty = true;
    }

    /// Marks the cached copy of `page` clean (its eviction write-back has
    /// durably completed).
    pub fn mark_clean(&mut self, page: u64) {
        let idx = self.index_of(page);
        let tag = self.tag_of(page);
        let e = &mut self.sets[idx];
        if e.valid && e.tag == tag {
            e.dirty = false;
        }
    }

    /// Sets the busy bit on the set `page` maps to, recording the completion
    /// time of the in-flight operation.
    pub fn set_busy(&mut self, page: u64, until: Nanos) {
        let idx = self.index_of(page);
        let e = &mut self.sets[idx];
        e.busy = true;
        e.busy_until = e.busy_until.max(until);
    }

    /// Clears the busy bit on the set `page` maps to.
    pub fn clear_busy(&mut self, page: u64) {
        let idx = self.index_of(page);
        self.sets[idx].busy = false;
    }

    /// Invalidates the set `page` maps to (regardless of which page it held).
    pub fn invalidate(&mut self, page: u64) {
        let idx = self.index_of(page);
        self.sets[idx] = TagEntry::EMPTY;
    }

    /// Iterates over all valid (resident) MoS page numbers.
    pub fn resident_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(move |(i, e)| e.tag * self.sets.len() as u64 + i as u64)
    }

    /// Iterates over all valid *dirty* MoS page numbers.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && e.dirty)
            .map(move |(i, e)| e.tag * self.sets.len() as u64 + i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_classifies_all_cases() {
        let mut t = MosTagArray::new(4);
        assert_eq!(t.probe(2), TagProbe::MissEmpty);
        t.fill(2);
        assert_eq!(t.probe(2), TagProbe::Hit);
        // 6 maps to set 2 as well; resident page 2 is clean.
        assert_eq!(t.probe(6), TagProbe::MissClean { victim_page: 2 });
        t.mark_dirty(2);
        assert_eq!(t.probe(6), TagProbe::MissDirty { victim_page: 2 });
    }

    #[test]
    fn fill_replaces_and_resets_state() {
        let mut t = MosTagArray::new(4);
        t.fill(2);
        t.mark_dirty(2);
        t.fill(6);
        assert_eq!(t.probe(6), TagProbe::Hit);
        assert!(!t.entry(2).dirty, "fill must reset the dirty bit");
        assert_eq!(t.resident_page(2), Some(6));
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut t = MosTagArray::new(8);
        t.fill(1);
        for _ in 0..9 {
            t.probe(1);
        }
        t.probe(100);
        assert!((t.stats().hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn busy_bit_reports_wait_until_completion() {
        let mut t = MosTagArray::new(4);
        t.fill(3);
        t.set_busy(3, Nanos::from_micros(10));
        assert_eq!(
            t.busy_until(3, Nanos::from_micros(1)),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(t.stats().busy_waits, 1);
        // After the completion time the busy bit self-clears.
        assert_eq!(t.busy_until(3, Nanos::from_micros(11)), None);
        assert!(!t.entry(3).busy);
    }

    #[test]
    fn set_busy_keeps_the_latest_completion() {
        let mut t = MosTagArray::new(4);
        t.set_busy(0, Nanos::from_micros(5));
        t.set_busy(0, Nanos::from_micros(2));
        assert_eq!(t.busy_until(0, Nanos::ZERO), Some(Nanos::from_micros(5)));
        t.clear_busy(0);
        assert_eq!(t.busy_until(0, Nanos::ZERO), None);
    }

    // Busy/wait-queue edge cases: groundwork for sharding the tag array,
    // where these per-set hazards become per-shard and must not change
    // meaning. The busy bit belongs to the *set*, not the page — a conflict
    // on an in-flight line must wait even though it targets a different tag.

    #[test]
    fn conflicting_page_waits_on_a_busy_set_it_does_not_own() {
        let mut t = MosTagArray::new(4);
        t.fill(3);
        t.set_busy(3, Nanos::from_micros(10));
        // Page 7 maps to the same set as page 3 but carries a different tag;
        // its fill must park behind the in-flight operation.
        assert_eq!(t.index_of(7), t.index_of(3));
        assert_eq!(
            t.busy_until(7, Nanos::from_micros(2)),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(t.stats().busy_waits, 1);
        // After the wait the probe sees the clean resident victim.
        assert_eq!(t.busy_until(7, Nanos::from_micros(10)), None);
        assert_eq!(t.probe(7), TagProbe::MissClean { victim_page: 3 });
    }

    #[test]
    fn eviction_replacing_a_set_with_a_pending_fill_resets_busy_state() {
        let mut t = MosTagArray::new(4);
        t.fill(1);
        t.mark_dirty(1);
        t.set_busy(1, Nanos::from_micros(50));
        // A conflicting fill lands while the old operation is still pending:
        // install replaces tag, dirty *and* busy state atomically.
        t.fill(5);
        assert_eq!(t.resident_page(1), Some(5));
        assert!(!t.entry(1).busy, "fill must clear the stale busy bit");
        assert!(!t.entry(1).dirty, "fill must clear the stale dirty bit");
        assert_eq!(t.busy_until(5, Nanos::ZERO), None);
        // The new occupant can immediately go busy for its own fill.
        t.set_busy(5, Nanos::from_micros(7));
        assert_eq!(t.busy_until(5, Nanos::ZERO), Some(Nanos::from_micros(7)));
    }

    #[test]
    fn busy_window_boundary_is_exclusive_and_self_clears() {
        let mut t = MosTagArray::new(2);
        t.set_busy(0, Nanos::from_micros(5));
        // Exactly at the completion time the operation has finished: no wait,
        // and the bit self-clears without an explicit clear_busy.
        assert_eq!(t.busy_until(0, Nanos::from_micros(5)), None);
        assert!(!t.entry(0).busy);
        assert_eq!(t.stats().busy_waits, 0, "boundary probe is not a wait");
    }

    #[test]
    fn invalidate_during_pending_fill_drops_the_busy_bit() {
        let mut t = MosTagArray::new(4);
        t.fill(2);
        t.set_busy(2, Nanos::from_micros(100));
        t.invalidate(2);
        assert_eq!(t.probe(2), TagProbe::MissEmpty);
        assert_eq!(t.busy_until(2, Nanos::ZERO), None);
    }

    #[test]
    fn mark_clean_on_a_replaced_page_is_a_no_op() {
        let mut t = MosTagArray::new(4);
        t.fill(1);
        t.mark_dirty(1);
        t.fill(5); // replaces page 1 in set 1
        t.mark_dirty(5);
        // Page 1's eviction completes late; its mark_clean must not touch the
        // new occupant's dirty bit.
        t.mark_clean(1);
        assert!(t.entry(1).dirty, "stale mark_clean must not affect page 5");
    }

    #[test]
    fn dirty_and_resident_iterators() {
        let mut t = MosTagArray::new(8);
        t.fill(1);
        t.fill(2);
        t.mark_dirty(2);
        let resident: Vec<u64> = t.resident_pages().collect();
        let dirty: Vec<u64> = t.dirty_pages().collect();
        assert_eq!(resident, vec![1, 2]);
        assert_eq!(dirty, vec![2]);
        t.mark_clean(2);
        assert_eq!(t.dirty_pages().count(), 0);
    }

    #[test]
    fn invalidate_empties_the_set() {
        let mut t = MosTagArray::new(4);
        t.fill(5);
        t.invalidate(5);
        assert_eq!(t.probe(5), TagProbe::MissEmpty);
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn marking_uncached_page_dirty_panics() {
        let mut t = MosTagArray::new(4);
        t.mark_dirty(9);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = MosTagArray::new(0);
    }
}
