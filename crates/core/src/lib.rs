//! HAMS — the Hardware Automated Memory-over-Storage controller.
//!
//! This crate implements the paper's primary contribution: the
//! memory-controller-hub logic that aggregates an NVDIMM-N and an
//! ultra-low-latency flash archive (ULL-Flash) into a single byte-addressable,
//! OS-transparent Memory-over-Storage (MoS) address space.
//!
//! The main entry point is [`HamsController`]: construct one from a
//! [`HamsConfig`] (loose or tight attach, persist or extend mode) and feed it
//! MoS accesses; it returns per-access latency and a breakdown across NVDIMM,
//! the DMA interface and the SSD, and exposes power-failure injection plus
//! journal-tag recovery.
//!
//! Internal building blocks are public for tests, benches and downstream
//! experimentation:
//!
//! * [`ShardedTagArray`] — the direct-mapped tag directory with
//!   valid/dirty/busy bits kept alongside ECC in the NVDIMM cache lines
//!   (Fig. 11), partitioned into independent banks by a [`ShardConfig`]
//!   (shard-invariant by contract; `MosTagArray` is the single-bank alias),
//! * [`NvmeEngine`] — the in-controller NVMe queue engine with journal tags
//!   (Fig. 15), stamped with each command's `(shard, device)` so recovery
//!   replays into the owning directory bank and archive device,
//! * [`BackendTopology`] / [`ArchiveSet`] (re-exported from `hams_flash`) —
//!   the multi-device archive backend: one device, RAID-0 fan-out, or the
//!   CXL-attached variant,
//! * [`PrpPool`] — the pinned-region clone slots used for hazard avoidance
//!   (Fig. 14).
//!
//! # Example
//!
//! ```
//! use hams_core::{AttachMode, HamsConfig, HamsController, PersistMode};
//! use hams_sim::Nanos;
//!
//! // Advanced HAMS in extend mode (the paper's hams-TE).
//! let mut hams = HamsController::new(HamsConfig::tiny_for_tests(
//!     AttachMode::Tight,
//!     PersistMode::Extend,
//! ));
//! let first = hams.access(0x0, true, 64, Nanos::ZERO);
//! let second = hams.access(0x40, false, 64, first.finished_at);
//! assert!(second.hit);
//! assert!(hams.stats().hit_rate() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod controller;
pub mod engine;
pub mod prp_pool;
pub mod tag_array;

pub use config::{AttachMode, HamsConfig, PersistMode};
pub use controller::{
    CellPlan, HamsController, HamsStats, MosAccessResult, PowerFailureEvent, RecoveryReport,
};
pub use engine::{EngineStats, NvmeEngine, TrackedCommand};
pub use hams_flash::{
    ArchiveSet, ArrayState, BackendTopology, FaultEvent, FaultKind, FaultPlan, FaultStats,
    RebuildConfig,
};
pub use prp_pool::{CloneSlot, PrpPool};
pub use tag_array::{
    BankPlanner, MosTagArray, ShardConfig, ShardHashPolicy, ShardedTagArray, TagArrayStats,
    TagEntry, TagProbe,
};
